//! Serving telemetry: the `foldic-serve-metrics/1` series contract, the
//! per-request id allocator, the structured log hook and the trace mux
//! that turns the process-global `foldic-obs` span buffer into
//! per-job span trees.
//!
//! # Series contract (`foldic-serve-metrics/1`)
//!
//! `GET /metrics` renders one [`foldic_obs::metrics::Snapshot`] through
//! [`foldic_obs::expo`]. Every series is prefixed `foldic_serve_`:
//!
//! | Series | Kind | Notes |
//! |---|---|---|
//! | `foldic_serve_requests_total{endpoint,method,status}` | counter | per-request, endpoint classes from [`endpoint_class`] |
//! | `foldic_serve_request_latency_ms{endpoint}` | histogram | **volatile** |
//! | `foldic_serve_job_wait_ms` | histogram | queue wait, **volatile** |
//! | `foldic_serve_job_run_ms` | histogram | execution, **volatile** |
//! | `foldic_serve_jobs_total{state}` | counter | terminal states `done` / `failed` / `cancelled` |
//! | `foldic_serve_jobs_submitted_total` | counter | admitted submissions |
//! | `foldic_serve_jobs_rejected_total` | counter | admission rejections (429) |
//! | `foldic_serve_queue_depth` | gauge | **volatile** |
//! | `foldic_serve_queue_high_water` | gauge | **volatile** |
//! | `foldic_serve_queue_capacity` | gauge | configured bound |
//! | `foldic_serve_cache_hits_total` &c. | counter | `hits`/`misses`/`insertions`/`evictions` (the cache never evicts, so evictions is a constant 0 — present for contract completeness) |
//! | `foldic_serve_cache_entries` | gauge | stored studies |
//! | `foldic_serve_workers` | gauge | configured pool size, **volatile** |
//! | `foldic_serve_workers_busy` | gauge | running jobs, **volatile** |
//! | `foldic_serve_uptime_seconds` | gauge | **volatile** |
//!
//! The durability layer adds families that appear **only when the
//! corresponding feature is configured** (pay-for-use — an undurable
//! daemon's exposition is byte-identical to the pre-durability one):
//!
//! | Series | Kind | Present when | Notes |
//! |---|---|---|---|
//! | `foldic_serve_jobs_shed_total` | counter | any durability feature | breaker sheds + failed journal writes (503) |
//! | `foldic_serve_jobs_poisoned_total` | counter | any durability feature | jobs failed at dispatch by the poison ledger |
//! | `foldic_serve_worker_restarts_total` | counter | any durability feature | worker loops restarted by the supervisor |
//! | `foldic_serve_journal_replayed_jobs_total` | counter | `--journal` | jobs restored from the journal at boot |
//! | `foldic_serve_journal_reenqueued_total` | counter | `--journal` | non-terminal jobs re-enqueued at boot |
//! | `foldic_serve_cache_loaded_total` | counter | `--cache-dir` | verified entries reloaded at boot |
//! | `foldic_serve_cache_corrupt_total` | counter | `--cache-dir` | entries quarantined at boot |
//! | `foldic_serve_breaker_state` | gauge | breaker | 0 closed / 1 half-open / 2 open, **volatile** |
//! | `foldic_serve_breaker_transitions_total` | counter | breaker | state transitions, **volatile** |
//!
//! The resource-governance layer (`--mem-limit`) is pay-for-use the same
//! way — a limitless daemon's exposition is byte-identical to before the
//! layer existed:
//!
//! | Series | Kind | Present when | Notes |
//! |---|---|---|---|
//! | `foldic_serve_mem_limit_bytes` | gauge | `--mem-limit` | configured admission limit |
//! | `foldic_serve_mem_reserved_bytes` | gauge | `--mem-limit` | ledger commitment, **volatile** |
//! | `foldic_serve_mem_reserved_peak_bytes` | gauge | `--mem-limit` | ledger high water, **volatile** |
//! | `foldic_serve_jobs_oversized_total` | counter | `--mem-limit` | estimates above the limit (run alone, budgeted) |
//! | `foldic_serve_jobs_mem_shed_total` | counter | `--mem-limit` | submissions shed by a full ledger (503) |
//!
//! The breaker families are volatile because cooldown expiry is a
//! wall-clock event; the reservation gauges because how many admissions
//! overlap at scrape time is a scheduling accident.
//!
//! **Volatile** series are the timing class: their values depend on
//! wall-clock scheduling, so they are excluded — by
//! [`is_volatile_series`], the analogue of the manifest's excluded
//! `timing` section — from byte-determinism comparisons. So is every
//! `requests_total` sample with `endpoint="job_status"`: status polling
//! frequency is wall-clock dependent. Everything else is a pure function
//! of the request history: two daemons fed the same traffic agree byte
//! for byte on [`deterministic_subset`] regardless of worker count.
//!
//! # Trace mux
//!
//! `foldic-obs` records spans into one process-global buffer; the daemon
//! serves *per-job* traces. The [`Telemetry`] mux drains the global
//! buffer and assigns each event to a job by span ancestry: submission
//! seeds the job's HTTP request span, dispatch adds a synthesized
//! `queue.wait` span under it, execution runs under a `job.run` span
//! inherited through [`foldic_obs::trace::run_with_parent`], and every
//! descendant span follows its parent's assignment. Events whose
//! ancestry is unknown (spans of non-submission requests, foreign
//! instrumentation) are dropped at ingest, which keeps the mux bounded
//! by job traffic. Ingest runs at job completion, on `/metrics` and
//! `/jobs/<id>/trace` reads, and in the shutdown drain path — the last
//! one is what guarantees spans recorded just before `POST /shutdown`
//! still reach their job's tree. One caveat: ingest is destructive on
//! the global buffer, so two schedulers tracing in one process can steal
//! (and then drop) each other's events — per-process daemons, the only
//! deployment shape, are unaffected.

use foldic_obs::expo;
use foldic_obs::json::Json;
use foldic_obs::log::{Level, LogSink};
use foldic_obs::metrics::Registry;
use foldic_obs::trace::{self, Event, SpanId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema identifier of the `/metrics` exposition contract.
pub const METRICS_SCHEMA: &str = "foldic-serve-metrics/1";

/// Series name for the per-endpoint request counter.
pub fn requests_series(endpoint: &str, method: &str, status: u16) -> String {
    format!(
        "foldic_serve_requests_total{{endpoint=\"{endpoint}\",method=\"{method}\",status=\"{status}\"}}"
    )
}

/// Series name for the per-endpoint latency histogram.
pub fn latency_series(endpoint: &str) -> String {
    format!("foldic_serve_request_latency_ms{{endpoint=\"{endpoint}\"}}")
}

/// Series name for the terminal-state job counter.
pub fn jobs_state_series(state: &str) -> String {
    format!("foldic_serve_jobs_total{{state=\"{state}\"}}")
}

/// Admitted submissions.
pub const SERIES_JOBS_SUBMITTED: &str = "foldic_serve_jobs_submitted_total";
/// Admission rejections.
pub const SERIES_JOBS_REJECTED: &str = "foldic_serve_jobs_rejected_total";
/// Cache lookup hits.
pub const SERIES_CACHE_HITS: &str = "foldic_serve_cache_hits_total";
/// Cache lookup misses.
pub const SERIES_CACHE_MISSES: &str = "foldic_serve_cache_misses_total";
/// Cache insertions.
pub const SERIES_CACHE_INSERTIONS: &str = "foldic_serve_cache_insertions_total";
/// Cache evictions (constant 0 — the cache never evicts).
pub const SERIES_CACHE_EVICTIONS: &str = "foldic_serve_cache_evictions_total";
/// Submissions shed by the breaker or a failed journal write (503).
pub const SERIES_JOBS_SHED: &str = "foldic_serve_jobs_shed_total";
/// Jobs failed at dispatch by the poison ledger.
pub const SERIES_JOBS_POISONED: &str = "foldic_serve_jobs_poisoned_total";
/// Worker loops restarted by the supervisor.
pub const SERIES_WORKER_RESTARTS: &str = "foldic_serve_worker_restarts_total";
/// Jobs restored from the journal at boot.
pub const SERIES_JOURNAL_REPLAYED: &str = "foldic_serve_journal_replayed_jobs_total";
/// Non-terminal journaled jobs re-enqueued at boot.
pub const SERIES_JOURNAL_REENQUEUED: &str = "foldic_serve_journal_reenqueued_total";
/// Verified cache entries reloaded from the cache directory at boot.
pub const SERIES_CACHE_LOADED: &str = "foldic_serve_cache_loaded_total";
/// Persisted cache entries quarantined at boot.
pub const SERIES_CACHE_CORRUPT: &str = "foldic_serve_cache_corrupt_total";
/// Circuit-breaker state gauge (0 closed / 1 half-open / 2 open).
pub const SERIES_BREAKER_STATE: &str = "foldic_serve_breaker_state";
/// Circuit-breaker state transitions.
pub const SERIES_BREAKER_TRANSITIONS: &str = "foldic_serve_breaker_transitions_total";
/// Configured admission memory limit (`--mem-limit`).
pub const SERIES_MEM_LIMIT: &str = "foldic_serve_mem_limit_bytes";
/// Bytes currently committed in the reservation ledger.
pub const SERIES_MEM_RESERVED: &str = "foldic_serve_mem_reserved_bytes";
/// Highest the reservation ledger has ever been.
pub const SERIES_MEM_RESERVED_PEAK: &str = "foldic_serve_mem_reserved_peak_bytes";
/// Admissions whose cost estimate exceeded the memory limit outright.
pub const SERIES_JOBS_OVERSIZED: &str = "foldic_serve_jobs_oversized_total";
/// Submissions shed because the reservation ledger was full (503).
pub const SERIES_JOBS_MEM_SHED: &str = "foldic_serve_jobs_mem_shed_total";

/// Families whose values are wall-clock dependent (the timing class).
/// The breaker families qualify because cooldown expiry — and therefore
/// every open/half-open/closed transition — is a wall-clock event.
pub const VOLATILE_FAMILIES: &[&str] = &[
    "foldic_serve_request_latency_ms",
    "foldic_serve_job_wait_ms",
    "foldic_serve_job_run_ms",
    "foldic_serve_queue_depth",
    "foldic_serve_queue_high_water",
    "foldic_serve_uptime_seconds",
    "foldic_serve_workers",
    "foldic_serve_workers_busy",
    "foldic_serve_breaker_state",
    "foldic_serve_breaker_transitions_total",
    "foldic_serve_mem_reserved_bytes",
    "foldic_serve_mem_reserved_peak_bytes",
];

/// `true` for series excluded from byte-determinism comparisons: the
/// [`VOLATILE_FAMILIES`] plus `job_status`-endpoint request samples
/// (poll counts depend on how long jobs were in flight).
pub fn is_volatile_series(series: &str) -> bool {
    VOLATILE_FAMILIES.contains(&expo::family_of(series))
        || series.contains("endpoint=\"job_status\"")
}

/// The deterministic projection of an exposition body: volatile series
/// (and their orphaned `# TYPE` lines) removed. Two daemons fed the same
/// seeded traffic return byte-identical projections at any worker count.
pub fn deterministic_subset(exposition: &str) -> String {
    expo::filter_exposition(exposition, &|series| !is_volatile_series(series))
}

/// Stable endpoint class for a request, bounding label cardinality.
pub fn endpoint_class(method: &str, path: &str) -> &'static str {
    let _ = method;
    match path {
        "/healthz" => "healthz",
        "/stats" => "stats",
        "/metrics" => "metrics",
        "/jobs" => "submit",
        "/shutdown" => "shutdown",
        _ => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                return match rest.split_once('/').map(|(_, tail)| tail) {
                    None => "job_status",
                    Some("result") => "job_result",
                    Some("trace") => "job_trace",
                    Some("cancel") => "job_cancel",
                    Some(_) => "other",
                };
            }
            if path.starts_with("/cache/") {
                return "cache";
            }
            "other"
        }
    }
}

/// Clamps an arbitrary client method token to a bounded label value.
pub fn method_label(method: &str) -> &'static str {
    match method {
        "GET" => "GET",
        "POST" => "POST",
        _ => "other",
    }
}

/// A string-valued structured log field.
pub fn field_str(key: &str, value: &str) -> (String, Json) {
    (key.to_owned(), Json::Str(value.to_owned()))
}

/// A numeric structured log field.
pub fn field_num(key: &str, value: f64) -> (String, Json) {
    (key.to_owned(), Json::Num(value))
}

/// Telemetry tuning handed to [`Telemetry::new`].
#[derive(Default)]
pub struct TelemetryConfig {
    /// Enable request/job tracing (turns on the process-global
    /// `foldic-obs` trace buffer and the per-job mux).
    pub trace: bool,
    /// Structured log sink, if any.
    pub log: Option<Arc<LogSink>>,
}

/// Per-job span-tree assembly over the global trace buffer.
#[derive(Default)]
struct TraceMux {
    /// Span id → owning job, grown by ancestry at ingest.
    assigned: HashMap<SpanId, u64>,
    /// Job → its events, in ingest order (sorted on render).
    events: HashMap<u64, Vec<Event>>,
}

impl TraceMux {
    /// Declares `span` (and its future descendants) as belonging to `job`.
    fn seed(&mut self, job: u64, span: SpanId) {
        self.assigned.insert(span, job);
        self.events.entry(job).or_default();
    }

    /// Appends a pre-assigned (synthesized) event to `job`'s tree.
    fn push(&mut self, job: u64, event: Event) {
        self.assigned.insert(event.span, job);
        self.events.entry(job).or_default().push(event);
    }

    /// Distributes drained events to jobs by span ancestry; events with
    /// unknown ancestry are dropped. `drained` must be in `(ts_ns, seq)`
    /// order so Begin events assign a span before its children arrive.
    fn absorb(&mut self, drained: Vec<Event>) {
        for event in drained {
            let job = match self.assigned.get(&event.span) {
                Some(&job) => Some(job),
                None => event
                    .parent
                    .and_then(|p| self.assigned.get(&p).copied())
                    .inspect(|&job| {
                        self.assigned.insert(event.span, job);
                    }),
            };
            if let Some(job) = job {
                self.events.entry(job).or_default().push(event);
            }
        }
    }

    /// `job`'s events sorted the way exporters need them.
    fn events_for(&self, job: u64) -> Option<Vec<Event>> {
        let mut events = self.events.get(&job)?.clone();
        events.sort_by_key(|e| (e.ts_ns, e.seq));
        Some(events)
    }
}

/// Shared observability state: always-on metrics registry, optional
/// structured log, optional per-job trace mux, request-id allocator and
/// the uptime epoch. One instance per daemon, shared by the server and
/// its scheduler.
pub struct Telemetry {
    registry: Registry,
    log: Option<Arc<LogSink>>,
    mux: Option<Mutex<TraceMux>>,
    next_request: AtomicU64,
    started: Instant,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("trace", &self.mux.is_some())
            .field("log", &self.log.is_some())
            .finish()
    }
}

impl Telemetry {
    /// Builds the telemetry hub. The metrics registry starts enabled;
    /// with `cfg.trace` the process-global `foldic-obs` trace layer is
    /// switched on (clearing its buffers).
    pub fn new(cfg: TelemetryConfig) -> Arc<Self> {
        let registry = Registry::new();
        registry.set_enabled(true);
        if cfg.trace {
            trace::set_enabled(true);
        }
        Arc::new(Self {
            registry,
            log: cfg.log,
            mux: cfg.trace.then(|| Mutex::new(TraceMux::default())),
            next_request: AtomicU64::new(1),
            started: Instant::now(),
        })
    }

    /// A hub with tracing and logging off — metrics still record.
    pub fn disabled() -> Arc<Self> {
        Self::new(TelemetryConfig::default())
    }

    /// The metrics registry behind `/metrics`.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// `true` when per-job tracing is active.
    pub fn trace_enabled(&self) -> bool {
        self.mux.is_some()
    }

    /// Whole seconds since the daemon started.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Allocates a request id (`req-000001`-style, unique per process).
    pub fn next_request_id(&self) -> String {
        format!(
            "req-{:06x}",
            self.next_request.fetch_add(1, Ordering::Relaxed)
        )
    }

    /// Writes a structured log line, if a sink is attached.
    pub fn log(&self, level: Level, event: &str, fields: Vec<(String, Json)>) {
        if let Some(sink) = &self.log {
            sink.log(level, event, fields);
        }
    }

    /// `true` when a log line at `level` would actually be written.
    pub fn log_enabled(&self, level: Level) -> bool {
        self.log.as_ref().is_some_and(|sink| sink.enabled(level))
    }

    /// Records one finished request: counter, latency histogram, access
    /// log line.
    pub fn record_request(
        &self,
        endpoint: &'static str,
        method: &str,
        status: u16,
        latency_ms: f64,
        request_id: &str,
    ) {
        let method = method_label(method);
        self.registry
            .add(&requests_series(endpoint, method, status), 1);
        self.registry.observe(&latency_series(endpoint), latency_ms);
        let level = if status >= 500 {
            Level::Error
        } else if status >= 400 {
            Level::Warn
        } else {
            Level::Info
        };
        if self.log_enabled(level) {
            self.log(
                level,
                "request",
                vec![
                    ("endpoint".to_owned(), Json::Str(endpoint.to_owned())),
                    ("latency_ms".to_owned(), Json::Num(latency_ms)),
                    ("method".to_owned(), Json::Str(method.to_owned())),
                    ("request_id".to_owned(), Json::Str(request_id.to_owned())),
                    ("status".to_owned(), Json::Num(f64::from(status))),
                ],
            );
        }
    }

    /// Assigns `span` (a request's `http.request` span) to `job`.
    pub fn seed_job_span(&self, job: u64, span: SpanId) {
        if let Some(mux) = &self.mux {
            mux.lock()
                .unwrap_or_else(|e| e.into_inner())
                .seed(job, span);
        }
    }

    /// Appends a synthesized event directly to `job`'s tree.
    pub fn push_job_event(&self, job: u64, event: Event) {
        if let Some(mux) = &self.mux {
            mux.lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(job, event);
        }
    }

    /// Drains the global trace buffer into the per-job mux. Called at
    /// job completion, on trace/metrics reads, and — crucially — in the
    /// shutdown drain path, so no span recorded before `POST /shutdown`
    /// is lost.
    pub fn ingest(&self) {
        if let Some(mux) = &self.mux {
            let drained = trace::take_events();
            if !drained.is_empty() {
                mux.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .absorb(drained);
            }
        }
    }

    /// `job`'s span tree as Chrome-trace JSON (`None`: tracing off or
    /// the job has no recorded events).
    pub fn job_trace_json(&self, job: u64) -> Option<String> {
        let mux = self.mux.as_ref()?;
        self.ingest();
        let events = mux
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events_for(job)?;
        if events.is_empty() {
            return None;
        }
        Some(trace::chrome_trace_json(&events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_obs::trace::EventKind;

    fn ev(
        kind: EventKind,
        name: &'static str,
        span: SpanId,
        parent: Option<SpanId>,
        ts: u64,
    ) -> Event {
        trace::synthetic_event(kind, name, span, parent, ts, Vec::new())
    }

    #[test]
    fn endpoint_classes_are_stable_and_bounded() {
        assert_eq!(endpoint_class("GET", "/healthz"), "healthz");
        assert_eq!(endpoint_class("GET", "/stats"), "stats");
        assert_eq!(endpoint_class("GET", "/metrics"), "metrics");
        assert_eq!(endpoint_class("POST", "/jobs"), "submit");
        assert_eq!(endpoint_class("GET", "/jobs/17"), "job_status");
        assert_eq!(endpoint_class("GET", "/jobs/17/result"), "job_result");
        assert_eq!(endpoint_class("GET", "/jobs/17/trace"), "job_trace");
        assert_eq!(endpoint_class("POST", "/jobs/17/cancel"), "job_cancel");
        assert_eq!(endpoint_class("GET", "/cache/abcd"), "cache");
        assert_eq!(endpoint_class("POST", "/shutdown"), "shutdown");
        assert_eq!(endpoint_class("GET", "/jobs/17/bogus"), "other");
        assert_eq!(endpoint_class("GET", "/nope"), "other");
        assert_eq!(method_label("DELETE"), "other");
        assert_eq!(method_label("GET"), "GET");
    }

    #[test]
    fn volatile_filter_matches_the_documented_exclusions() {
        assert!(is_volatile_series(
            "foldic_serve_job_wait_ms_bucket{le=\"1\"}"
        ));
        assert!(is_volatile_series(
            "foldic_serve_request_latency_ms_sum{endpoint=\"submit\"}"
        ));
        assert!(is_volatile_series("foldic_serve_uptime_seconds"));
        assert!(is_volatile_series(
            "foldic_serve_requests_total{endpoint=\"job_status\",method=\"GET\",status=\"200\"}"
        ));
        assert!(!is_volatile_series(
            "foldic_serve_requests_total{endpoint=\"submit\",method=\"POST\",status=\"202\"}"
        ));
        assert!(!is_volatile_series(&jobs_state_series("done")));
        assert!(!is_volatile_series(SERIES_CACHE_HITS));
    }

    #[test]
    fn mux_assigns_events_by_ancestry_and_drops_strays() {
        let mut mux = TraceMux::default();
        mux.seed(7, 100); // http.request span of job 7
        let drained = vec![
            ev(EventKind::Begin, "http.request", 100, None, 10),
            ev(EventKind::Begin, "stage", 101, Some(100), 20),
            ev(EventKind::Begin, "block", 102, Some(101), 30),
            ev(EventKind::Begin, "stray", 900, Some(899), 35),
            ev(EventKind::End, "block", 102, None, 40),
            ev(EventKind::End, "stage", 101, None, 50),
            ev(EventKind::End, "http.request", 100, None, 60),
        ];
        mux.absorb(drained);
        let events = mux.events_for(7).unwrap();
        assert_eq!(events.len(), 6, "stray span must be dropped");
        assert!(events.iter().all(|e| e.name != "stray"));
        // grand-child chained through its parent's assignment
        assert!(events.iter().any(|e| e.name == "block"));
        assert!(mux.events_for(8).is_none());
    }

    #[test]
    fn mux_renders_sorted_chrome_trace_with_synthesized_spans() {
        let mut mux = TraceMux::default();
        mux.seed(3, 200);
        // dispatch synthesizes queue.wait after absorbing nothing yet;
        // its Begin timestamp predates events pushed later
        mux.push(3, ev(EventKind::Begin, "queue.wait", 201, Some(200), 15));
        mux.push(3, ev(EventKind::End, "queue.wait", 201, None, 25));
        mux.absorb(vec![
            ev(EventKind::Begin, "http.request", 200, None, 10),
            ev(EventKind::Begin, "job.run", 202, Some(201), 26),
            ev(EventKind::End, "job.run", 202, None, 30),
            ev(EventKind::End, "http.request", 200, None, 16),
        ]);
        let events = mux.events_for(3).unwrap();
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "http.request",
                "queue.wait",
                "http.request",
                "queue.wait",
                "job.run",
                "job.run"
            ],
            "events must sort by timestamp"
        );
        let doc = Json::parse(&trace::chrome_trace_json(&events)).unwrap();
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(items.len(), 6);
        // parentage is visible in args: queue.wait → http.request → job.run
        let arg = |name: &str, key: &str| -> f64 {
            items
                .iter()
                .find(|i| {
                    i.get("name").and_then(Json::as_str) == Some(name)
                        && i.get("ph").and_then(Json::as_str) == Some("B")
                })
                .and_then(|i| {
                    i.get("args")
                        .and_then(|a| a.get(key))
                        .and_then(Json::as_f64)
                })
                .unwrap_or(-1.0)
        };
        assert_eq!(arg("queue.wait", "parent"), 200.0);
        assert_eq!(arg("job.run", "parent"), 201.0);
    }

    #[test]
    fn deterministic_subset_strips_volatile_families() {
        let tele = Telemetry::disabled();
        tele.record_request("submit", "POST", 202, 1.25, "req-1");
        tele.record_request("job_status", "GET", 200, 0.5, "req-2");
        let mut snap = tele.registry().snapshot();
        snap.metrics.insert(
            "foldic_serve_uptime_seconds".to_owned(),
            foldic_obs::metrics::Metric::Gauge(12.0),
        );
        let text = expo::to_prometheus(&snap);
        let subset = deterministic_subset(&text);
        assert!(subset.contains("endpoint=\"submit\""));
        assert!(!subset.contains("request_latency"));
        assert!(!subset.contains("uptime"));
        assert!(!subset.contains("job_status"));
        expo::parse_exposition(&subset).expect("subset parses");
    }

    #[test]
    fn request_ids_are_unique_and_formatted() {
        let tele = Telemetry::disabled();
        let a = tele.next_request_id();
        let b = tele.next_request_id();
        assert_ne!(a, b);
        assert!(a.starts_with("req-"), "{a}");
        assert_eq!(a.len(), "req-".len() + 6);
    }
}
