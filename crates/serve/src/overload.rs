//! Deterministic overload harness: flood a memory-limited daemon and
//! prove it degrades instead of dying.
//!
//! The harness drives a **subprocess** daemon (the caller supplies the
//! command line — `repro loadgen --overload SEED` points it at its own
//! binary's `serve` subcommand) booted with a deliberately small
//! `--mem-limit`, through a seeded overload scenario:
//!
//! 1. boot the daemon with `--mem-limit` sized so one ordinary job fits
//!    and a two-study job does not;
//! 2. submit an **oversized** job first — its cost estimate exceeds the
//!    limit outright, so admission reserves the whole ledger, derives a
//!    per-job budget, and runs it alone;
//! 3. burst-submit a seeded stream of fitting jobs behind it. With the
//!    ledger fully committed every one must be **shed** (503 +
//!    `Retry-After`), never crashed on and never silently dropped;
//! 4. retry each shed job, honoring its `Retry-After` hint, until every
//!    fitting job is acknowledged and completes — graceful degradation
//!    means overload costs latency, not results;
//! 5. resubmit the oversized spec and assert its body matches the
//!    first run's modulo the `resources` section (budget-degraded
//!    execution is deterministic; peak figures sit outside the resource
//!    layer's determinism boundary) and that both bodies carry that
//!    `resources` provenance section proving the budget rode along;
//! 6. cross-check `/stats` (`resources.mem_shed`, `.oversized`,
//!    `.reserved_bytes` drained to zero) and shut down cleanly.
//!
//! Report: a `foldic-serve-overload/1` document whose
//! [`OverloadReport::gate`] fails CI on any violation. Everything is
//! derived from one seed (job spec seeds and submission order); wall
//! clock only decides how often retries spin, never what the gate sees.

use crate::chaos::{job_id, wait_done_body, Daemon};
use crate::client;
use crate::job::JobSpec;
use foldic_obs::json::Json;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Schema tag of the overload report document.
pub const OVERLOAD_REPORT_SCHEMA: &str = "foldic-serve-overload/1";

/// Per-request timeout for harness HTTP calls.
const HTTP_TIMEOUT: Duration = Duration::from_secs(10);

/// Admission limit the daemon boots with: one fitting (single-study
/// tiny) job reserves ~4 MiB, so 5 MiB admits exactly one at a time and
/// classifies any two-study spec oversized — the smallest configuration
/// that exercises every admission path.
pub const DEFAULT_MEM_LIMIT: u64 = 5 << 20;

/// Overload scenario configuration.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Command line that boots the daemon (binary + args). The harness
    /// appends `--addr 127.0.0.1:0 --port-file <f> --mem-limit <n>`
    /// itself.
    pub serve_cmd: Vec<String>,
    /// Master seed for job spec seeds and submission order.
    pub seed: u64,
    /// Fitting jobs that must all complete despite the overload.
    pub jobs: usize,
    /// `--mem-limit` handed to the daemon.
    pub mem_limit: u64,
    /// Scratch directory for port files. Created by the harness.
    pub dir: PathBuf,
    /// Overall scenario deadline (boot, retries, completions).
    pub timeout: Duration,
}

/// What one overload run observed; [`OverloadReport::gate`] turns it
/// into a pass/fail.
#[derive(Debug, Clone, Default)]
pub struct OverloadReport {
    /// Seed the scenario ran under.
    pub seed: u64,
    /// Admission limit the daemon ran with.
    pub mem_limit: u64,
    /// Fitting jobs the scenario submitted.
    pub fitting: u64,
    /// Of those, jobs that reached `done` (**small-job completion**).
    pub completed: u64,
    /// 503 sheds observed across the burst and retries (**the overload
    /// must actually overload** — 0 means the scenario proved nothing).
    pub shed: u64,
    /// Sheds whose `Retry-After` header was missing or unusable
    /// (must be 0 — clients cannot back off without a hint).
    pub bad_retry_after: u64,
    /// Oversized submissions acknowledged (the harness sends 2).
    pub oversized_acked: u64,
    /// Whether the two oversized bodies differed outside the
    /// `resources` section (**budget-degraded execution must be
    /// deterministic**; peaks alone are tolerance-compared, not
    /// byte-exact).
    pub oversized_mismatched: bool,
    /// Oversized bodies missing the manifest `resources` section (the
    /// proof the per-job budget was actually installed).
    pub oversized_missing_resources: u64,
    /// Acknowledged ids that turned `failed`/`cancelled` or never went
    /// terminal.
    pub failed: Vec<u64>,
    /// Whether the daemon process exited before the clean shutdown
    /// (**daemon survival** — the headline invariant).
    pub daemon_died: bool,
    /// `/stats` `resources.mem_shed` after the scenario drained.
    pub stats_mem_shed: u64,
    /// `/stats` `resources.oversized` after the scenario drained.
    pub stats_oversized: u64,
    /// `/stats` `resources.reserved_bytes` after the scenario drained
    /// (a non-zero value is a leaked reservation).
    pub stats_reserved_after: u64,
}

impl OverloadReport {
    /// The report as a `foldic-serve-overload/1` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "schema".to_owned(),
                Json::Str(OVERLOAD_REPORT_SCHEMA.to_owned()),
            ),
            ("seed".to_owned(), Json::Num(self.seed as f64)),
            (
                "mem_limit_bytes".to_owned(),
                Json::Num(self.mem_limit as f64),
            ),
            ("fitting".to_owned(), Json::Num(self.fitting as f64)),
            ("completed".to_owned(), Json::Num(self.completed as f64)),
            ("shed".to_owned(), Json::Num(self.shed as f64)),
            (
                "bad_retry_after".to_owned(),
                Json::Num(self.bad_retry_after as f64),
            ),
            (
                "oversized_acked".to_owned(),
                Json::Num(self.oversized_acked as f64),
            ),
            (
                "oversized_mismatched".to_owned(),
                Json::Bool(self.oversized_mismatched),
            ),
            (
                "oversized_missing_resources".to_owned(),
                Json::Num(self.oversized_missing_resources as f64),
            ),
            (
                "failed".to_owned(),
                Json::Arr(self.failed.iter().map(|&id| Json::Num(id as f64)).collect()),
            ),
            ("daemon_died".to_owned(), Json::Bool(self.daemon_died)),
            (
                "stats_mem_shed".to_owned(),
                Json::Num(self.stats_mem_shed as f64),
            ),
            (
                "stats_oversized".to_owned(),
                Json::Num(self.stats_oversized as f64),
            ),
            (
                "stats_reserved_after".to_owned(),
                Json::Num(self.stats_reserved_after as f64),
            ),
            ("pass".to_owned(), Json::Bool(self.gate().is_ok())),
        ])
    }

    /// The overload gate.
    ///
    /// # Errors
    ///
    /// One message per violated invariant.
    pub fn gate(&self) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        if self.daemon_died {
            violations.push("daemon died under overload".to_owned());
        }
        if self.fitting == 0 {
            violations.push("no fitting jobs were submitted; scenario did not run".to_owned());
        }
        if self.completed < self.fitting {
            violations.push(format!(
                "only {}/{} fitting job(s) completed under overload",
                self.completed, self.fitting
            ));
        }
        if self.shed == 0 {
            violations.push("no submission was shed — the scenario never overloaded".to_owned());
        }
        if self.bad_retry_after > 0 {
            violations.push(format!(
                "{} shed(s) carried no usable Retry-After hint",
                self.bad_retry_after
            ));
        }
        if self.oversized_acked < 2 {
            violations.push(format!(
                "only {} oversized submission(s) acknowledged (want 2)",
                self.oversized_acked
            ));
        }
        if self.oversized_mismatched {
            violations.push("oversized bodies differ between runs".to_owned());
        }
        if self.oversized_missing_resources > 0 {
            violations.push(format!(
                "{} oversized body(ies) lack `resources` provenance",
                self.oversized_missing_resources
            ));
        }
        if !self.failed.is_empty() {
            violations.push(format!(
                "{} job(s) failed or never went terminal: {:?}",
                self.failed.len(),
                self.failed
            ));
        }
        if self.stats_oversized != self.oversized_acked {
            violations.push(format!(
                "/stats counted {} oversized admission(s), harness saw {}",
                self.stats_oversized, self.oversized_acked
            ));
        }
        if self.stats_mem_shed < self.shed {
            violations.push(format!(
                "/stats counted {} mem shed(s), harness saw {}",
                self.stats_mem_shed, self.shed
            ));
        }
        if self.stats_reserved_after != 0 {
            violations.push(format!(
                "reservation ledger leaked {} byte(s) after drain",
                self.stats_reserved_after
            ));
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

/// The oversized spec: two distinct tiny studies price above
/// [`DEFAULT_MEM_LIMIT`], so admission classifies it oversized and runs
/// it under a derived budget. A fixed seed keeps its body comparable
/// across the two submissions.
fn oversized_spec() -> JobSpec {
    JobSpec {
        experiments: vec!["table2".to_owned(), "fig2".to_owned()],
        size: "tiny".to_owned(),
        seed: Some(0xF01D),
        ..JobSpec::default()
    }
}

/// A seeded fitting spec: one tiny study, distinct seeds so the stream
/// is computed work (cache hits would dodge the ledger entirely).
fn fitting_spec(rng: &mut StdRng) -> JobSpec {
    JobSpec {
        experiments: vec!["table2".to_owned()],
        size: "tiny".to_owned(),
        seed: Some(rng.gen_range(0..1u64 << 32)),
        ..JobSpec::default()
    }
}

/// Classifies one submission attempt for the retry loop.
enum Attempt {
    Acked(u64),
    Shed { retry_after: Option<u64> },
    Other,
}

fn submit(daemon: &Daemon, spec: &JobSpec) -> Attempt {
    let Ok(response) = client::post_json(daemon.addr, "/jobs", &spec.to_json(), HTTP_TIMEOUT)
    else {
        return Attempt::Other;
    };
    match response.status {
        200 | 202 => match job_id(&response) {
            Some(id) => Attempt::Acked(id),
            None => Attempt::Other,
        },
        503 => Attempt::Shed {
            retry_after: response
                .header("retry-after")
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&secs| secs >= 1),
        },
        _ => Attempt::Other,
    }
}

/// `resources` counters from `/stats`, as (mem_shed, oversized,
/// reserved_bytes).
fn stats_resources(daemon: &Daemon) -> Option<(u64, u64, u64)> {
    let response = client::get(daemon.addr, "/stats", HTTP_TIMEOUT).ok()?;
    let doc = response.body_json().ok()?;
    let resources = doc.get("resources")?;
    let num = |key: &str| resources.get(key).and_then(Json::as_f64).map(|n| n as u64);
    Some((num("mem_shed")?, num("oversized")?, num("reserved_bytes")?))
}

/// Whether a result body is a manifest carrying the `resources`
/// provenance section (proof the job ran under an installed budget).
fn body_has_resources(body: &[u8]) -> bool {
    std::str::from_utf8(body)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .is_some_and(|doc| doc.get("resources").is_some())
}

/// Canonical form of a manifest body with its `resources` section
/// stripped. Peak net-allocation figures sit outside the resource
/// layer's determinism boundary (they depend on what the worker thread
/// freed during the window — see `foldic-fault::resource`'s module
/// docs), so the determinism invariant covers everything *but* them:
/// results, config, and `mem_exceeded` provenance must match exactly.
fn body_modulo_resources(body: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(body).ok()?;
    let mut doc = Json::parse(text).ok()?;
    if let Some(obj) = doc.as_obj_mut() {
        obj.remove("resources");
    }
    Some(doc.to_compact())
}

/// Runs the full scenario.
///
/// # Errors
///
/// Harness-level failures only (cannot spawn the daemon, a shutdown
/// that had to be escalated to SIGKILL). Invariant *violations* are not
/// errors — they land in the report for [`OverloadReport::gate`] to
/// judge, so CI output shows the whole picture.
pub fn run(cfg: &OverloadConfig) -> Result<OverloadReport, String> {
    std::fs::create_dir_all(&cfg.dir)
        .map_err(|e| format!("overload: cannot create {}: {e}", cfg.dir.display()))?;
    let mut report = OverloadReport {
        seed: cfg.seed,
        mem_limit: cfg.mem_limit,
        ..OverloadReport::default()
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let deadline = Instant::now() + cfg.timeout;

    let extra = [
        std::ffi::OsString::from("--mem-limit"),
        std::ffi::OsString::from(cfg.mem_limit.to_string()),
    ];
    let mut daemon = Daemon::spawn(
        &cfg.serve_cmd,
        &extra,
        &cfg.dir.join("addr.txt"),
        cfg.timeout,
    )
    .map_err(|e| format!("overload: {e}"))?;

    // Phase 1: the oversized job first. Admission reserves the whole
    // ledger for it, so the burst behind it is guaranteed to shed.
    let over = oversized_spec();
    let first_over_id = match submit(&daemon, &over) {
        Attempt::Acked(id) => {
            report.oversized_acked += 1;
            Some(id)
        }
        _ => None,
    };

    // Phase 2: burst the fitting jobs with no pacing. Track what shed.
    let specs: Vec<JobSpec> = (0..cfg.jobs.max(1))
        .map(|_| fitting_spec(&mut rng))
        .collect();
    report.fitting = specs.len() as u64;
    let mut pending: Vec<(JobSpec, Option<u64>)> =
        specs.into_iter().map(|spec| (spec, None)).collect();
    for (spec, acked) in &mut pending {
        match submit(&daemon, spec) {
            Attempt::Acked(id) => *acked = Some(id),
            Attempt::Shed { retry_after } => {
                report.shed += 1;
                if retry_after.is_none() {
                    report.bad_retry_after += 1;
                }
            }
            Attempt::Other => {}
        }
    }

    // Phase 3: retry loop — honor each shed's hint until every fitting
    // job is acknowledged (or the scenario deadline expires).
    while pending.iter().any(|(_, acked)| acked.is_none()) && Instant::now() < deadline {
        if daemon.child.try_wait().ok().flatten().is_some() {
            report.daemon_died = true;
            return Ok(report);
        }
        let mut backoff = 1u64;
        for (spec, acked) in &mut pending {
            if acked.is_some() {
                continue;
            }
            match submit(&daemon, spec) {
                Attempt::Acked(id) => *acked = Some(id),
                Attempt::Shed { retry_after } => {
                    report.shed += 1;
                    match retry_after {
                        Some(hint) => backoff = backoff.max(hint),
                        None => report.bad_retry_after += 1,
                    }
                }
                Attempt::Other => {}
            }
        }
        if pending.iter().any(|(_, acked)| acked.is_none()) {
            // Honoring the largest hint of the round keeps the loop a
            // well-behaved client; the hint is bounded, so this cannot
            // outlive the scenario deadline by much.
            std::thread::sleep(Duration::from_secs(backoff.min(10)));
        }
    }

    // Phase 4: every acknowledged fitting job must complete.
    for id in pending.iter().filter_map(|(_, acked)| acked.as_ref()) {
        match wait_done_body(daemon.addr, *id, cfg.timeout) {
            Some(_) => report.completed += 1,
            None => report.failed.push(*id),
        }
    }

    // Phase 5: the oversized body, twice — deterministic and carrying
    // `resources` provenance. The spec is non-cacheable, so the second
    // submission recomputes rather than replaying a cached body.
    let mut over_bodies: Vec<Vec<u8>> = Vec::new();
    if let Some(id) = first_over_id {
        match wait_done_body(daemon.addr, id, cfg.timeout) {
            Some(body) => over_bodies.push(body),
            None => report.failed.push(id),
        }
    }
    if let Attempt::Acked(id) = submit(&daemon, &over) {
        report.oversized_acked += 1;
        match wait_done_body(daemon.addr, id, cfg.timeout) {
            Some(body) => over_bodies.push(body),
            None => report.failed.push(id),
        }
    }
    report.oversized_mismatched = over_bodies.len() == 2
        && body_modulo_resources(&over_bodies[0]) != body_modulo_resources(&over_bodies[1]);
    report.oversized_missing_resources = over_bodies
        .iter()
        .filter(|body| !body_has_resources(body))
        .count() as u64;

    // Phase 6: ledger and counters after the drain, then a clean exit.
    if let Some((mem_shed, oversized, reserved)) = stats_resources(&daemon) {
        report.stats_mem_shed = mem_shed;
        report.stats_oversized = oversized;
        report.stats_reserved_after = reserved;
    }
    if daemon.child.try_wait().ok().flatten().is_some() {
        report.daemon_died = true;
        return Ok(report);
    }
    daemon
        .shutdown_clean(cfg.timeout)
        .map_err(|e| format!("overload: {e}"))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> OverloadReport {
        OverloadReport {
            seed: 42,
            mem_limit: DEFAULT_MEM_LIMIT,
            fitting: 6,
            completed: 6,
            shed: 9,
            oversized_acked: 2,
            stats_mem_shed: 9,
            stats_oversized: 2,
            ..OverloadReport::default()
        }
    }

    #[test]
    fn gate_passes_only_when_all_invariants_hold() {
        assert!(clean().gate().is_ok());
        assert_eq!(clean().to_json().get("pass").unwrap(), &Json::Bool(true));

        let died = OverloadReport {
            daemon_died: true,
            ..clean()
        };
        assert!(died.gate().unwrap_err().iter().any(|v| v.contains("died")));
        let starved = OverloadReport {
            completed: 3,
            ..clean()
        };
        assert!(starved
            .gate()
            .unwrap_err()
            .iter()
            .any(|v| v.contains("3/6")));
        let never_overloaded = OverloadReport { shed: 0, ..clean() };
        assert!(never_overloaded
            .gate()
            .unwrap_err()
            .iter()
            .any(|v| v.contains("never overloaded")));
        let hintless = OverloadReport {
            bad_retry_after: 2,
            ..clean()
        };
        assert!(hintless
            .gate()
            .unwrap_err()
            .iter()
            .any(|v| v.contains("Retry-After")));
        let nondeterministic = OverloadReport {
            oversized_mismatched: true,
            ..clean()
        };
        assert!(nondeterministic
            .gate()
            .unwrap_err()
            .iter()
            .any(|v| v.contains("differ")));
        let leaked = OverloadReport {
            stats_reserved_after: 4096,
            ..clean()
        };
        assert!(leaked
            .gate()
            .unwrap_err()
            .iter()
            .any(|v| v.contains("leaked")));
        let empty = OverloadReport::default();
        assert!(empty.gate().is_err(), "an empty run must not pass");
    }

    #[test]
    fn report_document_is_well_formed() {
        let doc = clean().to_json();
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some(OVERLOAD_REPORT_SCHEMA)
        );
        assert_eq!(doc.get("pass").unwrap(), &Json::Bool(true));
        assert_eq!(doc.get("completed").unwrap().as_f64(), Some(6.0));
    }

    #[test]
    fn oversized_spec_prices_above_the_default_limit_and_fitting_below() {
        let over = crate::cost::estimate_cost(&oversized_spec()).unwrap();
        assert!(
            over > DEFAULT_MEM_LIMIT,
            "oversized spec must exceed the limit ({over} <= {DEFAULT_MEM_LIMIT})"
        );
        let mut rng = StdRng::seed_from_u64(7);
        let fit = crate::cost::estimate_cost(&fitting_spec(&mut rng)).unwrap();
        assert!(
            fit <= DEFAULT_MEM_LIMIT,
            "fitting spec must fit under the limit ({fit} > {DEFAULT_MEM_LIMIT})"
        );
        assert!(
            2 * fit > DEFAULT_MEM_LIMIT,
            "two fitting jobs must not fit at once or nothing ever sheds"
        );
    }
}
