//! Bounded, typed HTTP/1.1 request parsing and response writing.
//!
//! The daemon feeds on whatever bytes arrive on a TCP socket, so the
//! parser is written like `foldic_obs::json::Json::parse`: every
//! malformed, truncated or oversized input maps to a *typed* error (which
//! the server turns into a 4xx response) — never a panic, and never an
//! unbounded read. All limits are explicit constants so the fuzz suite
//! can probe exactly one byte past each of them.

use std::io::{BufRead, Write};

/// Longest accepted request line (`METHOD SP TARGET SP VERSION\r\n`).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 4096;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A typed request-handling failure, mapped to an HTTP status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before sending a single byte —
    /// not a protocol error, the server just drops the connection.
    Closed,
    /// Malformed syntax, truncated request, bad content length… (400).
    BadRequest(String),
    /// Request target longer than [`MAX_REQUEST_LINE`] allows (414).
    UriTooLong(String),
    /// A header line or the header count blew its limit (431).
    HeadersTooLarge(String),
    /// Declared or actual body larger than [`MAX_BODY_BYTES`] (413).
    PayloadTooLarge(String),
    /// The socket read timed out mid-request — a torn write the peer
    /// never finished (408).
    Timeout(String),
    /// A feature this server deliberately does not implement, e.g.
    /// chunked transfer encoding (501).
    NotImplemented(String),
}

impl HttpError {
    /// The HTTP status code this error maps to (0 for [`HttpError::Closed`],
    /// which produces no response at all).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Closed => 0,
            HttpError::BadRequest(_) => 400,
            HttpError::Timeout(_) => 408,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::UriTooLong(_) => 414,
            HttpError::HeadersTooLarge(_) => 431,
            HttpError::NotImplemented(_) => 501,
        }
    }

    /// The human-readable detail carried by the error.
    pub fn message(&self) -> &str {
        match self {
            HttpError::Closed => "connection closed",
            HttpError::BadRequest(m)
            | HttpError::UriTooLong(m)
            | HttpError::HeadersTooLarge(m)
            | HttpError::PayloadTooLarge(m)
            | HttpError::Timeout(m)
            | HttpError::NotImplemented(m) => m,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path, no scheme/authority).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one line (up to and including `\n`) with a hard byte cap.
/// Returns the line without its `\r\n` / `\n` terminator.
fn read_line_capped(
    reader: &mut dyn BufRead,
    cap: usize,
    what: &str,
) -> Result<Option<String>, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None); // clean EOF at a line boundary
                }
                return Err(HttpError::BadRequest(format!("truncated {what}")));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| HttpError::BadRequest(format!("{what} is not UTF-8")))?;
                    return Ok(Some(line));
                }
                buf.push(byte[0]);
                if buf.len() > cap {
                    return Err(match what {
                        "request line" => {
                            HttpError::UriTooLong(format!("request line exceeds {cap} bytes"))
                        }
                        _ => HttpError::HeadersTooLarge(format!("{what} exceeds {cap} bytes")),
                    });
                }
            }
            Err(e) if is_timeout(&e) => {
                return Err(HttpError::Timeout(format!("read timed out in {what}")));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::BadRequest(format!("read error in {what}: {e}"))),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads and parses one request from `reader`.
///
/// # Errors
///
/// [`HttpError::Closed`] when the peer sent nothing at all; otherwise a
/// typed 4xx/5xx error for every way the request can be malformed,
/// truncated, oversized or stalled. Never panics; every read is bounded
/// by a byte cap, so a hostile peer cannot make this allocate or loop
/// without limit (the caller bounds wall time via socket read timeouts).
pub fn read_request(reader: &mut dyn BufRead) -> Result<Request, HttpError> {
    let Some(line) = read_line_capped(reader, MAX_REQUEST_LINE, "request line")? else {
        return Err(HttpError::Closed);
    };
    if line.is_empty() {
        return Err(HttpError::BadRequest("empty request line".to_owned()));
    }
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{}`",
                line.chars().take(80).collect::<String>()
            )))
        }
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version `{version}`"
        )));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!("bad method `{method}`")));
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest(format!("bad target `{path}`")));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let Some(line) = read_line_capped(reader, MAX_HEADER_LINE, "header")? else {
            return Err(HttpError::BadRequest("truncated headers".to_owned()));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "header without colon `{}`",
                line.chars().take(80).collect::<String>()
            )));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!("bad header name `{name}`")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::NotImplemented(
            "transfer-encoding is not supported; send Content-Length".to_owned(),
        ));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length `{len}`")))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::PayloadTooLarge(format!(
                "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )));
        }
        let mut body = vec![0u8; len];
        let mut read = 0;
        while read < len {
            match reader.read(&mut body[read..]) {
                Ok(0) => {
                    return Err(HttpError::BadRequest(format!(
                        "truncated body ({read} of {len} bytes)"
                    )))
                }
                Ok(n) => read += n,
                Err(e) if is_timeout(&e) => {
                    return Err(HttpError::Timeout(format!(
                        "read timed out in body ({read} of {len} bytes)"
                    )));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(HttpError::BadRequest(format!("read error in body: {e}"))),
            }
        }
        request.body = body;
    }
    Ok(request)
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the automatic `Content-Length`,
    /// `Content-Type` and `Connection: close`.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
    /// `Content-Type` value (defaults to `application/json`).
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response from a `foldic_obs` value.
    pub fn json(status: u16, value: &foldic_obs::json::Json) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: value.to_pretty().into_bytes(),
            content_type: "application/json",
        }
    }

    /// A JSON response whose body is pre-serialized text (used to return
    /// cached manifest bodies byte-identically).
    pub fn json_text(status: u16, body: &str) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            content_type: "application/json",
        }
    }

    /// A JSON error body `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Self {
        let value = foldic_obs::json::Json::obj([(
            "error".to_owned(),
            foldic_obs::json::Json::Str(message.to_owned()),
        )]);
        Self::json(status, &value)
    }

    /// Tags a JSON-object body with the request id (so error bodies say
    /// which request they belong to). Non-JSON and non-object bodies are
    /// left untouched.
    #[must_use]
    pub fn with_request_id(mut self, request_id: &str) -> Self {
        if let Ok(text) = std::str::from_utf8(&self.body) {
            if let Ok(mut doc) = foldic_obs::json::Json::parse(text) {
                if let Some(obj) = doc.as_obj_mut() {
                    obj.insert(
                        "request_id".to_owned(),
                        foldic_obs::json::Json::Str(request_id.to_owned()),
                    );
                    self.body = doc.to_pretty().into_bytes();
                }
            }
        }
        self
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_owned(), value));
        self
    }

    /// Serializes the response (status line, headers, body) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to(&self, w: &mut dyn Write) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        write!(w, "Content-Type: {}\r\n", self.content_type)?;
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: close\r\n")?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_a_minimal_get() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_bare_lf_lines() {
        let r = parse(b"POST /jobs HTTP/1.1\nContent-Length: 4\n\nabcd").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn empty_connection_is_closed_not_an_error_response() {
        assert_eq!(parse(b"").unwrap_err(), HttpError::Closed);
    }

    #[test]
    fn truncated_requests_are_bad_requests() {
        for bytes in [
            &b"GET /x HTTP/1.1"[..],                                   // no line end
            &b"GET /x HTTP/1.1\r\nHost: y"[..],                        // headers never finish
            &b"GET /x HTTP/1.1\r\nHost: y\r\n"[..],                    // no blank line
            &b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"[..], // short body
        ] {
            let err = parse(bytes).unwrap_err();
            assert_eq!(err.status(), 400, "{bytes:?} -> {err}");
        }
    }

    #[test]
    fn limits_map_to_their_own_status_codes() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert_eq!(parse(long_target.as_bytes()).unwrap_err().status(), 414);

        let big_header = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "b".repeat(MAX_HEADER_LINE)
        );
        assert_eq!(parse(big_header.as_bytes()).unwrap_err().status(), 431);

        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS)
                .map(|i| format!("X-{i}: v\r\n"))
                .collect::<String>()
        );
        assert_eq!(parse(many_headers.as_bytes()).unwrap_err().status(), 431);

        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(huge_body.as_bytes()).unwrap_err().status(), 413);

        let chunked = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(parse(chunked).unwrap_err().status(), 501);
    }

    #[test]
    fn malformed_syntax_is_rejected() {
        for bytes in [
            &b"GET\r\n\r\n"[..],
            &b"GET /x\r\n\r\n"[..],
            &b"GET /x HTTP/2\r\n\r\n"[..],
            &b"get /x HTTP/1.1\r\n\r\n"[..],
            &b"GET x HTTP/1.1\r\n\r\n"[..],
            &b"GET /x HTTP/1.1 extra\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: NaN\r\n\r\n"[..],
            &b"\r\n\r\n"[..],
        ] {
            let err = parse(bytes).unwrap_err();
            assert_eq!(err.status(), 400, "{bytes:?} -> {err}");
        }
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        Response::error(429, "queue full")
            .with_header("Retry-After", "1".to_owned())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
        assert!(body.contains("queue full"));
    }
}
