//! The content-addressed result cache.
//!
//! Keys are [`crate::job::cache_key`] digests of the canonical manifest
//! config; values are the exact serialized manifest bodies returned to
//! clients, so a cache hit is byte-identical to the recompute it
//! replaces. Entries carry full provenance — the canonical config map
//! that produced the body — so `GET /cache/<key>` can answer "what study
//! is this?" without re-parsing the manifest. Nothing is ever evicted:
//! the daemon serves a bounded universe of study configs (this is a
//! design-study service, not a general object store), and an entry that
//! stops being requested merely stops being read.

use foldic_obs::json::Json;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached study result.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The serialized manifest body, exactly as first computed.
    pub body: Arc<str>,
    /// Canonical config that produced the body (manifest provenance).
    pub config: BTreeMap<String, String>,
    /// Times this entry satisfied a submission.
    pub hits: u64,
}

/// Aggregate cache counters, snapshotted for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently stored.
    pub entries: u64,
    /// Submissions answered from the cache.
    pub hits: u64,
    /// Cacheable submissions that had to compute.
    pub misses: u64,
    /// Bodies inserted (≤ misses: failed jobs insert nothing).
    pub insertions: u64,
}

/// Thread-safe content-addressed store of study results.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<String, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `key`, counting a hit (and bumping the entry's own hit
    /// counter) or a miss.
    pub fn lookup(&self, key: &str) -> Option<Arc<str>> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        match map.get_mut(key) {
            Some(entry) => {
                entry.hits += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.body))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Reads an entry without touching any counter (introspection).
    pub fn peek(&self, key: &str) -> Option<CacheEntry> {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    /// Stores a computed body under `key` with its provenance. The first
    /// writer wins: a concurrent duplicate computation of the same study
    /// produced a byte-identical body anyway (determinism contract), so
    /// the existing entry — and its hit counter — is kept.
    pub fn insert(&self, key: &str, config: BTreeMap<String, String>, body: Arc<str>) {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key.to_owned()).or_insert_with(|| {
            self.insertions.fetch_add(1, Ordering::Relaxed);
            CacheEntry {
                body,
                config,
                hits: 0,
            }
        });
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
        }
    }

    /// Provenance document for one entry (`GET /cache/<key>`).
    pub fn provenance_json(&self, key: &str) -> Option<Json> {
        let entry = self.peek(key)?;
        Some(Json::obj([
            ("key".to_owned(), Json::Str(key.to_owned())),
            (
                "config".to_owned(),
                Json::Obj(
                    entry
                        .config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("hits".to_owned(), Json::Num(entry.hits as f64)),
            ("bytes".to_owned(), Json::Num(entry.body.len() as f64)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(size: &str) -> BTreeMap<String, String> {
        let mut c = BTreeMap::new();
        c.insert("size".to_owned(), size.to_owned());
        c
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = ResultCache::new();
        assert!(cache.lookup("fnv64:00").is_none());
        cache.insert("fnv64:00", config("tiny"), Arc::from("body"));
        assert_eq!(cache.lookup("fnv64:00").unwrap().as_ref(), "body");
        assert_eq!(cache.lookup("fnv64:00").unwrap().as_ref(), "body");
        let s = cache.stats();
        assert_eq!((s.entries, s.hits, s.misses, s.insertions), (1, 2, 1, 1));
        assert_eq!(cache.peek("fnv64:00").unwrap().hits, 2);
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let cache = ResultCache::new();
        cache.insert("k", config("tiny"), Arc::from("first"));
        cache.insert("k", config("tiny"), Arc::from("second"));
        assert_eq!(cache.lookup("k").unwrap().as_ref(), "first");
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn provenance_reports_config_and_hit_count() {
        let cache = ResultCache::new();
        cache.insert("k", config("small"), Arc::from("{}"));
        cache.lookup("k");
        let p = cache.provenance_json("k").unwrap();
        assert_eq!(
            p.get("config").unwrap().get("size").unwrap().as_str(),
            Some("small")
        );
        assert_eq!(p.get("hits").unwrap().as_f64(), Some(1.0));
        assert!(cache.provenance_json("nope").is_none());
    }
}
