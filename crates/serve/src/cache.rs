//! The content-addressed result cache, optionally spilled to disk.
//!
//! Keys are [`crate::job::cache_key`] digests of the canonical manifest
//! config; values are the exact serialized manifest bodies returned to
//! clients, so a cache hit is byte-identical to the recompute it
//! replaces. Entries carry full provenance — the canonical config map
//! that produced the body — so `GET /cache/<key>` can answer "what study
//! is this?" without re-parsing the manifest. Nothing is ever evicted:
//! the daemon serves a bounded universe of study configs (this is a
//! design-study service, not a general object store), and an entry that
//! stops being requested merely stops being read.
//!
//! With a cache directory ([`ResultCache::with_dir`]) every insertion is
//! also written to `<dir>/<digest-hex>.json` (`foldic-serve-cache/1`,
//! written to a temp file, fsync'd, then renamed so a crash never leaves
//! a half-written entry under the real name). Loading re-verifies each
//! entry end to end — the body digest recorded at write time must match
//! the body, and the config must re-digest to the entry's key — and an
//! entry that fails any check is **quarantined**: renamed to
//! `<name>.corrupt`, counted, and recomputed on next request instead of
//! served. Serving detectably wrong bytes is the one unrecoverable sin
//! of a byte-identity cache.

use foldic_obs::json::Json;
use foldic_obs::manifest::digest_report;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Schema tag inside every persisted cache entry file.
pub const CACHE_ENTRY_SCHEMA: &str = "foldic-serve-cache/1";

/// One cached study result.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The serialized manifest body, exactly as first computed.
    pub body: Arc<str>,
    /// Canonical config that produced the body (manifest provenance).
    pub config: BTreeMap<String, String>,
    /// Times this entry satisfied a submission.
    pub hits: u64,
}

/// Aggregate cache counters, snapshotted for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently stored.
    pub entries: u64,
    /// Submissions answered from the cache.
    pub hits: u64,
    /// Cacheable submissions that had to compute.
    pub misses: u64,
    /// Bodies inserted (≤ misses: failed jobs insert nothing). Includes
    /// entries reloaded from a cache directory — they were inserted in a
    /// previous process life, and `/stats` reports lifetime totals.
    pub insertions: u64,
    /// Entries reloaded from the cache directory at startup.
    pub loaded: u64,
    /// Persisted entries quarantined (`.corrupt`) for failing
    /// verification at load.
    pub corrupt: u64,
}

/// Thread-safe content-addressed store of study results.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<String, CacheEntry>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    loaded: AtomicU64,
    corrupt: AtomicU64,
}

impl ResultCache {
    /// An empty in-memory cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache persisted under `dir`: existing entries are loaded (and
    /// verified — corrupt ones quarantined), future insertions spilled.
    ///
    /// # Errors
    ///
    /// Only when `dir` cannot be created or listed. Individual bad
    /// entries are never errors; they are quarantined and recomputed.
    pub fn with_dir(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let cache = Self {
            dir: Some(dir.to_owned()),
            ..Self::default()
        };
        let mut map = HashMap::new();
        for entry in std::fs::read_dir(dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            match load_entry(&path) {
                Some((key, cached)) => {
                    cache.loaded.fetch_add(1, Ordering::Relaxed);
                    map.insert(key, cached);
                }
                None => {
                    quarantine(&path);
                    cache.corrupt.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Reloaded entries count as (prior-life) insertions so lifetime
        // totals survive a restart.
        cache.insertions.store(map.len() as u64, Ordering::Relaxed);
        *cache.map.lock().unwrap_or_else(|e| e.into_inner()) = map;
        Ok(cache)
    }

    /// The backing directory, when persistence is on.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Looks up `key`, counting a hit (and bumping the entry's own hit
    /// counter) or a miss.
    pub fn lookup(&self, key: &str) -> Option<Arc<str>> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        match map.get_mut(key) {
            Some(entry) => {
                entry.hits += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.body))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Reads an entry without touching any counter (introspection).
    pub fn peek(&self, key: &str) -> Option<CacheEntry> {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    /// Stores a computed body under `key` with its provenance, spilling
    /// it to the cache directory when one is configured. The first
    /// writer wins: a concurrent duplicate computation of the same study
    /// produced a byte-identical body anyway (determinism contract), so
    /// the existing entry — and its hit counter — is kept.
    pub fn insert(&self, key: &str, config: BTreeMap<String, String>, body: Arc<str>) {
        let mut inserted = false;
        {
            let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            map.entry(key.to_owned()).or_insert_with(|| {
                self.insertions.fetch_add(1, Ordering::Relaxed);
                inserted = true;
                CacheEntry {
                    body: Arc::clone(&body),
                    config: config.clone(),
                    hits: 0,
                }
            });
        }
        if inserted {
            if let Some(dir) = &self.dir {
                // Spilling is best-effort: an unwritable disk degrades
                // restart warmth, it must not fail the job.
                let _ = persist_entry(dir, key, &config, &body);
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            loaded: self.loaded.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }

    /// Provenance document for one entry (`GET /cache/<key>`).
    pub fn provenance_json(&self, key: &str) -> Option<Json> {
        let entry = self.peek(key)?;
        Some(Json::obj([
            ("key".to_owned(), Json::Str(key.to_owned())),
            (
                "config".to_owned(),
                Json::Obj(
                    entry
                        .config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("hits".to_owned(), Json::Num(entry.hits as f64)),
            ("bytes".to_owned(), Json::Num(entry.body.len() as f64)),
        ]))
    }
}

/// File name for a key: the hex tail of `fnv64:<16 hex>` (falling back
/// to the whole key if it ever lacks the prefix), plus `.json`.
fn entry_file(dir: &Path, key: &str) -> PathBuf {
    let stem = key.strip_prefix("fnv64:").unwrap_or(key);
    dir.join(format!("{stem}.json"))
}

/// Writes one entry durably: temp file → fsync → rename.
fn persist_entry(
    dir: &Path,
    key: &str,
    config: &BTreeMap<String, String>,
    body: &str,
) -> std::io::Result<()> {
    let doc = Json::obj([
        (
            "schema".to_owned(),
            Json::Str(CACHE_ENTRY_SCHEMA.to_owned()),
        ),
        ("key".to_owned(), Json::Str(key.to_owned())),
        ("digest".to_owned(), Json::Str(digest_report(body))),
        (
            "config".to_owned(),
            Json::Obj(
                config
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ),
        ("body".to_owned(), Json::Str(body.to_owned())),
    ]);
    let path = entry_file(dir, key);
    let tmp = path.with_extension("json.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(doc.to_compact().as_bytes())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, &path)
}

/// Loads and fully verifies one persisted entry; `None` means corrupt.
fn load_entry(path: &Path) -> Option<(String, CacheEntry)> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    if doc.get("schema").and_then(Json::as_str) != Some(CACHE_ENTRY_SCHEMA) {
        return None;
    }
    let key = doc.get("key")?.as_str()?.to_owned();
    let digest = doc.get("digest")?.as_str()?;
    let body = doc.get("body")?.as_str()?.to_owned();
    let mut config = BTreeMap::new();
    for (k, v) in doc.get("config")?.as_obj()? {
        config.insert(k.clone(), v.as_str()?.to_owned());
    }
    // end-to-end re-verification: the body must still digest to what the
    // writer recorded, and the config must still address this key
    if digest_report(&body) != digest || crate::job::cache_key(&config) != key {
        return None;
    }
    // the file must be the one its key names (a mis-renamed or copied
    // entry would otherwise alias another study)
    if entry_file(path.parent()?, &key) != path {
        return None;
    }
    Some((
        key,
        CacheEntry {
            body: Arc::from(body),
            config,
            hits: 0,
        },
    ))
}

/// Renames a failed entry to `<name>.corrupt` (best-effort; deletes it
/// if even the rename fails so it cannot be re-quarantined forever).
fn quarantine(path: &Path) {
    let mut corrupt = path.as_os_str().to_owned();
    corrupt.push(".corrupt");
    if std::fs::rename(path, PathBuf::from(&corrupt)).is_err() {
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(size: &str) -> BTreeMap<String, String> {
        let mut c = BTreeMap::new();
        c.insert("size".to_owned(), size.to_owned());
        c
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("foldic-serve-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = ResultCache::new();
        assert!(cache.lookup("fnv64:00").is_none());
        cache.insert("fnv64:00", config("tiny"), Arc::from("body"));
        assert_eq!(cache.lookup("fnv64:00").unwrap().as_ref(), "body");
        assert_eq!(cache.lookup("fnv64:00").unwrap().as_ref(), "body");
        let s = cache.stats();
        assert_eq!((s.entries, s.hits, s.misses, s.insertions), (1, 2, 1, 1));
        assert_eq!(cache.peek("fnv64:00").unwrap().hits, 2);
        assert_eq!((s.loaded, s.corrupt), (0, 0));
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let cache = ResultCache::new();
        cache.insert("k", config("tiny"), Arc::from("first"));
        cache.insert("k", config("tiny"), Arc::from("second"));
        assert_eq!(cache.lookup("k").unwrap().as_ref(), "first");
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn provenance_reports_config_and_hit_count() {
        let cache = ResultCache::new();
        cache.insert("k", config("small"), Arc::from("{}"));
        cache.lookup("k");
        let p = cache.provenance_json("k").unwrap();
        assert_eq!(
            p.get("config").unwrap().get("size").unwrap().as_str(),
            Some("small")
        );
        assert_eq!(p.get("hits").unwrap().as_f64(), Some(1.0));
        assert!(cache.provenance_json("nope").is_none());
    }

    #[test]
    fn persisted_entries_reload_byte_identical() {
        let dir = tmpdir("reload");
        let cfg = config("tiny");
        let key = crate::job::cache_key(&cfg);
        let body = "manifest body\nwith a newline and \"quotes\"";
        {
            let cache = ResultCache::with_dir(&dir).unwrap();
            cache.insert(&key, cfg.clone(), Arc::from(body));
        }
        let cache = ResultCache::with_dir(&dir).unwrap();
        let s = cache.stats();
        assert_eq!((s.entries, s.loaded, s.corrupt, s.insertions), (1, 1, 0, 1));
        assert_eq!(cache.lookup(&key).unwrap().as_ref(), body);
        assert_eq!(cache.peek(&key).unwrap().config, cfg);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_served() {
        let dir = tmpdir("corrupt");
        let cfg = config("tiny");
        let key = crate::job::cache_key(&cfg);
        {
            let cache = ResultCache::with_dir(&dir).unwrap();
            cache.insert(&key, cfg.clone(), Arc::from("good body"));
        }
        // flip bytes inside the stored body → digest check must fail
        let path = entry_file(&dir, &key);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("good body", "evil body")).unwrap();
        let cache = ResultCache::with_dir(&dir).unwrap();
        let s = cache.stats();
        assert_eq!((s.entries, s.loaded, s.corrupt), (0, 0, 1));
        assert!(cache.lookup(&key).is_none(), "corrupt entry never served");
        assert!(!path.exists(), "entry moved aside");
        let mut corrupt = path.as_os_str().to_owned();
        corrupt.push(".corrupt");
        assert!(PathBuf::from(corrupt).exists(), "quarantined, not deleted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_misnamed_entries_are_quarantined() {
        let dir = tmpdir("truncated");
        let cfg = config("small");
        let key = crate::job::cache_key(&cfg);
        {
            let cache = ResultCache::with_dir(&dir).unwrap();
            cache.insert(&key, cfg, Arc::from("body"));
        }
        let path = entry_file(&dir, &key);
        // truncate mid-document (torn write that somehow got the real name)
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let cache = ResultCache::with_dir(&dir).unwrap();
        assert_eq!(cache.stats().corrupt, 1);
        // a valid document under the wrong file name is also quarantined
        let dir2 = tmpdir("misnamed");
        let cfg2 = config("full");
        let key2 = crate::job::cache_key(&cfg2);
        {
            let cache = ResultCache::with_dir(&dir2).unwrap();
            cache.insert(&key2, cfg2, Arc::from("body"));
        }
        std::fs::rename(entry_file(&dir2, &key2), dir2.join("aaaa0000bbbb1111.json")).unwrap();
        let cache = ResultCache::with_dir(&dir2).unwrap();
        let s = cache.stats();
        assert_eq!((s.loaded, s.corrupt), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }
}
