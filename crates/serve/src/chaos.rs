//! Deterministic chaos harness: SIGKILL a real daemon mid-load and
//! prove the durability invariants.
//!
//! The harness drives a **subprocess** daemon (the caller supplies the
//! command line — `repro loadgen --chaos SEED` points it at its own
//! binary's `serve` subcommand) through a seeded crash-and-recover
//! scenario:
//!
//! 1. boot the daemon with a journal and a cache directory under a
//!    scratch dir, waiting on its port file;
//! 2. submit a seeded stream of jobs single-threaded, recording every
//!    **acknowledged** id (and the result body of each job that reaches
//!    `done` before the kill), interleaved with seeded hostile clients —
//!    slow-loris submissions that dribble half a request and stall, and
//!    clients that disconnect mid-body — which the daemon must shrug off;
//! 3. SIGKILL the daemon (no drain, no flush — the worst case);
//! 4. restart it on the same journal + cache dir and assert the three
//!    durability invariants:
//!    * **no acknowledged job is lost** — every recorded id resolves
//!      (404 after restart = a lost ack),
//!    * **recovery is byte-identical** — every body observed before the
//!      kill is served identically after it, and re-run jobs produce
//!      bodies that survive a further restart unchanged,
//!    * **replay is idempotent** — after a clean shutdown, a third boot
//!      re-enqueues nothing and serves the same bodies again;
//! 5. report everything as a `foldic-serve-chaos/1` document whose
//!    [`ChaosReport::gate`] fails CI on any violation.
//!
//! Everything is derived from one seed: the job specs, the interleaving
//! of hostile connections, and the kill point. Two runs with the same
//! seed against the same binary exercise the same schedule (modulo OS
//! timing, which the invariants are deliberately insensitive to).

use crate::client;
use crate::job::JobSpec;
use foldic_obs::json::Json;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Schema tag of the chaos report document.
pub const CHAOS_REPORT_SCHEMA: &str = "foldic-serve-chaos/1";

/// Per-request timeout for harness HTTP calls.
const HTTP_TIMEOUT: Duration = Duration::from_secs(10);

/// Chaos scenario configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Command line that boots the daemon (binary + args). The harness
    /// appends `--addr 127.0.0.1:0 --port-file <f> --journal <f>
    /// --cache-dir <d>` itself.
    pub serve_cmd: Vec<String>,
    /// Master seed for specs, hostile-client interleaving and kill point.
    pub seed: u64,
    /// Acknowledged jobs to collect before the SIGKILL.
    pub jobs: usize,
    /// Experiment names to draw job specs from.
    pub experiments: Vec<String>,
    /// Design size for every generated spec.
    pub size: String,
    /// Scratch directory for the journal, cache dir and port files.
    /// Created (and reused) by the harness.
    pub dir: PathBuf,
    /// How long to wait for each boot / each job to turn terminal.
    pub timeout: Duration,
}

/// What one chaos run observed; [`ChaosReport::gate`] turns it into a
/// pass/fail.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Seed the scenario ran under.
    pub seed: u64,
    /// Jobs acknowledged before the kill.
    pub acked: u64,
    /// Of those, jobs observed `done` (body recorded) before the kill.
    pub done_before_kill: u64,
    /// Hostile slow-loris connections issued.
    pub slowloris: u64,
    /// Hostile mid-request disconnects issued.
    pub disconnects: u64,
    /// Acknowledged ids that 404'd after restart (**invariant 1**).
    pub lost: Vec<u64>,
    /// Acknowledged ids that never reached a terminal state after
    /// restart within the timeout.
    pub unrecovered: Vec<u64>,
    /// Ids whose post-restart body differed from an earlier observation
    /// (**invariant 2**).
    pub mismatched: Vec<u64>,
    /// Jobs the third (post-clean-shutdown) boot re-enqueued
    /// (**invariant 3** — must be 0).
    pub reenqueued_after_clean: u64,
}

impl ChaosReport {
    /// The report as a `foldic-serve-chaos/1` document.
    pub fn to_json(&self) -> Json {
        let ids = |v: &[u64]| Json::Arr(v.iter().map(|&id| Json::Num(id as f64)).collect());
        Json::obj([
            (
                "schema".to_owned(),
                Json::Str(CHAOS_REPORT_SCHEMA.to_owned()),
            ),
            ("seed".to_owned(), Json::Num(self.seed as f64)),
            ("acked".to_owned(), Json::Num(self.acked as f64)),
            (
                "done_before_kill".to_owned(),
                Json::Num(self.done_before_kill as f64),
            ),
            ("slowloris".to_owned(), Json::Num(self.slowloris as f64)),
            ("disconnects".to_owned(), Json::Num(self.disconnects as f64)),
            ("lost".to_owned(), ids(&self.lost)),
            ("unrecovered".to_owned(), ids(&self.unrecovered)),
            ("mismatched".to_owned(), ids(&self.mismatched)),
            (
                "reenqueued_after_clean".to_owned(),
                Json::Num(self.reenqueued_after_clean as f64),
            ),
            ("pass".to_owned(), Json::Bool(self.gate().is_ok())),
        ])
    }

    /// The durability gate.
    ///
    /// # Errors
    ///
    /// One message per violated invariant.
    pub fn gate(&self) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        if self.acked == 0 {
            violations.push("no jobs were acknowledged; scenario did not run".to_owned());
        }
        if !self.lost.is_empty() {
            violations.push(format!(
                "{} acknowledged job(s) lost across kill/restart: {:?}",
                self.lost.len(),
                self.lost
            ));
        }
        if !self.unrecovered.is_empty() {
            violations.push(format!(
                "{} acknowledged job(s) never reached a terminal state after restart: {:?}",
                self.unrecovered.len(),
                self.unrecovered
            ));
        }
        if !self.mismatched.is_empty() {
            violations.push(format!(
                "{} job(s) served a different body after recovery: {:?}",
                self.mismatched.len(),
                self.mismatched
            ));
        }
        if self.reenqueued_after_clean > 0 {
            violations.push(format!(
                "journal replay is not idempotent: a clean restart re-enqueued {} job(s)",
                self.reenqueued_after_clean
            ));
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

/// A daemon subprocess plus the address it bound. Shared with the
/// overload harness (`crate::overload`), which boots the same way but
/// with admission flags instead of durability ones.
pub(crate) struct Daemon {
    pub(crate) child: Child,
    pub(crate) addr: SocketAddr,
}

impl Daemon {
    /// Spawns `serve_cmd` with `extra` flags appended (plus the
    /// `--addr`/`--port-file` pair every harness needs) and waits for
    /// the port file.
    pub(crate) fn spawn(
        serve_cmd: &[String],
        extra: &[std::ffi::OsString],
        port_file: &Path,
        timeout: Duration,
    ) -> Result<Self, String> {
        let _ = std::fs::remove_file(port_file);
        let (bin, args) = serve_cmd.split_first().ok_or("empty serve command")?;
        let mut child = Command::new(bin)
            .args(args)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--port-file")
            .arg(port_file)
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("failed to spawn `{bin}`: {e}"))?;
        let addr = wait_port_file(port_file, &mut child, timeout)?;
        Ok(Self { child, addr })
    }

    /// Boots the daemon on the chaos journal + cache and waits for its
    /// port file.
    fn boot(cfg: &ChaosConfig, boot_index: u32) -> Result<Self, String> {
        let extra = [
            std::ffi::OsString::from("--journal"),
            cfg.dir.join("journal.jsonl").into_os_string(),
            std::ffi::OsString::from("--cache-dir"),
            cfg.dir.join("cache").into_os_string(),
        ];
        Self::spawn(
            &cfg.serve_cmd,
            &extra,
            &cfg.dir.join(format!("addr-{boot_index}.txt")),
            cfg.timeout,
        )
    }

    /// SIGKILL — no drain, no flush.
    pub(crate) fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// `POST /shutdown` then wait for a clean exit.
    pub(crate) fn shutdown_clean(&mut self, timeout: Duration) -> Result<(), String> {
        let _ = client::post(self.addr, "/shutdown", HTTP_TIMEOUT);
        let deadline = Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return Ok(()),
                Ok(None) if Instant::now() >= deadline => {
                    self.kill();
                    return Err("daemon ignored /shutdown; killed".to_owned());
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => return Err(format!("wait failed: {e}")),
            }
        }
    }
}

/// Polls `path` until the daemon writes its bound address (written only
/// after a successful bind, so its presence doubles as readiness).
pub(crate) fn wait_port_file(
    path: &Path,
    child: &mut Child,
    timeout: Duration,
) -> Result<SocketAddr, String> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!("daemon exited during boot: {status}"));
        }
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                return Ok(addr);
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            return Err(format!(
                "daemon did not write {} within {timeout:?}",
                path.display()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One acknowledged job the harness tracks across the kill.
struct Acked {
    id: u64,
    /// Body observed before the kill, when the job got that far.
    body_before: Option<Vec<u8>>,
}

/// Runs the full scenario.
///
/// # Errors
///
/// Harness-level failures only (cannot spawn the daemon, scenario never
/// acknowledged a job, a probe transport died entirely). Invariant
/// *violations* are not errors — they land in the report for
/// [`ChaosReport::gate`] to judge, so CI output shows the whole picture.
pub fn run(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    std::fs::create_dir_all(&cfg.dir)
        .map_err(|e| format!("chaos: cannot create {}: {e}", cfg.dir.display()))?;
    let mut report = ChaosReport {
        seed: cfg.seed,
        ..ChaosReport::default()
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Phase 1: boot and load until `jobs` acks, harassing in between.
    let mut daemon = Daemon::boot(cfg, 1)?;
    let mut acked: Vec<Acked> = Vec::new();
    let mut attempts = 0usize;
    while acked.len() < cfg.jobs.max(1) {
        attempts += 1;
        if attempts > cfg.jobs.max(1) * 20 {
            daemon.kill();
            return Err("chaos: daemon stopped acknowledging jobs".to_owned());
        }
        // Hostile clients first, seeded: the daemon must keep serving
        // around them.
        if rng.gen_range(0..100u32) < 30 {
            slow_loris(daemon.addr, &mut rng);
            report.slowloris += 1;
        }
        if rng.gen_range(0..100u32) < 30 {
            disconnect_mid_request(daemon.addr, &mut rng);
            report.disconnects += 1;
        }
        let spec = random_spec(cfg, &mut rng);
        let Ok(response) = client::post_json(daemon.addr, "/jobs", &spec.to_json(), HTTP_TIMEOUT)
        else {
            continue;
        };
        if response.status != 200 && response.status != 202 {
            continue;
        }
        let Some(id) = job_id(&response) else {
            continue;
        };
        // Sometimes wait for the result (so the kill also covers jobs
        // with journaled terminals + persisted cache entries), sometimes
        // race straight on (so it covers queued/running jobs too).
        let body_before = if rng.gen_range(0..100u32) < 50 {
            wait_done_body(daemon.addr, id, cfg.timeout)
        } else {
            None
        };
        if body_before.is_some() {
            report.done_before_kill += 1;
        }
        acked.push(Acked { id, body_before });
    }
    report.acked = acked.len() as u64;

    // Phase 2: SIGKILL mid-load — queued and running jobs die with it.
    daemon.kill();

    // Phase 3: restart on the same journal + cache dir; assert recovery.
    let mut daemon = Daemon::boot(cfg, 2)?;
    let mut bodies: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for job in &mut acked {
        match client::get(daemon.addr, &format!("/jobs/{}", job.id), HTTP_TIMEOUT) {
            Ok(r) if r.status == 404 => {
                report.lost.push(job.id);
                continue;
            }
            Ok(_) => {}
            Err(_) => {
                report.unrecovered.push(job.id);
                continue;
            }
        }
        let Some(body) = wait_done_body(daemon.addr, job.id, cfg.timeout) else {
            report.unrecovered.push(job.id);
            continue;
        };
        if let Some(before) = &job.body_before {
            if *before != body {
                report.mismatched.push(job.id);
            }
        }
        bodies.insert(job.id, body);
    }
    daemon.shutdown_clean(cfg.timeout)?;

    // Phase 4: third boot — replay must be a no-op and bodies stable.
    let mut daemon = Daemon::boot(cfg, 3)?;
    report.reenqueued_after_clean = stats_reenqueued(daemon.addr).unwrap_or(u64::MAX);
    for (&id, body) in &bodies {
        match wait_done_body(daemon.addr, id, cfg.timeout) {
            Some(again) if again == *body => {}
            _ => report.mismatched.push(id),
        }
    }
    daemon.shutdown_clean(cfg.timeout)?;
    report.mismatched.dedup();
    Ok(report)
}

/// A seeded job spec drawn from the configured experiment pool. Distinct
/// seeds make distinct studies, so the stream is mostly misses (computed
/// work — the interesting case for durability) with occasional repeats
/// (cache hits, which must be acknowledged durably too).
fn random_spec(cfg: &ChaosConfig, rng: &mut StdRng) -> JobSpec {
    let pool = &cfg.experiments;
    let name = if pool.is_empty() {
        "table1".to_owned()
    } else {
        pool[rng.gen_range(0..pool.len())].clone()
    };
    JobSpec {
        experiments: vec![name],
        size: cfg.size.clone(),
        // 8 distinct seeds → repeats are likely within a few dozen jobs
        seed: Some(rng.gen_range(0..8u64)),
        ..JobSpec::default()
    }
}

/// The `job` field of a submission response.
pub(crate) fn job_id(response: &client::HttpResponse) -> Option<u64> {
    let doc = response.body_json().ok()?;
    let id = doc.get("job")?.as_f64()?;
    (id.fract() == 0.0 && id >= 0.0).then_some(id as u64)
}

/// Polls until `id` is `done` and returns its result body (`None`:
/// failed/cancelled, or not terminal within the timeout).
pub(crate) fn wait_done_body(addr: SocketAddr, id: u64, timeout: Duration) -> Option<Vec<u8>> {
    let deadline = Instant::now() + timeout;
    loop {
        let response = client::get(addr, &format!("/jobs/{id}"), HTTP_TIMEOUT).ok()?;
        let state = response
            .body_json()
            .ok()?
            .get("state")?
            .as_str()
            .map(str::to_owned)?;
        match state.as_str() {
            "done" => {
                let result = client::get(addr, &format!("/jobs/{id}/result"), HTTP_TIMEOUT).ok()?;
                return (result.status == 200).then_some(result.body);
            }
            "failed" | "cancelled" => return None,
            _ if Instant::now() >= deadline => return None,
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// `durability.journal.reenqueued` from `/stats`.
fn stats_reenqueued(addr: SocketAddr) -> Option<u64> {
    let response = client::get(addr, "/stats", HTTP_TIMEOUT).ok()?;
    let doc = response.body_json().ok()?;
    let n = doc
        .get("durability")?
        .get("journal")?
        .get("reenqueued")?
        .as_f64()?;
    Some(n as u64)
}

/// Dribbles a partial request with pauses, then abandons the connection
/// — the classic slow-loris. The daemon's read timeout must reclaim the
/// connection thread without disturbing other clients.
fn slow_loris(addr: SocketAddr, rng: &mut StdRng) {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, HTTP_TIMEOUT) else {
        return;
    };
    let request = format!("POST /jobs HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 64\r\n");
    let bytes = request.as_bytes();
    let cut = rng.gen_range(1..bytes.len() as u64) as usize;
    for chunk in bytes[..cut].chunks(7) {
        if stream.write_all(chunk).is_err() {
            return;
        }
        std::thread::sleep(Duration::from_millis(rng.gen_range(1..4u64)));
    }
    // drop: the header section never completes
}

/// Sends a complete header but only part of the promised body, then
/// disconnects — a torn write the daemon must fail cleanly (408/400),
/// never crash on.
fn disconnect_mid_request(addr: SocketAddr, rng: &mut StdRng) {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, HTTP_TIMEOUT) else {
        return;
    };
    let body = "{\"experiments\":[\"table1\"],\"size\":\"tiny\"}";
    let cut = rng.gen_range(0..body.len() as u64) as usize;
    let _ = write!(
        stream,
        "POST /jobs HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        &body[..cut]
    );
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_only_when_all_invariants_hold() {
        let clean = ChaosReport {
            seed: 42,
            acked: 10,
            done_before_kill: 4,
            ..ChaosReport::default()
        };
        assert!(clean.gate().is_ok());
        assert_eq!(clean.to_json().get("pass").unwrap(), &Json::Bool(true));

        let lost = ChaosReport {
            lost: vec![3],
            ..clean.clone()
        };
        assert!(lost.gate().is_err());
        let mismatched = ChaosReport {
            mismatched: vec![5, 6],
            ..clean.clone()
        };
        assert!(mismatched
            .gate()
            .unwrap_err()
            .iter()
            .any(|v| v.contains("different body")));
        let replayed = ChaosReport {
            reenqueued_after_clean: 2,
            ..clean.clone()
        };
        assert!(replayed
            .gate()
            .unwrap_err()
            .iter()
            .any(|v| v.contains("idempotent")));
        let empty = ChaosReport::default();
        assert!(empty.gate().is_err(), "an empty run must not pass");
    }

    #[test]
    fn report_document_is_well_formed() {
        let report = ChaosReport {
            seed: 7,
            acked: 3,
            lost: vec![1],
            ..ChaosReport::default()
        };
        let doc = report.to_json();
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some(CHAOS_REPORT_SCHEMA)
        );
        assert_eq!(doc.get("pass").unwrap(), &Json::Bool(false));
        assert_eq!(doc.get("lost").unwrap().as_arr().unwrap().len(), 1);
    }
}
