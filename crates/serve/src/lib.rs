#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! `foldic-serve` — a batch design-study daemon.
//!
//! The rest of the workspace computes one study per process: the `repro`
//! CLI generates a design, runs the requested experiments and exits. The
//! dominant traffic shape of a *service* built on that harness is very
//! different — mostly re-runs of the same study with a small config delta
//! — which turns the manifest digest machinery of `foldic-obs` into a
//! cache key. This crate supplies the serving layer, zero-dependency like
//! the rest of the workspace (hand-rolled TCP + HTTP/1.1 + JSON, same
//! idiom as `foldic_obs::json`):
//!
//! * [`http`] — a bounded, typed HTTP/1.1 request parser and response
//!   writer. Truncated requests, oversized headers/bodies and malformed
//!   syntax yield typed 4xx errors, never panics or hangs;
//! * [`job`] — the job-submission JSON schema ([`job::JobSpec`]) with
//!   strict field validation;
//! * [`queue`] — a bounded FIFO [`queue::Scheduler`] with admission
//!   control (full queue ⇒ 429 + `Retry-After`), cancel-before-start,
//!   exclusive scheduling for deadline-bounded jobs and drain-on-shutdown;
//! * [`cache`] — the content-addressed [`cache::ResultCache`], keyed on
//!   the FNV-1a digest of the canonical manifest config (the `repro
//!   compare` schema), entries carrying full manifest provenance,
//!   optionally spilled to a verified-on-load cache directory;
//! * [`journal`] — the write-ahead job [`journal::Journal`]
//!   (`foldic-serve-journal/1`): fsync-before-ack acceptance records and
//!   torn-tail-tolerant replay, so a SIGKILLed daemon loses no
//!   acknowledged job;
//! * [`chaos`] — the deterministic chaos harness behind
//!   `repro loadgen --chaos`: seeded mid-load SIGKILL, client
//!   disconnects and slow-loris submissions against a real subprocess
//!   daemon, gating on the durability invariants;
//! * [`server`] — the TCP daemon tying it together: job submission,
//!   status/result/cancel endpoints, stats, graceful shutdown;
//! * [`client`] — a minimal blocking HTTP client for tests and the load
//!   generator;
//! * [`loadgen`] — a seeded multi-client load generator replaying
//!   hit/miss/cancel/deadline job mixes and emitting a
//!   `foldic-serve-bench/2` report (throughput, latency percentiles, hit
//!   ratio, server-side counter deltas), so "heavy traffic" is a tested
//!   property;
//! * [`telemetry`] — the live-telemetry hub: the
//!   `foldic-serve-metrics/1` exposition contract behind `GET /metrics`,
//!   request-id allocation, structured-log plumbing and the per-job
//!   trace mux behind `GET /jobs/<id>/trace`.
//!
//! The daemon is generic over a [`queue::StudyRunner`]; the real runner
//! (which executes `foldic-bench` experiments and emits run manifests)
//! lives in `foldic-bench`, keeping this crate free of flow dependencies.

pub mod cache;
pub mod chaos;
pub mod client;
pub mod cost;
pub mod http;
pub mod job;
pub mod journal;
pub mod loadgen;
pub mod overload;
pub mod queue;
pub mod server;
pub mod telemetry;

pub use cache::ResultCache;
pub use job::JobSpec;
pub use journal::{Journal, JournalError, Replay};
pub use queue::{Scheduler, SchedulerConfig, StudyRunner, Submission};
pub use server::{Server, ServerConfig};
pub use telemetry::{Telemetry, TelemetryConfig};
