//! Adversarial property tests for the HTTP request parser and the job
//! submission schema, 10 000 seeded iterations each.
//!
//! Properties:
//!
//! 1. **The parser never panics or hangs**: arbitrary byte soup, mutated
//!    and truncated valid requests, torn writes (bytes arriving one at a
//!    time, or a socket timing out mid-request), oversized request lines,
//!    headers and bodies — every input yields `Ok` or a *typed*
//!    [`HttpError`] with a 4xx/5xx status. The daemon feeds on raw TCP
//!    bytes, so a panic here is a remote crash.
//! 2. **Valid requests round-trip** through serialization and parsing,
//!    even when delivered in 1-byte chunks.
//! 3. **The job schema never panics**: arbitrary JSON documents —
//!    including nesting bombs near the parser's depth limit — are either
//!    a valid [`JobSpec`] or a typed error message, and every valid spec
//!    survives `to_json` → `from_json` unchanged.
//!
//! The iteration stream is deterministic: seeded from `FOLDIC_FUZZ_SEED`
//! (decimal u64) when set, a fixed default otherwise, so CI failures
//! reproduce locally by exporting the same seed.

use foldic_obs::json::Json;
use foldic_serve::http::{read_request, HttpError, Request, MAX_BODY_BYTES};
use foldic_serve::JobSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, Read};
use std::panic::{catch_unwind, AssertUnwindSafe};

const ITERS: usize = 10_000;

fn fuzz_seed() -> u64 {
    std::env::var("FOLDIC_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDAC1_4F00D)
}

/// A reader that hands out at most `chunk` bytes per `read` call — a
/// torn write in slow motion.
struct ChunkedReader {
    bytes: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf
            .len()
            .min(self.chunk.max(1))
            .min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for ChunkedReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        let end = (self.pos + self.chunk.max(1)).min(self.bytes.len());
        Ok(&self.bytes[self.pos..end])
    }
    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.bytes.len());
    }
}

/// A reader that times out (`WouldBlock`) after `good` bytes — a peer
/// that stops writing mid-request and holds the socket open.
struct StallingReader {
    bytes: Vec<u8>,
    pos: usize,
    good: usize,
}

impl Read for StallingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.good || self.pos >= self.bytes.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "stalled",
            ));
        }
        let n = buf.len().min(1);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for StallingReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos >= self.good || self.pos >= self.bytes.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "stalled",
            ));
        }
        Ok(&self.bytes[self.pos..self.pos + 1])
    }
    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.bytes.len());
    }
}

fn parse_bytes(bytes: &[u8]) -> Result<Request, HttpError> {
    read_request(&mut std::io::Cursor::new(bytes.to_vec()))
}

/// Asserts the universal parser contract: no panic, and every error is
/// typed with a real status (or `Closed`).
fn assert_parses_or_types(bytes: &[u8], seed: u64, iter: usize) {
    let result = catch_unwind(AssertUnwindSafe(|| parse_bytes(bytes)));
    let result =
        result.unwrap_or_else(|_| panic!("parser panicked (seed {seed}, iter {iter}): {bytes:?}"));
    if let Err(e) = result {
        assert!(
            e == HttpError::Closed || matches!(e.status(), 400 | 408 | 413 | 414 | 431 | 501),
            "untyped error {e:?} (seed {seed}, iter {iter})"
        );
    }
}

/// A structurally valid request with fuzzed method/path/headers/body.
fn random_valid_request(rng: &mut StdRng) -> Vec<u8> {
    let method = ["GET", "POST", "PUT", "DELETE", "HEAD"][rng.gen_range(0..5usize)];
    let depth = rng.gen_range(1..6usize);
    let path: String = std::iter::once("".to_owned())
        .chain((0..depth).map(|_| {
            let len = rng.gen_range(1..12usize);
            (0..len)
                .map(|_| (b'a' + (rng.gen::<u64>() % 26) as u8) as char)
                .collect()
        }))
        .collect::<Vec<_>>()
        .join("/");
    let body_len = rng.gen_range(0..512usize);
    let body: Vec<u8> = (0..body_len)
        .map(|_| b' ' + (rng.gen::<u64>() % 94) as u8)
        .collect();
    let mut text = format!("{method} {path} HTTP/1.1\r\n");
    for i in 0..rng.gen_range(0..8usize) {
        text.push_str(&format!(
            "X-Fuzz-{i}: value-{}\r\n",
            rng.gen::<u64>() % 1000
        ));
    }
    text.push_str(&format!("Content-Length: {body_len}\r\n\r\n"));
    let mut bytes = text.into_bytes();
    bytes.extend_from_slice(&body);
    bytes
}

#[test]
fn parser_survives_random_byte_soup() {
    let seed = fuzz_seed();
    let mut rng = StdRng::seed_from_u64(seed);
    const SOUP: &[u8] = b"GET POST / HTTP/1.1\r\n\x00\xff: ,;Content-Length0123456789 abc";
    for iter in 0..ITERS {
        let len = rng.gen_range(0..512usize);
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    SOUP[rng.gen_range(0..SOUP.len())]
                } else {
                    (rng.gen::<u64>() & 0xff) as u8
                }
            })
            .collect();
        assert_parses_or_types(&bytes, seed, iter);
    }
}

#[test]
fn parser_survives_truncation_and_mutation_of_valid_requests() {
    let seed = fuzz_seed();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    for iter in 0..ITERS {
        let mut bytes = random_valid_request(&mut rng);
        match rng.gen_range(0..3u32) {
            0 => {
                // truncate anywhere, including inside the body
                bytes.truncate(rng.gen_range(0..bytes.len().max(1)));
            }
            1 => {
                // flip one byte
                if !bytes.is_empty() {
                    let at = rng.gen_range(0..bytes.len());
                    bytes[at] = (rng.gen::<u64>() & 0xff) as u8;
                }
            }
            _ => {
                // duplicate a slice (tears + replays)
                if bytes.len() > 4 {
                    let at = rng.gen_range(0..bytes.len() - 2);
                    let end = rng.gen_range(at + 1..bytes.len());
                    let slice: Vec<u8> = bytes[at..end].to_vec();
                    bytes.extend_from_slice(&slice);
                }
            }
        }
        assert_parses_or_types(&bytes, seed, iter);
    }
}

#[test]
fn valid_requests_round_trip_even_in_one_byte_chunks() {
    let seed = fuzz_seed();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    for iter in 0..1000 {
        let bytes = random_valid_request(&mut rng);
        let whole = parse_bytes(&bytes)
            .unwrap_or_else(|e| panic!("valid request rejected ({e}) at iter {iter}"));
        let chunk = rng.gen_range(1..8usize);
        let torn = read_request(&mut ChunkedReader {
            bytes: bytes.clone(),
            pos: 0,
            chunk,
        })
        .unwrap_or_else(|e| panic!("chunked parse failed ({e}) at iter {iter}"));
        assert_eq!(whole, torn, "chunk size {chunk} changed the parse");
    }
}

#[test]
fn stalled_peers_get_a_timeout_not_a_hang() {
    let seed = fuzz_seed();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(3));
    for iter in 0..1000 {
        let bytes = random_valid_request(&mut rng);
        // stall strictly before the full request arrives
        let good = rng.gen_range(0..bytes.len());
        let result = read_request(&mut StallingReader {
            bytes: bytes.clone(),
            pos: 0,
            good,
        });
        // stalling inside a body the request didn't declare is fine:
        // everything needed already arrived (the Ok case)
        if let Err(e) = result {
            assert_eq!(
                e.status(),
                408,
                "stall after {good} bytes gave {e:?} at iter {iter}"
            );
        }
    }
}

#[test]
fn oversized_inputs_map_to_their_limit_statuses() {
    let seed = fuzz_seed();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(4));
    for iter in 0..200 {
        // oversized body declarations never allocate the declared size
        let declared = MAX_BODY_BYTES + 1 + rng.gen_range(0..1_000_000usize);
        let request = format!("POST /jobs HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        assert_eq!(
            parse_bytes(request.as_bytes()).unwrap_err().status(),
            413,
            "iter {iter}"
        );
        let line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(5000 + iter));
        assert_eq!(parse_bytes(line.as_bytes()).unwrap_err().status(), 414);
    }
}

/// Random JSON that leans on the fields the job schema reads.
fn random_job_doc(rng: &mut StdRng, depth: usize) -> Json {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..5u32) {
            0 => Json::Null,
            1 => Json::Bool(rng.gen()),
            2 => Json::Num(f64::from_bits(rng.gen::<u64>())),
            3 => Json::Num(rng.gen_range(-10.0..100.0)),
            _ => Json::Str(
                ["table1", "tiny", "", "x", "foldic-serve-job/1"][rng.gen_range(0..5usize)]
                    .to_owned(),
            ),
        };
    }
    let keys = [
        "experiments",
        "size",
        "seed",
        "threads",
        "deadline_secs",
        "schema",
        "bogus",
    ];
    match rng.gen_range(0..3u32) {
        0 => Json::Arr(
            (0..rng.gen_range(0..4usize))
                .map(|_| random_job_doc(rng, depth - 1))
                .collect(),
        ),
        _ => Json::obj(
            (0..rng.gen_range(0..5usize))
                .map(|_| {
                    (
                        keys[rng.gen_range(0..keys.len())].to_owned(),
                        random_job_doc(rng, depth - 1),
                    )
                })
                .collect::<Vec<_>>(),
        ),
    }
}

#[test]
fn job_schema_never_panics_and_valid_specs_round_trip() {
    let seed = fuzz_seed();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(5));
    for iter in 0..ITERS {
        let doc = random_job_doc(&mut rng, 4);
        let result = catch_unwind(AssertUnwindSafe(|| JobSpec::from_json(&doc)));
        let result = result
            .unwrap_or_else(|_| panic!("schema panicked (seed {seed}, iter {iter}): {doc:?}"));
        if let Ok(spec) = result {
            let back = JobSpec::from_json(&spec.to_json())
                .unwrap_or_else(|e| panic!("round trip rejected ({e}) at iter {iter}"));
            assert_eq!(back, spec, "iter {iter}");
        }
    }
}

#[test]
fn job_schema_survives_nesting_bombs() {
    // A body of deeply nested arrays: the JSON parser's depth limit must
    // reject it as a typed error long before the stack is at risk, and
    // the schema must reject whatever shallow variants do parse.
    for depth in [8, 64, 127, 128, 200, 4000] {
        let text = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
        let parsed = catch_unwind(AssertUnwindSafe(|| Json::parse(&text)))
            .unwrap_or_else(|_| panic!("Json::parse panicked at depth {depth}"));
        if let Ok(doc) = parsed {
            let spec = catch_unwind(AssertUnwindSafe(|| JobSpec::from_json(&doc)))
                .unwrap_or_else(|_| panic!("schema panicked at depth {depth}"));
            assert!(spec.is_err(), "an array is not a job");
        }
        // the same bomb wrapped in a plausible submission
        let wrapped = format!(
            r#"{{"experiments": {}{}, "size": "tiny"}}"#,
            "[".repeat(depth),
            "]".repeat(depth)
        );
        if let Ok(doc) = Json::parse(&wrapped) {
            let spec = catch_unwind(AssertUnwindSafe(|| JobSpec::from_json(&doc)))
                .unwrap_or_else(|_| panic!("schema panicked on wrapped depth {depth}"));
            assert!(spec.is_err());
        }
    }
}
