//! Adversarial property tests for the write-ahead job journal loader,
//! 10 000 seeded iterations across three corruption families.
//!
//! Properties:
//!
//! 1. **The loader never panics**: torn tails (a SIGKILL mid-append),
//!    duplicated and interleaved records, and arbitrary byte mutations
//!    all yield `Ok` or a *typed* [`JournalError`] — never an unwind.
//!    The journal is the recovery path; a panic here turns one crash
//!    into a boot loop.
//! 2. **Replay is idempotent**: whenever a corrupted file loads at all,
//!    loading it again yields the *identical* [`Replay`] — the first
//!    open trims the torn suffix, so the second sees a clean file. This
//!    is the invariant the chaos gate's third boot asserts end-to-end.
//! 3. **Corruption never invents jobs**: every job id a corrupted load
//!    reports was accepted by the uncorrupted writer (mutations can
//!    lose records, never fabricate them) — checked for the torn-tail
//!    family where the valid prefix is known exactly.
//!
//! The iteration stream is deterministic: seeded from `FOLDIC_FUZZ_SEED`
//! (decimal u64) when set, a fixed default otherwise, so CI failures
//! reproduce locally by exporting the same seed.

use foldic_serve::journal::{Journal, Record, Replay};
use foldic_serve::JobSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

const ITERS: usize = 10_000;

fn fuzz_seed() -> u64 {
    std::env::var("FOLDIC_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDAC1_4F00D)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("foldic-journal-fuzz");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

/// A random but *internally consistent* record stream: re-accepts of a
/// job id reuse its digest (the legitimate restart shape), so the
/// uncorrupted file always loads.
fn random_records(rng: &mut StdRng) -> Vec<Record> {
    let names = ["table1", "table2", "fig2", "fig3"];
    let n = rng.gen_range(1..12usize);
    let mut digests: BTreeMap<u64, String> = BTreeMap::new();
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let job = rng.gen_range(1..6u64);
        let attempt = rng.gen_range(1..4u32);
        match rng.gen_range(0..10u32) {
            0..=4 => {
                let name = names[rng.gen_range(0..names.len())];
                let digest = digests
                    .entry(job)
                    .or_insert_with(|| format!("fnv64:{job:016x}"))
                    .clone();
                let mut config = BTreeMap::new();
                config.insert("experiments".to_owned(), name.to_owned());
                config.insert("size".to_owned(), "tiny".to_owned());
                records.push(Record::Accepted {
                    job,
                    attempt,
                    digest,
                    spec: JobSpec {
                        experiments: vec![name.to_owned()],
                        size: "tiny".to_owned(),
                        ..JobSpec::default()
                    },
                    config,
                    request_id: rng.gen_bool(0.5).then(|| format!("req-{job:06x}")),
                    idempotency_key: rng.gen_bool(0.3).then(|| format!("spec-{job:016x}")),
                });
            }
            5..=6 => records.push(Record::Started { job, attempt }),
            _ => {
                let state = ["done", "failed", "cancelled"][rng.gen_range(0..3usize)];
                records.push(Record::Terminal {
                    job,
                    attempt,
                    state: state.to_owned(),
                    error: (state == "failed").then(|| "boom\nwith newline".to_owned()),
                    body: (state == "done" && rng.gen_bool(0.5))
                        .then(|| "body with \"quotes\" and \n newlines".to_owned()),
                });
            }
        }
    }
    records
}

/// Writes `records` through the real appender and returns the on-disk
/// bytes plus the replay a clean load of them produces.
fn valid_journal(path: &PathBuf, records: &[Record]) -> (Vec<u8>, Replay) {
    let _ = std::fs::remove_file(path);
    {
        let (journal, _) = Journal::open(path).unwrap();
        journal.append_sync(records).unwrap();
    }
    let bytes = std::fs::read(path).unwrap();
    let (_, replay) = Journal::open(path).unwrap();
    (bytes, replay)
}

/// Loads `bytes` as a journal twice. Asserts no panic and, when the
/// first load succeeds, that the second yields the identical replay.
/// Returns the first load's replay when it succeeded.
fn load_twice(path: &PathBuf, bytes: &[u8], what: &str) -> Option<Replay> {
    std::fs::write(path, bytes).unwrap();
    let first = catch_unwind(AssertUnwindSafe(|| Journal::open(path).map(|(_, r)| r)))
        .unwrap_or_else(|_| panic!("journal loader panicked on {what}"));
    let Ok(first) = first else {
        return None; // typed error — acceptable, nothing to replay
    };
    let second = Journal::open(path)
        .unwrap_or_else(|e| panic!("reopen after {what} failed: {e}"))
        .1;
    // The first open trims the torn suffix off the file, so the second
    // sees a clean one: same jobs, same records, nothing left to trim.
    assert_eq!(
        first.jobs, second.jobs,
        "replay not idempotent after {what}"
    );
    assert_eq!(
        first.records, second.records,
        "record count changed after {what}"
    );
    assert_eq!(
        second.trimmed_bytes, 0,
        "first open left a torn tail after {what}"
    );
    Some(first)
}

#[test]
fn torn_tails_trim_to_a_replayable_prefix() {
    let path = tmp("torn");
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x7041);
    for _ in 0..ITERS / 3 {
        let records = random_records(&mut rng);
        let (bytes, clean) = valid_journal(&path, &records);
        let cut = rng.gen_range(0..bytes.len());
        let replay = load_twice(&path, &bytes[..cut], "a torn tail");
        // A truncation can corrupt the header (typed error) but never a
        // mid-file record: when it loads, every surviving job must come
        // from the clean replay with the same digest.
        if let Some(replay) = replay {
            for (id, job) in &replay.jobs {
                let original = clean
                    .jobs
                    .get(id)
                    .unwrap_or_else(|| panic!("torn load invented job {id}"));
                assert_eq!(original.digest, job.digest, "torn load mutated job {id}");
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interleaved_and_duplicated_records_replay_idempotently() {
    let path = tmp("dup");
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0xD0B1);
    for _ in 0..ITERS / 3 {
        let records = random_records(&mut rng);
        let (bytes, _) = valid_journal(&path, &records);
        let text = String::from_utf8(bytes).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        if lines.len() > 1 {
            // duplicate a random record line…
            let pick = rng.gen_range(1..lines.len());
            let at = rng.gen_range(1..lines.len() + 1);
            let line = lines[pick];
            lines.insert(at, line);
            // …and sometimes swap two records (interleaving across jobs)
            if lines.len() > 2 && rng.gen_bool(0.5) {
                let i = rng.gen_range(1..lines.len());
                let j = rng.gen_range(1..lines.len());
                lines.swap(i, j);
            }
        }
        let mangled = lines.join("\n") + "\n";
        // Duplicated accepts reuse the job's digest, so this family must
        // always load: the apply-merge rules absorb replays and reorder.
        let replay = load_twice(&path, mangled.as_bytes(), "duplicated records");
        assert!(replay.is_some(), "consistent duplicates must replay");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mutated_bytes_never_panic_the_loader() {
    let path = tmp("mutate");
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0xBADB);
    for _ in 0..ITERS / 3 {
        let records = random_records(&mut rng);
        let (mut bytes, _) = valid_journal(&path, &records);
        for _ in 0..rng.gen_range(1..8u32) {
            match rng.gen_range(0..3u32) {
                0 => {
                    let at = rng.gen_range(0..bytes.len());
                    bytes[at] = rng.gen_range(0..256u32) as u8;
                }
                1 => {
                    let at = rng.gen_range(0..bytes.len() + 1);
                    bytes.insert(at, rng.gen_range(0..256u32) as u8);
                }
                _ => {
                    let at = rng.gen_range(0..bytes.len());
                    bytes.remove(at);
                    if bytes.is_empty() {
                        bytes.push(b'\n');
                    }
                }
            }
        }
        load_twice(&path, &bytes, "random byte mutations");
    }
    let _ = std::fs::remove_file(&path);
}
