//! Property tests for the scheduler's four hard rules, driven through a
//! controllable stub runner:
//!
//! * admission control — a full queue rejects with a `Retry-After` hint
//!   and never blocks the submitter;
//! * cancel-before-start — a cancelled queued job never reaches the
//!   runner;
//! * exclusive dispatch — a deadline-bounded job runs alone, and FIFO
//!   order is preserved around it;
//! * drain-on-shutdown — in-flight jobs finish, queued jobs cancel, and
//!   shutdown returns without deadlock;
//! * supervision — a panicking spec is quarantined after the poison
//!   threshold and never re-dispatched, and the circuit breaker walks
//!   closed → open (shedding with `Retry-After`) → half-open (one
//!   probe) → closed on a probe success.

use foldic_fault::supervise::BreakerConfig;
use foldic_serve::queue::{
    Durability, JobState, Scheduler, SchedulerConfig, StudyRunner, Submission,
};
use foldic_serve::JobSpec;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Runner whose jobs block until released, recording everything it runs.
#[derive(Default)]
struct GateRunner {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    /// Job names whose `run` has been entered, in entry order.
    started: Vec<String>,
    /// Job names currently inside `run`.
    running: Vec<String>,
    /// Job names allowed to return from `run`.
    released: Vec<String>,
}

impl GateRunner {
    fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Lets `name` (already running or arriving later) finish.
    fn release(&self, name: &str) {
        let mut state = self.state.lock().unwrap();
        state.released.push(name.to_owned());
        self.cv.notify_all();
    }

    /// Blocks until `name` has entered `run`, failing after `timeout`.
    fn await_started(&self, name: &str, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        while !state.started.iter().any(|s| s == name) {
            let left = deadline.saturating_duration_since(Instant::now());
            assert!(
                !left.is_zero(),
                "`{name}` never started: {:?}",
                state.started
            );
            state = self.cv.wait_timeout(state, left).unwrap().0;
        }
    }

    fn started(&self) -> Vec<String> {
        self.state.lock().unwrap().started.clone()
    }

    fn running_now(&self) -> Vec<String> {
        self.state.lock().unwrap().running.clone()
    }
}

impl StudyRunner for GateRunner {
    fn resolve(&self, spec: &JobSpec) -> Result<BTreeMap<String, String>, String> {
        let mut config = BTreeMap::new();
        config.insert("experiments".to_owned(), spec.experiments.join("+"));
        config.insert("size".to_owned(), spec.size.clone());
        if let Some(seed) = spec.seed {
            config.insert("seed".to_owned(), format!("{seed:#x}"));
        }
        if let Some(secs) = spec.deadline_secs {
            config.insert("deadline".to_owned(), format!("{secs}"));
        }
        Ok(config)
    }

    fn run(&self, spec: &JobSpec) -> Result<String, String> {
        let name = spec.experiments.join("+");
        let mut state = self.state.lock().unwrap();
        state.started.push(name.clone());
        state.running.push(name.clone());
        self.cv.notify_all();
        while !state.released.iter().any(|r| r == &name) {
            let (next, timed_out) = self
                .cv
                .wait_timeout(state, Duration::from_secs(30))
                .unwrap();
            state = next;
            assert!(!timed_out.timed_out(), "job `{name}` never released");
        }
        state.running.retain(|r| r != &name);
        self.cv.notify_all();
        Ok(format!("body:{name}"))
    }
}

fn spec(name: &str) -> JobSpec {
    JobSpec {
        experiments: vec![name.to_owned()],
        size: "tiny".to_owned(),
        ..JobSpec::default()
    }
}

fn queued(sub: Submission) -> u64 {
    match sub {
        Submission::Queued { id } => id,
        other => panic!("expected Queued, got {other:?}"),
    }
}

const WAIT: Duration = Duration::from_secs(20);

#[test]
fn full_queue_rejects_with_retry_after_and_recovers() {
    let runner = GateRunner::new();
    let sched = Scheduler::new(
        runner.clone(),
        SchedulerConfig {
            queue_capacity: 2,
            workers: 1,
            retry_after_secs: 7,
            ..SchedulerConfig::default()
        },
    );
    // `a` occupies the only worker; `b` and `c` fill the queue.
    let a = queued(sched.submit(spec("a")));
    runner.await_started("a", WAIT);
    let b = queued(sched.submit(spec("b")));
    let c = queued(sched.submit(spec("c")));
    // The queue is full: the next submission is rejected immediately,
    // carrying a load-derived hint — the configured base (7) plus one
    // second per worker-pool's worth of queued jobs (2 queued / 1
    // worker) — and is NOT recorded as a job.
    match sched.submit(spec("d")) {
        Submission::Rejected { retry_after_secs } => assert_eq!(retry_after_secs, 9),
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Draining one slot re-admits.
    for name in ["a", "b", "c", "d"] {
        runner.release(name);
    }
    assert_eq!(sched.wait_terminal(a, WAIT), Some(JobState::Done));
    assert_eq!(sched.wait_terminal(b, WAIT), Some(JobState::Done));
    assert_eq!(sched.wait_terminal(c, WAIT), Some(JobState::Done));
    let d = queued(sched.submit(spec("d")));
    assert_eq!(sched.wait_terminal(d, WAIT), Some(JobState::Done));
    sched.shutdown();
}

#[test]
fn cancel_before_start_never_reaches_the_runner() {
    let runner = GateRunner::new();
    let sched = Scheduler::new(
        runner.clone(),
        SchedulerConfig {
            queue_capacity: 8,
            workers: 1,
            retry_after_secs: 1,
            ..SchedulerConfig::default()
        },
    );
    let a = queued(sched.submit(spec("a")));
    runner.await_started("a", WAIT);
    let b = queued(sched.submit(spec("b")));
    let c = queued(sched.submit(spec("c")));
    // `b` is cancelled while queued: terminal immediately…
    assert_eq!(sched.cancel(b), Some(JobState::Cancelled));
    assert_eq!(sched.status(b).unwrap().state, JobState::Cancelled);
    // …and cancelling again (or after the fact) is a no-op.
    assert_eq!(sched.cancel(b), Some(JobState::Cancelled));
    runner.release("a");
    runner.release("c");
    assert_eq!(sched.wait_terminal(a, WAIT), Some(JobState::Done));
    assert_eq!(sched.wait_terminal(c, WAIT), Some(JobState::Done));
    // the runner saw `a` and `c`, never `b`
    assert_eq!(runner.started(), ["a", "c"]);
    // cancelling a running or done job reports its state unchanged
    assert_eq!(sched.cancel(a), Some(JobState::Done));
    assert_eq!(sched.cancel(999), None);
    sched.shutdown();
}

#[test]
fn deadline_jobs_dispatch_exclusively_in_fifo_order() {
    let runner = GateRunner::new();
    let sched = Scheduler::new(
        runner.clone(),
        SchedulerConfig {
            queue_capacity: 8,
            workers: 2,
            retry_after_secs: 1,
            ..SchedulerConfig::default()
        },
    );
    let a = queued(sched.submit(spec("a")));
    runner.await_started("a", WAIT);
    // `d` is deadline-bounded (exclusive); `b` follows it in the queue.
    let mut dspec = spec("d");
    dspec.deadline_secs = Some(30.0);
    let d = queued(sched.submit(dspec));
    let b = queued(sched.submit(spec("b")));
    // Two workers are available, but neither `d` (exclusive, `a` still
    // running) nor `b` (FIFO: behind `d`) may start.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(runner.running_now(), ["a"]);
    assert_eq!(sched.status(d).unwrap().state, JobState::Queued);
    assert_eq!(sched.status(b).unwrap().state, JobState::Queued);
    // `a` finishes → `d` runs alone; `b` still held back.
    runner.release("a");
    runner.await_started("d", WAIT);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(runner.running_now(), ["d"]);
    assert_eq!(sched.status(b).unwrap().state, JobState::Queued);
    // `d` finishes → normal concurrency resumes.
    runner.release("d");
    runner.await_started("b", WAIT);
    runner.release("b");
    for id in [a, d, b] {
        assert_eq!(sched.wait_terminal(id, WAIT), Some(JobState::Done));
    }
    assert_eq!(runner.started(), ["a", "d", "b"]);
    sched.shutdown();
}

#[test]
fn shutdown_drains_in_flight_and_cancels_queued_without_deadlock() {
    let runner = GateRunner::new();
    let sched = Arc::new(Scheduler::new(
        runner.clone(),
        SchedulerConfig {
            queue_capacity: 8,
            workers: 1,
            retry_after_secs: 1,
            ..SchedulerConfig::default()
        },
    ));
    let a = queued(sched.submit(spec("a")));
    runner.await_started("a", WAIT);
    let b = queued(sched.submit(spec("b")));
    // Release the in-flight job shortly after shutdown begins waiting on
    // it — if shutdown deadlocked, the test harness would hang here.
    let releaser = {
        let runner = runner.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            runner.release("a");
        })
    };
    sched.shutdown();
    releaser.join().unwrap();
    // in-flight drained to done, queued cancelled, nothing else ran
    assert_eq!(sched.status(a).unwrap().state, JobState::Done);
    assert_eq!(sched.status(b).unwrap().state, JobState::Cancelled);
    assert_eq!(runner.started(), ["a"]);
    // post-shutdown submissions are refused
    assert!(matches!(sched.submit(spec("c")), Submission::Draining));
    // shutdown is idempotent
    sched.shutdown();
}

#[test]
fn fifo_order_is_preserved_on_a_single_worker() {
    let runner = GateRunner::new();
    let sched = Scheduler::new(
        runner.clone(),
        SchedulerConfig {
            queue_capacity: 16,
            workers: 1,
            retry_after_secs: 1,
            ..SchedulerConfig::default()
        },
    );
    let names: Vec<String> = (0..8).map(|i| format!("job{i}")).collect();
    let ids: Vec<u64> = names
        .iter()
        .map(|name| {
            // pre-release so each job returns as soon as it starts
            runner.release(name);
            queued(sched.submit(spec(name)))
        })
        .collect();
    for id in ids {
        assert_eq!(sched.wait_terminal(id, WAIT), Some(JobState::Done));
    }
    assert_eq!(runner.started(), names);
    sched.shutdown();
}

/// Runner that panics on specs named `boom*` and counts `run` entries —
/// the stub behind the supervision properties.
#[derive(Default)]
struct CrashRunner {
    runs: AtomicU64,
}

impl StudyRunner for CrashRunner {
    fn resolve(&self, spec: &JobSpec) -> Result<BTreeMap<String, String>, String> {
        let mut config = BTreeMap::new();
        config.insert("experiments".to_owned(), spec.experiments.join("+"));
        config.insert("size".to_owned(), spec.size.clone());
        Ok(config)
    }

    fn run(&self, spec: &JobSpec) -> Result<String, String> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        let name = spec.experiments.join("+");
        assert!(!name.starts_with("boom"), "crash requested by the test");
        Ok(format!("body:{name}"))
    }
}

fn breaker_durability(threshold: u32, cooldown: Duration) -> Durability {
    Durability {
        breaker: Some(BreakerConfig {
            failure_threshold: threshold,
            cooldown,
        }),
        ..Durability::default()
    }
}

/// Reads `durability.<field>` out of the stats document.
fn durability_num(sched: &Scheduler, field: &str) -> f64 {
    sched
        .stats_json()
        .get("durability")
        .and_then(|d| d.get(field))
        .and_then(foldic_obs::json::Json::as_f64)
        .unwrap_or_else(|| panic!("stats missing durability.{field}"))
}

#[test]
fn poisoned_spec_is_quarantined_and_other_specs_keep_running() {
    let runner = Arc::new(CrashRunner::default());
    let sched = Scheduler::with_durability(
        runner.clone(),
        SchedulerConfig {
            queue_capacity: 8,
            workers: 1,
            retry_after_secs: 1,
            ..SchedulerConfig::default()
        },
        foldic_serve::Telemetry::disabled(),
        breaker_durability(100, Duration::from_secs(60)),
    );
    // Two panics on the same spec digest reach the poison threshold.
    for _ in 0..2 {
        let id = queued(sched.submit(spec("boom")));
        assert_eq!(sched.wait_terminal(id, WAIT), Some(JobState::Failed));
    }
    assert_eq!(runner.runs.load(Ordering::SeqCst), 2);
    // The third submission is accepted (the digest is only known after
    // resolve) but quarantined at dispatch: failed, runner never entered.
    let id = queued(sched.submit(spec("boom")));
    assert_eq!(sched.wait_terminal(id, WAIT), Some(JobState::Failed));
    let status = sched.status(id).unwrap();
    let error = status.error.as_deref().unwrap_or("");
    assert!(error.contains("poisoned"), "unexpected error: {error}");
    assert_eq!(
        runner.runs.load(Ordering::SeqCst),
        2,
        "a poisoned spec must never be re-dispatched"
    );
    assert!(durability_num(&sched, "poisoned_jobs") >= 1.0);
    // Other specs are unaffected by the quarantine.
    let ok = queued(sched.submit(spec("fine")));
    assert_eq!(sched.wait_terminal(ok, WAIT), Some(JobState::Done));
    sched.shutdown();
}

#[test]
fn breaker_opens_sheds_with_retry_after_and_recovers_via_probe() {
    let runner = Arc::new(CrashRunner::default());
    // Threshold 2, long cooldown: after two panics every submission is
    // shed while the breaker is open.
    let sched = Scheduler::with_durability(
        runner.clone(),
        SchedulerConfig {
            queue_capacity: 8,
            workers: 1,
            retry_after_secs: 1,
            ..SchedulerConfig::default()
        },
        foldic_serve::Telemetry::disabled(),
        breaker_durability(2, Duration::from_secs(3600)),
    );
    // Distinct spec names → distinct digests, so the poison ledger never
    // triggers and each panic strikes the breaker once.
    for name in ["boom1", "boom2"] {
        let id = queued(sched.submit(spec(name)));
        assert_eq!(sched.wait_terminal(id, WAIT), Some(JobState::Failed));
    }
    match sched.submit(spec("fine")) {
        Submission::Shed { retry_after_secs } => assert!(retry_after_secs > 0),
        other => panic!("expected Shed while the breaker is open, got {other:?}"),
    }
    assert!(durability_num(&sched, "shed") >= 1.0);
    sched.shutdown();

    // Same failure pattern with a zero cooldown: the next submission is
    // admitted as the half-open probe, and its success closes the
    // breaker again for everything after it.
    let runner = Arc::new(CrashRunner::default());
    let sched = Scheduler::with_durability(
        runner.clone(),
        SchedulerConfig {
            queue_capacity: 8,
            workers: 1,
            retry_after_secs: 1,
            ..SchedulerConfig::default()
        },
        foldic_serve::Telemetry::disabled(),
        breaker_durability(2, Duration::ZERO),
    );
    for name in ["boom1", "boom2"] {
        let id = queued(sched.submit(spec(name)));
        assert_eq!(sched.wait_terminal(id, WAIT), Some(JobState::Failed));
    }
    let probe = queued(sched.submit(spec("probe")));
    assert_eq!(sched.wait_terminal(probe, WAIT), Some(JobState::Done));
    for i in 0..3 {
        let id = queued(sched.submit(spec(&format!("after{i}"))));
        assert_eq!(sched.wait_terminal(id, WAIT), Some(JobState::Done));
    }
    let breaker = sched.stats_json();
    let state = breaker
        .get("durability")
        .and_then(|d| d.get("breaker"))
        .and_then(|b| b.get("state"))
        .and_then(foldic_obs::json::Json::as_str)
        .map(str::to_owned)
        .unwrap_or_default();
    assert_eq!(state, "closed", "probe success must close the breaker");
    sched.shutdown();
}
