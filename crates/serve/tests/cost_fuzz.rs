//! Adversarial property tests for the admission cost model:
//! `estimate_cost` prices whatever spec a client manages to get past
//! JSON parsing, so arbitrary specs must yield `Ok` or a typed `Err`,
//! never a panic — and the estimate itself must be a pure, deterministic,
//! order-insensitive function of the spec's size and experiment set
//! (the reservation ledger's correctness rides on two submissions of
//! the same study pricing identically).
//!
//! Seeding matches `crates/obs/tests/json_fuzz.rs`: `FOLDIC_FUZZ_SEED`
//! (decimal u64) when set, a fixed default otherwise.

use foldic_serve::cost::estimate_cost;
use foldic_serve::JobSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITERS: usize = 10_000;

fn fuzz_seed() -> u64 {
    std::env::var("FOLDIC_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDAC1_4F00D)
}

const SIZES: &[&str] = &["tiny", "small", "full", "", "huge", "TINY", "tiny ", "füll"];

fn random_name(rng: &mut StdRng) -> String {
    let mut name = String::new();
    for _ in 0..rng.gen_range(0..12usize) {
        const BYTES: &[u8] = b"table2fig+*= \t\0";
        name.push(BYTES[rng.gen_range(0..BYTES.len())] as char);
    }
    name
}

/// A spec in the neighborhood of what clients send: valid sizes and
/// experiment names often enough to reach the arithmetic, junk often
/// enough to reach every rejection.
fn random_spec(rng: &mut StdRng) -> JobSpec {
    let n = match rng.gen_range(0..10u32) {
        0 => 0,
        // straddle the 1024-experiment cap from both sides
        1 => rng.gen_range(1020..1030usize),
        _ => rng.gen_range(1..8usize),
    };
    JobSpec {
        experiments: (0..n).map(|_| random_name(rng)).collect(),
        size: SIZES[rng.gen_range(0..SIZES.len())].to_owned(),
        seed: rng.gen_bool(0.5).then(|| rng.gen()),
        threads: rng.gen_range(1..65usize),
        deadline_secs: rng.gen_bool(0.3).then(|| rng.gen_range(0.0..100.0)),
        // straddle the 2^32-cell pricing cap: plausible counts, the
        // boundary neighborhood, and arbitrary u64 junk
        design_cells: rng.gen_bool(0.5).then(|| match rng.gen_range(0..4u32) {
            0 => rng.gen_range(1..10_000_000u64),
            1 => (1u64 << 32) - 1 + rng.gen_range(0..3),
            _ => rng.gen(),
        }),
    }
}

#[test]
fn estimate_cost_never_panics() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed());
    for i in 0..ITERS {
        let spec = random_spec(&mut rng);
        let result = std::panic::catch_unwind(|| estimate_cost(&spec).is_ok());
        assert!(
            result.is_ok(),
            "estimate_cost panicked on iteration {i} (seed {}): {:?}",
            fuzz_seed(),
            spec.experiments
        );
    }
}

#[test]
fn estimates_are_deterministic_order_insensitive_and_ignore_runtime_knobs() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x636F_7374);
    for i in 0..ITERS {
        let spec = random_spec(&mut rng);
        let first = estimate_cost(&spec);
        assert_eq!(
            first,
            estimate_cost(&spec),
            "iteration {i} (seed {}): same spec, different answer",
            fuzz_seed()
        );

        // reversing (and duplicating one entry of) the experiment list
        // must not change a successful estimate: admission dedups and
        // sorts, so the ledger charge is a function of the *set*
        let mut shuffled = spec.clone();
        shuffled.experiments.reverse();
        if let Some(first_name) = shuffled.experiments.first().cloned() {
            shuffled.experiments.push(first_name);
        }
        // duplication may cross the length cap; only compare when both
        // sides are priceable
        if let (Ok(a), Ok(b)) = (&first, &estimate_cost(&shuffled)) {
            assert_eq!(a, b, "iteration {i} (seed {})", fuzz_seed());
        }

        // seed, threads and deadline deliberately do not participate
        // (design_cells does — it stays untouched here)
        let mut reknobbed = spec.clone();
        reknobbed.seed = Some(rng.gen());
        reknobbed.threads = rng.gen_range(1..65usize);
        reknobbed.deadline_secs = Some(1.0);
        assert_eq!(
            first,
            estimate_cost(&reknobbed),
            "iteration {i} (seed {}): runtime knobs changed the price",
            fuzz_seed()
        );
    }
}

#[test]
fn successful_estimates_are_sane() {
    // Every priceable spec costs at least its base overhead and the
    // model never overflows (saturating arithmetic) — a u64::MAX
    // estimate would wedge admission by out-pricing every limit.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x7361_6E65);
    for i in 0..ITERS {
        let spec = random_spec(&mut rng);
        if let Ok(estimate) = estimate_cost(&spec) {
            assert!(
                estimate >= 1 << 20,
                "iteration {i} (seed {}): estimate {estimate} below base overhead",
                fuzz_seed()
            );
            assert!(
                estimate < u64::MAX / 2,
                "iteration {i} (seed {}): estimate {estimate} implausibly large",
                fuzz_seed()
            );
        }
    }
}
