//! Memory-macro library.
//!
//! The T2's L2-cache data bank (`scdata`) is "memory (and its power)
//! dominated": 512 KB implemented as 32 macros of 16 KB each. Macro power
//! does not shrink when a block is folded — the paper's explanation for the
//! small power win of the `scdata` fold (§4.4) — so macros carry their own
//! internal/leakage power here, independent of the logic optimizer.

use std::collections::HashMap;
use std::fmt;

/// Kind of hard macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MacroKind {
    /// 16 KB single-port SRAM bank (the `scdata` unit macro).
    Sram16k,
    /// 8 KB SRAM (tag arrays and smaller buffers).
    Sram8k,
    /// 4 KB SRAM (FIFOs, small queues).
    Sram4k,
    /// Multi-ported register file (core-internal storage).
    RegFile,
    /// CAM array used in TLBs and miss buffers.
    Cam,
}

impl MacroKind {
    /// Every macro kind in a stable order.
    pub const ALL: [MacroKind; 5] = [
        MacroKind::Sram16k,
        MacroKind::Sram8k,
        MacroKind::Sram4k,
        MacroKind::RegFile,
        MacroKind::Cam,
    ];
}

impl fmt::Display for MacroKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MacroKind::Sram16k => "SRAM16K",
            MacroKind::Sram8k => "SRAM8K",
            MacroKind::Sram4k => "SRAM4K",
            MacroKind::RegFile => "REGFILE",
            MacroKind::Cam => "CAM",
        };
        f.write_str(s)
    }
}

/// One characterized hard macro.
#[derive(Debug, Clone)]
pub struct MacroMaster {
    /// Kind of the macro.
    pub kind: MacroKind,
    /// Width in µm.
    pub width_um: f64,
    /// Height in µm.
    pub height_um: f64,
    /// Number of signal pins (address + data + control), which the netlist
    /// generator wires to surrounding logic.
    pub pin_count: usize,
    /// Capacitance per signal pin in fF.
    pub pin_cap_ff: f64,
    /// Internal energy per clocked access in fJ.
    pub access_energy_fj: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
    /// Output drive resistance of the macro's read ports in Ω.
    pub output_res_ohm: f64,
    /// Access (clock-to-output) delay in ps.
    pub access_delay_ps: f64,
}

impl MacroMaster {
    /// Footprint area in µm².
    pub fn area_um2(&self) -> f64 {
        self.width_um * self.height_um
    }
}

/// A library of hard macros indexed by [`MacroKind`].
///
/// # Examples
///
/// ```
/// use foldic_tech::{MacroKind, MacroLibrary};
///
/// let lib = MacroLibrary::cmos28();
/// let sram = lib.get(MacroKind::Sram16k);
/// assert!(sram.area_um2() > 10_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct MacroLibrary {
    masters: HashMap<MacroKind, MacroMaster>,
}

impl MacroLibrary {
    /// Builds the default 28 nm-class macro library.
    pub fn cmos28() -> Self {
        let mut masters = HashMap::new();
        // 28nm 6T SRAM bitcell ≈ 0.12 µm²; array efficiency ≈ 50 %.
        let m = |kind, w, h, pins, pin_cap, energy, leak, res, delay| {
            (
                kind,
                MacroMaster {
                    kind,
                    width_um: w,
                    height_um: h,
                    pin_count: pins,
                    pin_cap_ff: pin_cap,
                    access_energy_fj: energy,
                    leakage_uw: leak,
                    output_res_ohm: res,
                    access_delay_ps: delay,
                },
            )
        };
        for (k, v) in [
            // 16KB: 131072 bits * 0.12um2 / 0.5 eff ≈ 31,457 µm² → 210 × 150
            m(
                MacroKind::Sram16k,
                210.0,
                150.0,
                96,
                2.5,
                27_000.0,
                300.0,
                900.0,
                450.0,
            ),
            m(
                MacroKind::Sram8k,
                150.0,
                110.0,
                80,
                2.2,
                5_200.0,
                115.0,
                950.0,
                380.0,
            ),
            m(
                MacroKind::Sram4k,
                110.0,
                80.0,
                72,
                2.0,
                3_100.0,
                62.0,
                1000.0,
                330.0,
            ),
            m(
                MacroKind::RegFile,
                90.0,
                60.0,
                140,
                1.8,
                2_400.0,
                48.0,
                800.0,
                260.0,
            ),
            m(
                MacroKind::Cam,
                80.0,
                70.0,
                110,
                2.1,
                4_400.0,
                75.0,
                850.0,
                300.0,
            ),
        ] {
            masters.insert(k, v);
        }
        Self { masters }
    }

    /// The master for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if the kind is missing (cannot happen for libraries built by
    /// [`MacroLibrary::cmos28`]).
    pub fn get(&self, kind: MacroKind) -> &MacroMaster {
        self.masters
            .get(&kind)
            .unwrap_or_else(|| panic!("macro library is missing {kind}"))
    }

    /// Iterates over all masters in `MacroKind::ALL` order.
    pub fn iter(&self) -> impl Iterator<Item = &MacroMaster> {
        MacroKind::ALL.iter().filter_map(|k| self.masters.get(k))
    }

    /// Number of macro masters.
    pub fn len(&self) -> usize {
        self.masters.len()
    }

    /// `true` when the library holds no macros.
    pub fn is_empty(&self) -> bool {
        self.masters.is_empty()
    }
}

impl Default for MacroLibrary {
    fn default() -> Self {
        Self::cmos28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_present() {
        let lib = MacroLibrary::cmos28();
        assert_eq!(lib.len(), MacroKind::ALL.len());
        for k in MacroKind::ALL {
            assert!(lib.get(k).area_um2() > 0.0);
        }
    }

    #[test]
    fn sram_sizes_ordered() {
        let lib = MacroLibrary::cmos28();
        let a16 = lib.get(MacroKind::Sram16k).area_um2();
        let a8 = lib.get(MacroKind::Sram8k).area_um2();
        let a4 = lib.get(MacroKind::Sram4k).area_um2();
        assert!(a16 > a8 && a8 > a4);
        // energy and leakage should scale with capacity too
        assert!(lib.get(MacroKind::Sram16k).leakage_uw > lib.get(MacroKind::Sram8k).leakage_uw);
    }

    #[test]
    fn scdata_bank_footprint_plausible() {
        // 32 × 16KB macros must fit comfortably inside the paper's
        // 910 × 1440 µm² scdata bank.
        let lib = MacroLibrary::cmos28();
        let total = 32.0 * lib.get(MacroKind::Sram16k).area_um2();
        assert!(total < 0.9 * 910.0 * 1440.0, "macros {total} µm² too big");
        assert!(
            total > 0.4 * 910.0 * 1440.0,
            "macros {total} µm² too small to dominate"
        );
    }
}
