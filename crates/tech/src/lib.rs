#![warn(missing_docs)]
//! 28 nm-class technology model for the `foldic` 3D-IC study.
//!
//! The paper builds its layouts on a Synopsys 28 nm PDK with nine metal
//! layers, an RVT/HVT standard-cell library and compiled memory macros.
//! This crate supplies the open equivalent: a parameterized
//! [`Technology`] bundling
//!
//! * a standard-cell library ([`CellLibrary`]) with drive strengths X1–X16
//!   and regular-Vth / high-Vth flavours (HVT ≈ +30 % delay, −50 % leakage,
//!   −5 % internal power — the deltas the paper states in §6.2),
//! * memory-macro models ([`MacroLibrary`], 16 KB SRAM banks etc.),
//! * a nine-layer [`MetalStack`] with per-layer wire R/C,
//! * TSV and face-to-face via electrical models ([`via3d`]) following the
//!   Katti cylindrical-TSV formulation the paper cites as \[4\],
//! * the routing-layer usage policy of §2.2/§6.1 (SPC gets M1–M9, other
//!   blocks M1–M7; F2F-bonded folded blocks consume all nine layers).
//!
//! # Units
//!
//! | quantity    | unit |
//! |-------------|------|
//! | length      | µm   |
//! | resistance  | Ω    |
//! | capacitance | fF   |
//! | time        | ps   |
//! | energy      | fJ   |
//! | power       | µW   |
//! | frequency   | GHz  |
//!
//! With these units `R·C` is in units of `Ω·fF = 10⁻³ ps`
//! (see [`units::RC_TO_PS`]) and `E·f` is directly in µW.
//!
//! # Examples
//!
//! ```
//! use foldic_tech::Technology;
//!
//! let tech = Technology::cmos28();
//! let tsv = tech.tsv.resistance_ohm();
//! let f2f = tech.f2f_via.resistance_ohm();
//! assert!(tech.tsv.capacitance_ff() > tech.f2f_via.capacitance_ff());
//! assert!(tsv > 0.0 && f2f > 0.0);
//! ```

pub mod cells;
pub mod macros;
pub mod metal;
pub mod policy;
pub mod units;
pub mod via3d;

pub use cells::{CellClass, CellKind, CellLibrary, Drive, MasterCell, VthClass};
pub use macros::{MacroKind, MacroLibrary, MacroMaster};
pub use metal::{MetalLayer, MetalStack};
pub use policy::{BondingStyle, RoutingPolicy};
pub use via3d::{F2fViaModel, TsvModel, Via3dKind};

/// A complete process technology: libraries, interconnect and 3D options.
#[derive(Debug, Clone)]
pub struct Technology {
    /// Human-readable node name, e.g. `"cmos28"`.
    pub name: String,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Standard-cell row height in µm. Workload generators that rescale
    /// the library (cluster cells) scale this too, so cells stay roughly
    /// square.
    pub row_height: f64,
    /// The paper's "long wire" threshold (§4.1): 100× the *physical*
    /// standard-cell height. Kept separate from `row_height` so cluster
    /// rescaling does not shift the census definition.
    pub long_wire_um: f64,
    /// Standard cell library (all kinds × drives × Vth classes).
    pub cells: CellLibrary,
    /// Memory macro library.
    pub macros: MacroLibrary,
    /// Back-end-of-line metal stack.
    pub metal: MetalStack,
    /// Through-silicon via model (face-to-back bonding).
    pub tsv: TsvModel,
    /// Face-to-face via model (face-to-face bonding).
    pub f2f_via: F2fViaModel,
    /// CPU clock frequency in GHz (paper: 500 MHz target).
    pub cpu_clock_ghz: f64,
    /// I/O clock frequency in GHz (paper: 250 MHz).
    pub io_clock_ghz: f64,
}

impl Technology {
    /// The default 28 nm-class technology used throughout the study.
    pub fn cmos28() -> Self {
        let metal = MetalStack::cmos28();
        let f2f_via = F2fViaModel::sized_for(&metal);
        Self {
            name: "cmos28".to_owned(),
            vdd: 0.9,
            row_height: 1.2,
            long_wire_um: 120.0,
            cells: CellLibrary::cmos28(),
            macros: MacroLibrary::cmos28(),
            metal,
            tsv: TsvModel::default(),
            f2f_via,
            cpu_clock_ghz: 0.5,
            io_clock_ghz: 0.25,
        }
    }

    /// Length threshold (µm) above which the paper counts a wire as "long"
    /// (100× the physical standard-cell height, §4.1).
    pub fn long_wire_threshold(&self) -> f64 {
        self.long_wire_um
    }

    /// Clock period of the CPU domain in ps.
    pub fn cpu_period_ps(&self) -> f64 {
        1000.0 / self.cpu_clock_ghz
    }

    /// Clock period of the I/O domain in ps.
    pub fn io_period_ps(&self) -> f64 {
        1000.0 / self.io_clock_ghz
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::cmos28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tech_is_consistent() {
        let t = Technology::cmos28();
        assert_eq!(t.long_wire_threshold(), 120.0);
        assert_eq!(t.cpu_period_ps(), 2000.0);
        assert_eq!(t.io_period_ps(), 4000.0);
        assert!(t.vdd > 0.0);
    }

    #[test]
    fn tsv_dwarfs_f2f_via() {
        // Table 1's central asymmetry: the TSV is much bigger and much more
        // capacitive than the F2F via.
        let t = Technology::cmos28();
        assert!(t.tsv.diameter_um > 2.0 * t.f2f_via.size_um);
        assert!(t.tsv.capacitance_ff() > 10.0 * t.f2f_via.capacitance_ff());
    }
}
