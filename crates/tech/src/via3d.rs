//! Electrical and geometric models for 3D interconnect elements.
//!
//! Two bonding styles exist for two-tier stacks (paper Fig. 1):
//!
//! * **face-to-back (F2B)** — the top die's face bonds to the bottom die's
//!   thinned back; inter-die connections are **TSVs** drilled through the
//!   top die's substrate. TSVs consume silicon area (cells cannot sit under
//!   them) and their pitch limits 3D connection density.
//! * **face-to-face (F2F)** — the two dies bond face to face; connections
//!   are **F2F vias** between the top metals. They consume no silicon area
//!   and may sit over cells and macros.
//!
//! The TSV R/C follows the closed-form cylindrical model of Katti et al.
//! (the paper's reference \[4\]): metal resistance of a copper cylinder and
//! the coaxial metal–oxide–semiconductor capacitance of the liner.

use crate::metal::MetalStack;

/// Copper resistivity in Ω·µm (1.68×10⁻⁸ Ω·m).
const RHO_CU_OHM_UM: f64 = 1.68e-2;
/// Vacuum permittivity in fF/µm (8.854×10⁻¹² F/m).
const EPS0_FF_UM: f64 = 8.854e-3;
/// SiO₂ relative permittivity.
const EPS_OX: f64 = 3.9;

/// Which 3D interconnect element a connection uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Via3dKind {
    /// Through-silicon via (face-to-back bonding).
    Tsv,
    /// Face-to-face via (face-to-face bonding).
    F2fVia,
}

/// Katti-model through-silicon via.
///
/// # Examples
///
/// ```
/// use foldic_tech::TsvModel;
///
/// let tsv = TsvModel::default();
/// // tens of mΩ and tens of fF, per the model in the paper's Table 1
/// assert!(tsv.resistance_ohm() < 1.0);
/// assert!(tsv.capacitance_ff() > 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvModel {
    /// Copper body diameter in µm.
    pub diameter_um: f64,
    /// Via height (thinned substrate thickness) in µm.
    pub height_um: f64,
    /// Minimum centre-to-centre pitch in µm.
    pub pitch_um: f64,
    /// Oxide liner thickness in µm.
    pub liner_um: f64,
}

impl TsvModel {
    /// Body resistance `ρ·h / (π·r²)` in Ω.
    pub fn resistance_ohm(&self) -> f64 {
        let r = self.diameter_um / 2.0;
        RHO_CU_OHM_UM * self.height_um / (std::f64::consts::PI * r * r)
    }

    /// Coaxial MIS capacitance `2π·ε_ox·h / ln((r+t_ox)/r)` in fF.
    pub fn capacitance_ff(&self) -> f64 {
        let r = self.diameter_um / 2.0;
        2.0 * std::f64::consts::PI * EPS_OX * EPS0_FF_UM * self.height_um
            / ((r + self.liner_um) / r).ln()
    }

    /// Silicon keep-out footprint in µm²: a `pitch × pitch` square no cell
    /// may occupy (body + liner + stress keep-out).
    pub fn keepout_area_um2(&self) -> f64 {
        self.pitch_um * self.pitch_um
    }

    /// Landing-pad edge length in µm (pad at M1 on the bottom die).
    pub fn landing_pad_um(&self) -> f64 {
        self.diameter_um + 2.0 * self.liner_um
    }

    /// TSV-to-wire coupling capacitance in fF (the paper's §7 future-work
    /// parasitic): the cylindrical body couples laterally into the wires
    /// routed past it. Modeled as a coaxial capacitor from the body to a
    /// virtual shield at half the keep-out pitch, of which `wire_fraction`
    /// terminates on signal wiring (the rest sees substrate/power mesh).
    pub fn coupling_cap_ff(&self) -> f64 {
        let r = self.diameter_um / 2.0;
        let shield = (self.pitch_um / 2.0).max(r * 1.2);
        let wire_fraction = 0.25;
        2.0 * std::f64::consts::PI * EPS_OX * EPS0_FF_UM * self.height_um / (shield / r).ln()
            * wire_fraction
    }
}

impl Default for TsvModel {
    /// The study's TSV: 3.5 µm body, 30 µm height, 7 µm pitch, 0.35 µm
    /// liner — sized so a folded block's TSV array costs ≈10 % of its die
    /// area (the paper's Fig. 6 annotation).
    fn default() -> Self {
        Self {
            diameter_um: 3.5,
            height_um: 30.0,
            pitch_um: 7.0,
            liner_um: 0.35,
        }
    }
}

/// Face-to-face via (bond-point between the two top metals).
///
/// The paper sizes it "comparable to the top metal dimension, around twice
/// the minimum top metal (M9) width".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F2fViaModel {
    /// Square pad edge in µm.
    pub size_um: f64,
    /// Minimum centre-to-centre pitch in µm.
    pub pitch_um: f64,
    /// Bond height (top-metal to top-metal) in µm.
    pub height_um: f64,
}

impl F2fViaModel {
    /// Builds the model from a metal stack: pad edge = 2× min M9 width.
    pub fn sized_for(stack: &MetalStack) -> Self {
        let w = 2.0 * stack.top_layer().min_width_um;
        Self {
            size_um: w,
            pitch_um: 2.0 * w,
            height_um: 1.0,
        }
    }

    /// Bond resistance in Ω: a short copper pillar plus contact resistance.
    pub fn resistance_ohm(&self) -> f64 {
        let area = self.size_um * self.size_um;
        let body = RHO_CU_OHM_UM * self.height_um / area;
        let contact = 0.15; // Cu-Cu thermo-compression contact
        body + contact
    }

    /// Bond capacitance in fF: parallel-plate pad-to-substrate fringe,
    /// empirically a fraction of a fF for µm-scale pads.
    pub fn capacitance_ff(&self) -> f64 {
        // plate term + fringe floor
        let plate = EPS_OX * EPS0_FF_UM * self.size_um * self.size_um / 0.5;
        plate + 0.05
    }

    /// Top-metal pad area in µm² — consumed on M9, not in silicon.
    pub fn pad_area_um2(&self) -> f64 {
        self.size_um * self.size_um
    }
}

impl Default for F2fViaModel {
    fn default() -> Self {
        Self::sized_for(&MetalStack::cmos28())
    }
}

/// Electrical summary of a 3D interconnect element, for reports (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Via3dSummary {
    /// Which element this summarizes.
    pub kind: Via3dKind,
    /// Body diameter / pad edge in µm.
    pub diameter_um: f64,
    /// Height in µm.
    pub height_um: f64,
    /// Pitch in µm.
    pub pitch_um: f64,
    /// Resistance in Ω.
    pub resistance_ohm: f64,
    /// Capacitance in fF.
    pub capacitance_ff: f64,
}

impl TsvModel {
    /// Summary row for Table 1.
    pub fn summary(&self) -> Via3dSummary {
        Via3dSummary {
            kind: Via3dKind::Tsv,
            diameter_um: self.diameter_um,
            height_um: self.height_um,
            pitch_um: self.pitch_um,
            resistance_ohm: self.resistance_ohm(),
            capacitance_ff: self.capacitance_ff(),
        }
    }
}

impl F2fViaModel {
    /// Summary row for Table 1.
    pub fn summary(&self) -> Via3dSummary {
        Via3dSummary {
            kind: Via3dKind::F2fVia,
            diameter_um: self.size_um,
            height_um: self.height_um,
            pitch_um: self.pitch_um,
            resistance_ohm: self.resistance_ohm(),
            capacitance_ff: self.capacitance_ff(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_katti_values_in_range() {
        let tsv = TsvModel::default();
        let r = tsv.resistance_ohm();
        let c = tsv.capacitance_ff();
        // ρh/(πr²) = 1.68e-2 * 30 / (π·1.75²) ≈ 52 mΩ
        assert!((r - 0.052).abs() < 0.005, "R = {r} Ω");
        // 2π·3.9·8.854e-3·30 / ln(2.1/1.75) ≈ 35.7 fF
        assert!((c - 35.7).abs() < 3.0, "C = {c} fF");
    }

    #[test]
    fn f2f_via_is_tiny() {
        let f2f = F2fViaModel::default();
        assert!(f2f.size_um <= 1.0);
        assert!(f2f.capacitance_ff() < 1.0);
        assert!(f2f.resistance_ohm() < 1.0);
    }

    #[test]
    fn tsv_area_overhead_vs_f2f() {
        let tsv = TsvModel::default();
        let f2f = F2fViaModel::default();
        // A TSV costs pitch² = 49 µm² of silicon; an F2F via costs none.
        assert_eq!(tsv.keepout_area_um2(), 49.0);
        assert!(f2f.pad_area_um2() < 1.0);
    }

    #[test]
    fn summaries_match_models() {
        let tsv = TsvModel::default();
        let s = tsv.summary();
        assert_eq!(s.kind, Via3dKind::Tsv);
        assert_eq!(s.resistance_ohm, tsv.resistance_ohm());
        let f = F2fViaModel::default().summary();
        assert_eq!(f.kind, Via3dKind::F2fVia);
    }

    #[test]
    fn coupling_is_a_fraction_of_body_cap() {
        let tsv = TsvModel::default();
        let c = tsv.coupling_cap_ff();
        assert!(c > 0.5, "coupling {c} fF too small to matter");
        assert!(c < tsv.capacitance_ff(), "coupling {c} exceeds body cap");
    }

    #[test]
    fn scaling_laws() {
        let thin = TsvModel {
            diameter_um: 2.0,
            ..TsvModel::default()
        };
        let fat = TsvModel {
            diameter_um: 8.0,
            ..TsvModel::default()
        };
        // Thinner TSV: more resistance, less capacitance.
        assert!(thin.resistance_ohm() > fat.resistance_ohm());
        assert!(thin.capacitance_ff() < fat.capacitance_ff());
    }
}
