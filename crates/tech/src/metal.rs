//! Nine-layer back-end-of-line metal stack with per-layer wire parasitics.

/// One routing layer.
#[derive(Debug, Clone, PartialEq)]
pub struct MetalLayer {
    /// Layer name (`"M1"` … `"M9"`).
    pub name: String,
    /// 1-based layer index.
    pub index: usize,
    /// Minimum wire width in µm.
    pub min_width_um: f64,
    /// Routing pitch in µm (wire width + spacing).
    pub pitch_um: f64,
    /// Wire resistance per µm in Ω at minimum width.
    pub r_per_um: f64,
    /// Wire capacitance per µm in fF at minimum width.
    pub c_per_um: f64,
    /// `true` for horizontal preferred direction (alternating by layer).
    pub horizontal: bool,
}

/// The full metal stack.
///
/// # Examples
///
/// ```
/// use foldic_tech::MetalStack;
///
/// let stack = MetalStack::cmos28();
/// assert_eq!(stack.num_layers(), 9);
/// // Upper layers are fatter and faster:
/// assert!(stack.layer(9).r_per_um < stack.layer(2).r_per_um);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MetalStack {
    layers: Vec<MetalLayer>,
}

impl MetalStack {
    /// The default 28 nm-class nine-layer stack: thin local layers (M1–M3),
    /// intermediate (M4–M7) and thick global layers (M8–M9).
    pub fn cmos28() -> Self {
        // (min_width, pitch, r/um, c/um) per layer group.
        let spec: [(f64, f64, f64, f64); 9] = [
            (0.05, 0.10, 16.0, 0.18), // M1
            (0.05, 0.10, 8.0, 0.19),  // M2
            (0.05, 0.10, 6.0, 0.20),  // M3
            (0.07, 0.14, 2.8, 0.20),  // M4
            (0.07, 0.14, 2.2, 0.21),  // M5
            (0.10, 0.20, 1.1, 0.21),  // M6
            (0.10, 0.20, 0.9, 0.22),  // M7
            (0.40, 0.80, 0.16, 0.24), // M8
            (0.40, 0.80, 0.13, 0.24), // M9
        ];
        let layers = spec
            .iter()
            .enumerate()
            .map(|(i, &(w, p, r, c))| MetalLayer {
                name: format!("M{}", i + 1),
                index: i + 1,
                min_width_um: w,
                pitch_um: p,
                r_per_um: r,
                c_per_um: c,
                horizontal: (i + 1) % 2 == 0,
            })
            .collect();
        Self { layers }
    }

    /// Number of layers in the stack.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The 1-based `index`-th layer.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 0 or beyond the stack.
    pub fn layer(&self, index: usize) -> &MetalLayer {
        assert!(
            index >= 1 && index <= self.layers.len(),
            "metal layer M{index} out of range"
        );
        &self.layers[index - 1]
    }

    /// The topmost layer (M9 in the default stack).
    pub fn top_layer(&self) -> &MetalLayer {
        self.layers.last().expect("stack is never empty")
    }

    /// Iterates over the layers, M1 first.
    pub fn iter(&self) -> impl Iterator<Item = &MetalLayer> {
        self.layers.iter()
    }

    /// Average wire resistance per µm across layers `1..=max_layer`,
    /// weighted toward the intermediate layers signal routing actually
    /// uses (local layers are mostly pins, top layers mostly clock/power).
    ///
    /// This is the effective value the wire-delay and wire-capacitance
    /// models use for a block allowed to route up to `max_layer`.
    pub fn effective_r_per_um(&self, max_layer: usize) -> f64 {
        self.weighted(max_layer, |l| l.r_per_um)
    }

    /// Average wire capacitance per µm across layers `1..=max_layer`
    /// (see [`MetalStack::effective_r_per_um`]).
    pub fn effective_c_per_um(&self, max_layer: usize) -> f64 {
        self.weighted(max_layer, |l| l.c_per_um)
    }

    /// Routing-track supply per µm of bin width for layers `1..=max_layer`:
    /// `Σ 1/pitch` over signal layers, discounting M1 (pins) entirely.
    pub fn track_capacity_per_um(&self, max_layer: usize) -> f64 {
        self.layers
            .iter()
            .take(max_layer.min(self.layers.len()))
            .skip(1)
            .map(|l| 1.0 / l.pitch_um)
            .sum()
    }

    fn weighted(&self, max_layer: usize, f: impl Fn(&MetalLayer) -> f64) -> f64 {
        let max = max_layer.clamp(1, self.layers.len());
        // Length-weighted layer mix: M1 carries pins only, and the total
        // wire length on a layer grows with its position in the stack
        // (routers promote long nets upward), so weight ∝ layer index.
        let mut sum = 0.0;
        let mut wsum = 0.0;
        for l in &self.layers[1..max] {
            let w = l.index as f64;
            sum += f(l) * w;
            wsum += w;
        }
        if wsum == 0.0 {
            return f(&self.layers[0]);
        }
        sum / wsum
    }
}

impl Default for MetalStack {
    fn default() -> Self {
        Self::cmos28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_layers_with_alternating_directions() {
        let s = MetalStack::cmos28();
        assert_eq!(s.num_layers(), 9);
        assert_eq!(s.layer(1).name, "M1");
        assert_eq!(s.top_layer().name, "M9");
        assert_ne!(s.layer(1).horizontal, s.layer(2).horizontal);
    }

    #[test]
    fn more_layers_means_faster_wires() {
        let s = MetalStack::cmos28();
        // Opening M8/M9 lowers the effective resistance.
        assert!(s.effective_r_per_um(9) < s.effective_r_per_um(7));
        // And increases track supply.
        assert!(s.track_capacity_per_um(9) > s.track_capacity_per_um(7));
    }

    #[test]
    fn effective_values_bounded_by_extremes() {
        let s = MetalStack::cmos28();
        for max in [3, 5, 7, 9] {
            let r = s.effective_r_per_um(max);
            assert!(r <= s.layer(1).r_per_um && r >= s.top_layer().r_per_um);
            let c = s.effective_c_per_um(max);
            assert!(c > 0.1 && c < 0.3);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layer_zero_panics() {
        let _ = MetalStack::cmos28().layer(0);
    }
}
