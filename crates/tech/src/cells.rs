//! Standard-cell library: kinds × drive strengths × Vth classes.

use std::collections::HashMap;
use std::fmt;

/// Logical function of a standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer (the cell the timing optimizer inserts).
    Buf,
    /// Clock-tree buffer.
    ClkBuf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// AND-OR-invert 2-1.
    Aoi21,
    /// OR-AND-invert 2-1.
    Oai21,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer.
    Mux2,
    /// D flip-flop.
    Dff,
}

impl CellKind {
    /// Every kind, in a stable order.
    pub const ALL: [CellKind; 12] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::ClkBuf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Xor2,
        CellKind::Mux2,
        CellKind::Dff,
    ];

    /// Broad class used for statistics and optimization decisions.
    pub fn class(self) -> CellClass {
        match self {
            CellKind::Buf | CellKind::Inv => CellClass::Buffer,
            CellKind::ClkBuf => CellClass::ClockTree,
            CellKind::Dff => CellClass::Sequential,
            _ => CellClass::Combinational,
        }
    }

    /// Short library name fragment (`"INV"`, `"DFF"`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::ClkBuf => "CLKBUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Xor2 => "XOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Dff => "DFF",
        }
    }

    /// Number of signal input pins (clock included for flops).
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf | CellKind::ClkBuf => 1,
            CellKind::Nand2 | CellKind::Nor2 | CellKind::And2 | CellKind::Or2 | CellKind::Xor2 => 2,
            CellKind::Aoi21 | CellKind::Oai21 | CellKind::Mux2 => 3,
            CellKind::Dff => 2,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Broad functional class of a cell, used in reports (the paper reports
/// buffer counts separately from total cell counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellClass {
    /// Plain combinational logic.
    Combinational,
    /// Registers.
    Sequential,
    /// Repeaters: buffers and inverters (what Table 2's "# buffers" counts).
    Buffer,
    /// Clock-tree cells.
    ClockTree,
}

/// Drive strength of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Drive {
    /// Unit drive.
    X1,
    /// 2× drive.
    X2,
    /// 4× drive.
    X4,
    /// 8× drive.
    X8,
    /// 16× drive.
    X16,
}

impl Drive {
    /// Every drive, weakest first.
    pub const ALL: [Drive; 5] = [Drive::X1, Drive::X2, Drive::X4, Drive::X8, Drive::X16];

    /// Numeric strength multiplier.
    pub fn factor(self) -> f64 {
        match self {
            Drive::X1 => 1.0,
            Drive::X2 => 2.0,
            Drive::X4 => 4.0,
            Drive::X8 => 8.0,
            Drive::X16 => 16.0,
        }
    }

    /// Next stronger drive, if any.
    pub fn up(self) -> Option<Drive> {
        match self {
            Drive::X1 => Some(Drive::X2),
            Drive::X2 => Some(Drive::X4),
            Drive::X4 => Some(Drive::X8),
            Drive::X8 => Some(Drive::X16),
            Drive::X16 => None,
        }
    }

    /// Next weaker drive, if any.
    pub fn down(self) -> Option<Drive> {
        match self {
            Drive::X1 => None,
            Drive::X2 => Some(Drive::X1),
            Drive::X4 => Some(Drive::X2),
            Drive::X8 => Some(Drive::X4),
            Drive::X16 => Some(Drive::X8),
        }
    }
}

impl fmt::Display for Drive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.factor() as u32)
    }
}

/// Threshold-voltage class of a cell.
///
/// The paper's dual-Vth study (§6.2) uses regular-Vth as the baseline and
/// swaps positive-slack cells to high-Vth: "each HVT cell shows around 30 %
/// slower, yet 50 % lower leakage and 5 % smaller cell power".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VthClass {
    /// Regular threshold voltage (fast, leaky).
    Rvt,
    /// High threshold voltage (≈30 % slower, ≈50 % less leakage).
    Hvt,
}

impl VthClass {
    /// Both classes, RVT first.
    pub const ALL: [VthClass; 2] = [VthClass::Rvt, VthClass::Hvt];

    /// Delay multiplier relative to RVT.
    pub fn delay_factor(self) -> f64 {
        match self {
            VthClass::Rvt => 1.0,
            VthClass::Hvt => 1.3,
        }
    }

    /// Leakage multiplier relative to RVT.
    pub fn leakage_factor(self) -> f64 {
        match self {
            VthClass::Rvt => 1.0,
            VthClass::Hvt => 0.5,
        }
    }

    /// Internal (cell) switching-energy multiplier relative to RVT.
    pub fn energy_factor(self) -> f64 {
        match self {
            VthClass::Rvt => 1.0,
            VthClass::Hvt => 0.95,
        }
    }
}

impl fmt::Display for VthClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VthClass::Rvt => f.write_str("RVT"),
            VthClass::Hvt => f.write_str("HVT"),
        }
    }
}

/// Identifier of a master cell inside a [`CellLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MasterId(pub u32);

/// One characterized library cell.
#[derive(Debug, Clone)]
pub struct MasterCell {
    /// Library name, e.g. `"NAND2X4_HVT"`.
    pub name: String,
    /// Logical function.
    pub kind: CellKind,
    /// Drive strength.
    pub drive: Drive,
    /// Threshold class.
    pub vth: VthClass,
    /// Footprint area in µm².
    pub area_um2: f64,
    /// Cell width in µm (height is the technology row height).
    pub width_um: f64,
    /// Input capacitance per input pin in fF.
    pub input_cap_ff: f64,
    /// Output (drive) resistance in Ω.
    pub output_res_ohm: f64,
    /// Intrinsic (unloaded) delay in ps.
    pub intrinsic_delay_ps: f64,
    /// Internal energy per output toggle in fJ (short-circuit + internal
    /// node charging; what the paper's "cell power" integrates).
    pub internal_energy_fj: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
}

impl MasterCell {
    /// Delay in ps driving `load_ff` of external load.
    #[inline]
    pub fn delay_ps(&self, load_ff: f64) -> f64 {
        self.intrinsic_delay_ps + self.output_res_ohm * load_ff * crate::units::RC_TO_PS
    }

    /// Total input capacitance across all pins in fF.
    pub fn total_input_cap_ff(&self) -> f64 {
        self.input_cap_ff * self.kind.input_count() as f64
    }
}

/// Per-kind electrical profile relative to the X1 RVT inverter.
struct KindProfile {
    area: f64,
    cap: f64,
    res: f64,
    intrinsic: f64,
    energy: f64,
    leak: f64,
}

fn profile(kind: CellKind) -> KindProfile {
    let p = |area, cap, res, intrinsic, energy, leak| KindProfile {
        area,
        cap,
        res,
        intrinsic,
        energy,
        leak,
    };
    match kind {
        CellKind::Inv => p(1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
        CellKind::Buf => p(1.6, 0.9, 1.0, 1.8, 1.8, 1.7),
        CellKind::ClkBuf => p(1.8, 0.95, 0.95, 1.9, 2.0, 1.8),
        CellKind::Nand2 => p(1.4, 1.1, 1.2, 1.3, 1.5, 1.6),
        CellKind::Nor2 => p(1.5, 1.2, 1.4, 1.5, 1.6, 1.7),
        CellKind::And2 => p(1.8, 1.0, 1.1, 1.9, 1.9, 1.9),
        CellKind::Or2 => p(1.9, 1.0, 1.2, 2.0, 2.0, 2.0),
        CellKind::Aoi21 => p(1.9, 1.15, 1.4, 1.7, 1.8, 2.0),
        CellKind::Oai21 => p(1.9, 1.15, 1.4, 1.7, 1.8, 2.0),
        CellKind::Xor2 => p(2.6, 1.3, 1.3, 2.2, 2.4, 2.6),
        CellKind::Mux2 => p(2.4, 1.1, 1.2, 2.0, 2.2, 2.4),
        CellKind::Dff => p(4.5, 1.0, 1.1, 3.2, 4.2, 4.0),
    }
}

/// Electrical base values of the X1 RVT inverter in the default 28 nm
/// library.
mod base {
    /// Area of INVX1 in µm².
    pub const AREA_UM2: f64 = 0.6;
    /// Input pin capacitance of INVX1 in fF.
    pub const CAP_FF: f64 = 0.9;
    /// Output resistance of INVX1 in Ω.
    pub const RES_OHM: f64 = 6000.0;
    /// Intrinsic delay of INVX1 in ps.
    pub const INTRINSIC_PS: f64 = 8.0;
    /// Internal energy per toggle of INVX1 in fJ.
    pub const ENERGY_FJ: f64 = 0.55;
    /// Leakage of INVX1 in µW.
    pub const LEAK_UW: f64 = 0.012;
    /// Row height in µm (duplicated from `Technology::row_height`).
    pub const ROW_HEIGHT_UM: f64 = 1.2;
}

/// A complete standard-cell library.
///
/// # Examples
///
/// ```
/// use foldic_tech::{CellKind, CellLibrary, Drive, VthClass};
///
/// let lib = CellLibrary::cmos28();
/// let inv = lib.get(CellKind::Inv, Drive::X4, VthClass::Rvt);
/// let hvt = lib.get(CellKind::Inv, Drive::X4, VthClass::Hvt);
/// assert!(hvt.leakage_uw < inv.leakage_uw);
/// assert!(hvt.intrinsic_delay_ps > inv.intrinsic_delay_ps);
/// ```
#[derive(Debug, Clone)]
pub struct CellLibrary {
    masters: Vec<MasterCell>,
    index: HashMap<(CellKind, Drive, VthClass), MasterId>,
}

impl CellLibrary {
    /// Builds the default 28 nm-class library: every kind at X1–X16 in both
    /// Vth classes.
    pub fn cmos28() -> Self {
        let mut masters = Vec::new();
        for kind in CellKind::ALL {
            let prof = profile(kind);
            for drive in Drive::ALL {
                let x = drive.factor();
                // Area grows sublinearly with drive (shared wells/rails).
                let area = base::AREA_UM2 * prof.area * (0.45 + 0.55 * x);
                for vth in VthClass::ALL {
                    masters.push(MasterCell {
                        name: format!("{}{}_{vth}", kind.mnemonic(), drive),
                        kind,
                        drive,
                        vth,
                        area_um2: area,
                        width_um: area / base::ROW_HEIGHT_UM,
                        input_cap_ff: base::CAP_FF * prof.cap * x,
                        output_res_ohm: base::RES_OHM * prof.res / x * vth.delay_factor(),
                        intrinsic_delay_ps: base::INTRINSIC_PS
                            * prof.intrinsic
                            * vth.delay_factor(),
                        internal_energy_fj: base::ENERGY_FJ * prof.energy * x * vth.energy_factor(),
                        leakage_uw: base::LEAK_UW * prof.leak * x * vth.leakage_factor(),
                    });
                }
            }
        }
        let mut lib = Self {
            masters,
            index: HashMap::new(),
        };
        lib.rebuild_index();
        lib
    }

    fn rebuild_index(&mut self) {
        self.index = self
            .masters
            .iter()
            .enumerate()
            .map(|(i, m)| ((m.kind, m.drive, m.vth), MasterId(i as u32)))
            .collect();
    }

    /// Number of masters in the library.
    pub fn len(&self) -> usize {
        self.masters.len()
    }

    /// `true` when the library holds no masters.
    pub fn is_empty(&self) -> bool {
        self.masters.is_empty()
    }

    /// Identifier of the `(kind, drive, vth)` master.
    ///
    /// # Panics
    ///
    /// Panics if the combination is missing (cannot happen for libraries
    /// built by [`CellLibrary::cmos28`]).
    pub fn id_of(&self, kind: CellKind, drive: Drive, vth: VthClass) -> MasterId {
        *self
            .index
            .get(&(kind, drive, vth))
            .unwrap_or_else(|| panic!("library is missing {kind}{drive}_{vth}"))
    }

    /// The `(kind, drive, vth)` master.
    pub fn get(&self, kind: CellKind, drive: Drive, vth: VthClass) -> &MasterCell {
        self.master(self.id_of(kind, drive, vth))
    }

    /// The master behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this library.
    pub fn master(&self, id: MasterId) -> &MasterCell {
        &self.masters[id.0 as usize]
    }

    /// The same cell one drive step stronger, if one exists.
    pub fn upsize(&self, id: MasterId) -> Option<MasterId> {
        let m = self.master(id);
        m.drive.up().map(|d| self.id_of(m.kind, d, m.vth))
    }

    /// The same cell one drive step weaker, if one exists.
    pub fn downsize(&self, id: MasterId) -> Option<MasterId> {
        let m = self.master(id);
        m.drive.down().map(|d| self.id_of(m.kind, d, m.vth))
    }

    /// The same cell in the requested Vth class.
    pub fn with_vth(&self, id: MasterId, vth: VthClass) -> MasterId {
        let m = self.master(id);
        self.id_of(m.kind, m.drive, vth)
    }

    /// Applies `f` to every master in place, preserving ids.
    ///
    /// Used by workload generators that rescale the library (e.g. when one
    /// synthetic cell stands for a cluster of real cells). Kind, drive and
    /// Vth must not be changed; only electrical/geometric values.
    pub fn scale_masters(&mut self, mut f: impl FnMut(&mut MasterCell)) {
        for m in &mut self.masters {
            let key = (m.kind, m.drive, m.vth);
            f(m);
            debug_assert_eq!(
                key,
                (m.kind, m.drive, m.vth),
                "scale_masters must not re-type cells"
            );
        }
    }

    /// Iterates over all masters.
    pub fn iter(&self) -> impl Iterator<Item = (MasterId, &MasterCell)> {
        self.masters
            .iter()
            .enumerate()
            .map(|(i, m)| (MasterId(i as u32), m))
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::cmos28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_full_grid() {
        let lib = CellLibrary::cmos28();
        assert_eq!(lib.len(), 12 * 5 * 2);
        for kind in CellKind::ALL {
            for drive in Drive::ALL {
                for vth in VthClass::ALL {
                    let m = lib.get(kind, drive, vth);
                    assert!(m.area_um2 > 0.0 && m.leakage_uw > 0.0);
                }
            }
        }
    }

    #[test]
    fn drive_scaling_monotone() {
        let lib = CellLibrary::cmos28();
        let mut prev_res = f64::INFINITY;
        let mut prev_cap = 0.0;
        let mut prev_area = 0.0;
        for drive in Drive::ALL {
            let m = lib.get(CellKind::Nand2, drive, VthClass::Rvt);
            assert!(m.output_res_ohm < prev_res, "res must fall with drive");
            assert!(m.input_cap_ff > prev_cap, "cap must rise with drive");
            assert!(m.area_um2 > prev_area, "area must rise with drive");
            prev_res = m.output_res_ohm;
            prev_cap = m.input_cap_ff;
            prev_area = m.area_um2;
        }
    }

    #[test]
    fn hvt_deltas_match_paper() {
        let lib = CellLibrary::cmos28();
        for kind in CellKind::ALL {
            let r = lib.get(kind, Drive::X4, VthClass::Rvt);
            let h = lib.get(kind, Drive::X4, VthClass::Hvt);
            // ~30% slower
            assert!((h.intrinsic_delay_ps / r.intrinsic_delay_ps - 1.3).abs() < 1e-9);
            // 50% lower leakage
            assert!((h.leakage_uw / r.leakage_uw - 0.5).abs() < 1e-9);
            // 5% lower internal energy
            assert!((h.internal_energy_fj / r.internal_energy_fj - 0.95).abs() < 1e-9);
            // same footprint
            assert_eq!(h.area_um2, r.area_um2);
        }
    }

    #[test]
    fn resize_navigation() {
        let lib = CellLibrary::cmos28();
        let x4 = lib.id_of(CellKind::Buf, Drive::X4, VthClass::Rvt);
        let x8 = lib.upsize(x4).unwrap();
        assert_eq!(lib.master(x8).drive, Drive::X8);
        assert_eq!(lib.downsize(x8), Some(x4));
        let x16 = lib.id_of(CellKind::Buf, Drive::X16, VthClass::Rvt);
        assert!(lib.upsize(x16).is_none());
        let x1 = lib.id_of(CellKind::Buf, Drive::X1, VthClass::Rvt);
        assert!(lib.downsize(x1).is_none());
    }

    #[test]
    fn delay_model_increases_with_load() {
        let lib = CellLibrary::cmos28();
        let m = lib.get(CellKind::Inv, Drive::X1, VthClass::Rvt);
        assert!(m.delay_ps(10.0) > m.delay_ps(1.0));
        // FO4-ish delay in tens of ps: sanity window
        let fo4 = m.delay_ps(4.0 * m.input_cap_ff);
        assert!(fo4 > 5.0 && fo4 < 100.0, "FO4 = {fo4} ps");
    }
}
