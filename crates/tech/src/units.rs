//! Unit conventions and conversion constants.
//!
//! The crate-level documentation lists the canonical units. The constants
//! here convert between natural combinations of those units.

/// Converts a product `R[Ω] × C[fF]` into picoseconds.
///
/// `1 Ω · 1 fF = 10⁻¹⁵ s·Ω/Ω = 10⁻³ ps`.
///
/// # Examples
///
/// ```
/// use foldic_tech::units::RC_TO_PS;
/// // A 1 kΩ driver into 100 fF: 100 ps time constant.
/// assert_eq!(1000.0 * 100.0 * RC_TO_PS, 100.0);
/// ```
pub const RC_TO_PS: f64 = 1e-3;

/// Converts µW to W.
pub const UW_TO_W: f64 = 1e-6;

/// Converts µm to mm.
pub const UM_TO_MM: f64 = 1e-3;

/// Converts µm² to mm².
pub const UM2_TO_MM2: f64 = 1e-6;

/// Dynamic switching energy in fJ for a capacitance in fF charged to `vdd`.
///
/// `E = C · V²` (the full `CV²` drawn from the supply per low→high
/// transition; the standard α·f·C·V² power formulation folds the ½ into
/// the activity definition).
#[inline]
pub fn switching_energy_fj(cap_ff: f64, vdd: f64) -> f64 {
    cap_ff * vdd * vdd
}

/// Average switching power in µW for an energy-per-toggle in fJ, a clock in
/// GHz and a toggle activity `alpha` (expected toggles per cycle).
#[inline]
pub fn switching_power_uw(energy_fj: f64, clock_ghz: f64, alpha: f64) -> f64 {
    energy_fj * clock_ghz * alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_and_power_composition() {
        // 100 fF at 0.9 V toggled every other cycle at 0.5 GHz:
        let e = switching_energy_fj(100.0, 0.9);
        assert!((e - 81.0).abs() < 1e-12);
        let p = switching_power_uw(e, 0.5, 0.5);
        assert!((p - 20.25).abs() < 1e-12);
    }

    #[test]
    fn rc_constant_sane() {
        // 50 Ω TSV driving 40 fF ≈ 2 ps.
        assert!((50.0 * 40.0 * RC_TO_PS - 2.0).abs() < 1e-12);
    }
}
