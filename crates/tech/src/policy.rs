//! Bonding styles and the routing-layer usage policy of §2.2 / §6.1.

use foldic_geom::Tier;
use std::fmt;

/// Die bonding style for the two-tier stack (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BondingStyle {
    /// Face-to-back: TSVs through the top die's substrate.
    FaceToBack,
    /// Face-to-face: F2F vias between the two top metals.
    FaceToFace,
}

impl BondingStyle {
    /// Both styles, F2B first (the paper's baseline).
    pub const ALL: [BondingStyle; 2] = [BondingStyle::FaceToBack, BondingStyle::FaceToFace];

    /// `true` for face-to-face.
    pub fn is_f2f(self) -> bool {
        matches!(self, BondingStyle::FaceToFace)
    }
}

impl fmt::Display for BondingStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BondingStyle::FaceToBack => f.write_str("F2B"),
            BondingStyle::FaceToFace => f.write_str("F2F"),
        }
    }
}

/// Routing-layer budget decisions.
///
/// The paper's rules:
///
/// * Block-level (§2.2): the SPC — the most routing-hungry block — uses all
///   nine metal layers; every other block uses seven, freeing M8–M9 for
///   over-the-block routing at chip level.
/// * Folded blocks under F2B (§6.1): the bottom die of a folded block uses
///   up to M7 (TSV landing pad at M1); the top die uses up to M9 (landing
///   pad at M9). SPC is the exception and takes M9 on both dies.
/// * Folded blocks under F2F (§6.1): the F2F via sits on top of M9, so both
///   dies route through M9 and the folded block blocks over-the-block
///   routing on **both** dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingPolicy {
    /// Highest metal layer for ordinary (non-SPC) unfolded blocks.
    pub block_max_layer: usize,
    /// Highest metal layer for routing-hungry blocks (SPC).
    pub hungry_max_layer: usize,
}

impl RoutingPolicy {
    /// The paper's policy: M7 for ordinary blocks, M9 for SPC.
    pub fn dac14() -> Self {
        Self {
            block_max_layer: 7,
            hungry_max_layer: 9,
        }
    }

    /// Maximum routing layer inside a block.
    ///
    /// `routing_hungry` marks SPC-class blocks; `folded_tier` is `Some`
    /// with the tier when the block is one die of a folded (split) block.
    pub fn max_layer(
        &self,
        routing_hungry: bool,
        bonding: BondingStyle,
        folded_tier: Option<Tier>,
    ) -> usize {
        if routing_hungry {
            return self.hungry_max_layer;
        }
        match (bonding, folded_tier) {
            // F2F folded blocks consume the full stack on both dies.
            (BondingStyle::FaceToFace, Some(_)) => self.hungry_max_layer,
            // F2B folded: top die routes to M9 (pad at M9), bottom to M7.
            (BondingStyle::FaceToBack, Some(Tier::Top)) => self.hungry_max_layer,
            (BondingStyle::FaceToBack, Some(Tier::Bottom)) => self.block_max_layer,
            // Unfolded block.
            (_, None) => self.block_max_layer,
        }
    }

    /// `true` when the block leaves M8–M9 free for over-the-block routing
    /// at chip level on the given tier.
    pub fn allows_over_the_block(
        &self,
        routing_hungry: bool,
        bonding: BondingStyle,
        folded_tier: Option<Tier>,
    ) -> bool {
        self.max_layer(routing_hungry, bonding, folded_tier) < self.hungry_max_layer
    }
}

impl Default for RoutingPolicy {
    fn default() -> Self {
        Self::dac14()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinary_blocks_leave_top_layers_free() {
        let p = RoutingPolicy::dac14();
        assert_eq!(p.max_layer(false, BondingStyle::FaceToBack, None), 7);
        assert!(p.allows_over_the_block(false, BondingStyle::FaceToBack, None));
    }

    #[test]
    fn spc_always_takes_nine_layers() {
        let p = RoutingPolicy::dac14();
        for bonding in BondingStyle::ALL {
            for tier in [None, Some(Tier::Top), Some(Tier::Bottom)] {
                assert_eq!(p.max_layer(true, bonding, tier), 9);
                assert!(!p.allows_over_the_block(true, bonding, tier));
            }
        }
    }

    #[test]
    fn f2b_folded_asymmetric_layers() {
        let p = RoutingPolicy::dac14();
        assert_eq!(
            p.max_layer(false, BondingStyle::FaceToBack, Some(Tier::Top)),
            9
        );
        assert_eq!(
            p.max_layer(false, BondingStyle::FaceToBack, Some(Tier::Bottom)),
            7
        );
        // the bottom die still allows over-the-block routing
        assert!(p.allows_over_the_block(false, BondingStyle::FaceToBack, Some(Tier::Bottom)));
    }

    #[test]
    fn f2f_folded_blocks_both_dies() {
        let p = RoutingPolicy::dac14();
        for t in [Tier::Top, Tier::Bottom] {
            assert_eq!(p.max_layer(false, BondingStyle::FaceToFace, Some(t)), 9);
            assert!(!p.allows_over_the_block(false, BondingStyle::FaceToFace, Some(t)));
        }
    }
}
