//! Lightweight per-stage instrumentation.
//!
//! Flow code wraps each stage in [`stage`] (or a [`StageTimer`] guard)
//! and reports iteration counts through [`add_iters`]; the pool feeds
//! queue statistics in through [`note_run`]. Recording is off by default
//! and costs one atomic load per hook when disabled, so the hooks stay in
//! release builds. `repro --profile` enables it and prints the table.
//!
//! Stage names nest: a stage started while another is active records
//! under `outer/inner`, so per-block flow stages inside a parallel
//! full-chip run stay distinguishable.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::RunStats;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Report>> = Mutex::new(None);

thread_local! {
    static ACTIVE: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Accumulated numbers for one stage name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Times the stage ran.
    pub calls: u64,
    /// Total wall time across calls.
    pub wall: Duration,
    /// Iterations reported by the stage's inner loops via [`add_iters`].
    pub iters: u64,
}

/// A profiling report: per-stage numbers plus pool scheduling stats.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-stage accumulators, keyed by (possibly nested) stage name.
    pub stages: BTreeMap<String, StageStats>,
    /// Total jobs executed by the pool while profiling was on.
    pub jobs: usize,
    /// Total steals across pool runs.
    pub steals: usize,
    /// Largest queue backlog any pool run observed.
    pub peak_queue_depth: usize,
    /// Number of pool fan-outs.
    pub runs: usize,
}

impl Report {
    fn merge_stage(&mut self, name: String, wall: Duration, iters: u64) {
        let e = self.stages.entry(name).or_default();
        e.calls += 1;
        e.wall += wall;
        e.iters += iters;
    }
}

impl Report {
    /// Total wall time across *top-level* stages (nested `outer/inner`
    /// entries already count inside their parent's wall). This is the
    /// denominator of the `share` column.
    pub fn total_wall(&self) -> Duration {
        self.stages
            .iter()
            .filter(|(name, _)| !name.contains('/'))
            .map(|(_, s)| s.wall)
            .sum()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>8} {:>12} {:>8} {:>14} {:>12}",
            "stage", "calls", "wall ms", "share", "iters", "ms/call"
        )?;
        let total = self.total_wall().as_secs_f64().max(1e-12);
        for (name, s) in &self.stages {
            let ms = s.wall.as_secs_f64() * 1e3;
            writeln!(
                f,
                "{:<28} {:>8} {:>12.2} {:>7.1}% {:>14} {:>12.3}",
                name,
                s.calls,
                ms,
                s.wall.as_secs_f64() / total * 100.0,
                s.iters,
                ms / s.calls.max(1) as f64
            )?;
        }
        writeln!(
            f,
            "pool: {} jobs over {} fan-outs, {} steals ({:.3} steals/job), peak queue depth {}",
            self.jobs,
            self.runs,
            self.steals,
            self.steals as f64 / self.jobs.max(1) as f64,
            self.peak_queue_depth
        )
    }
}

/// Turns recording on or off. Turning it on clears the accumulator.
pub fn set_enabled(on: bool) {
    if on {
        *GLOBAL.lock().unwrap() = Some(Report::default());
    }
    ENABLED.store(on, Ordering::Release);
}

/// `true` while recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Takes the accumulated report, leaving an empty one behind.
pub fn take() -> Report {
    GLOBAL
        .lock()
        .unwrap()
        .replace(Report::default())
        .unwrap_or_default()
}

/// Runs `f` as a named stage, recording wall time when profiling is on
/// and a trace span when tracing is on.
pub fn stage<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    if !is_enabled() && !foldic_obs::trace::is_enabled() {
        return f();
    }
    let _guard = StageTimer::start(name);
    f()
}

/// Adds `n` iterations to the innermost active stage (no-op when
/// profiling is off or no stage is active). Call once per entry point
/// with a count — not once per inner-loop iteration.
pub fn add_iters(n: u64) {
    if !is_enabled() || n == 0 {
        return;
    }
    let name = ACTIVE.with(|a| a.borrow().join("/"));
    if name.is_empty() {
        return;
    }
    if let Some(report) = GLOBAL.lock().unwrap().as_mut() {
        report.stages.entry(name).or_default().iters += n;
    }
}

/// Feeds one pool run's scheduling stats into the report.
pub(crate) fn note_run(stats: &RunStats) {
    if !is_enabled() {
        return;
    }
    if let Some(report) = GLOBAL.lock().unwrap().as_mut() {
        report.jobs += stats.jobs;
        report.steals += stats.steals;
        report.peak_queue_depth = report.peak_queue_depth.max(stats.peak_queue_depth);
        report.runs += 1;
    }
}

/// RAII stage timer: records on drop, so early returns and panics inside
/// the stage still count. Each stage doubles as a trace span, so
/// `--trace` output shows the same names as `--profile`.
pub struct StageTimer {
    name: &'static str,
    start: Instant,
    _span: foldic_obs::trace::SpanGuard,
}

impl StageTimer {
    /// Starts a stage; it ends when the guard drops.
    pub fn start(name: &'static str) -> Self {
        ACTIVE.with(|a| a.borrow_mut().push(name));
        Self {
            name,
            start: Instant::now(),
            _span: foldic_obs::trace::SpanGuard::enter(name),
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let wall = self.start.elapsed();
        let full = ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            let full = a.join("/");
            debug_assert_eq!(a.last().copied(), Some(self.name));
            a.pop();
            full
        });
        // stage() also opens timers for trace-only runs; only feed the
        // profile report while profiling itself is on
        if is_enabled() {
            if let Some(report) = GLOBAL.lock().unwrap().as_mut() {
                report.merge_stage(full, wall, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profile registry is global; run the scenarios in one test so
    // parallel test execution cannot interleave enable/take windows.
    #[test]
    fn records_stages_iters_and_nesting() {
        set_enabled(true);
        stage("outer", || {
            add_iters(3);
            stage("inner", || add_iters(2));
        });
        stage("outer", || add_iters(1));
        let report = take();
        set_enabled(false);

        let outer = report.stages.get("outer").expect("outer recorded");
        assert_eq!(outer.calls, 2);
        assert_eq!(outer.iters, 4);
        let inner = report.stages.get("outer/inner").expect("nested name");
        assert_eq!(inner.calls, 1);
        assert_eq!(inner.iters, 2);
        let rendered = report.to_string();
        assert!(rendered.contains("outer/inner"));

        // disabled => nothing recorded, stage still runs
        let mut ran = false;
        stage("ghost", || ran = true);
        assert!(ran);
        assert!(take().stages.is_empty());
    }

    #[test]
    fn report_header_has_share_column_and_steal_rate() {
        let mut report = Report::default();
        report.merge_stage("place".to_owned(), Duration::from_millis(30), 5);
        report.merge_stage("route".to_owned(), Duration::from_millis(10), 0);
        report.merge_stage("place/inner".to_owned(), Duration::from_millis(5), 0);
        report.jobs = 8;
        report.steals = 2;
        let rendered = report.to_string();
        let header = rendered.lines().next().unwrap();
        for col in ["stage", "calls", "wall ms", "share", "iters", "ms/call"] {
            assert!(header.contains(col), "header missing {col:?}: {header}");
        }
        // shares are percentages of top-level wall (30 + 10 ms)
        let place = rendered.lines().find(|l| l.starts_with("place ")).unwrap();
        assert!(place.contains("75.0%"), "{place}");
        assert!(
            rendered.contains("0.250 steals/job"),
            "pool line reports steals/job: {rendered}"
        );
    }

    #[test]
    fn pool_stats_feed_the_report() {
        set_enabled(true);
        let _ = crate::par_map(4, (0..32).collect::<Vec<usize>>(), |_, x| x + 1);
        let report = take();
        set_enabled(false);
        assert_eq!(report.jobs, 32);
        assert_eq!(report.runs, 1);
    }
}
