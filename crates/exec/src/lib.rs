#![warn(missing_docs)]
//! Deterministic work-stealing parallel execution engine.
//!
//! The paper's study is embarrassingly parallel: every table and figure
//! runs the §2.2 block flow over many independent (block, tier-count,
//! bonding-style) configurations. This crate fans those jobs out over a
//! small work-stealing thread pool built on [`std::thread::scope`] —
//! zero external dependencies, so the workspace stays offline-first.
//!
//! # Determinism contract
//!
//! [`par_map`] returns results **in submission order**, regardless of
//! which worker finished which job first. Combined with per-job RNG
//! streams (each job seeds its own generator from a stable
//! `(experiment, block, config)` key via `foldic_rng::derive_seed`),
//! parallel output is byte-identical to serial output. `threads = 1`
//! runs jobs inline on the caller's thread in submission order — the
//! reference against which the parallel path is tested.
//!
//! # Panic safety
//!
//! A panicking job never deadlocks the pool: the panic is caught, the
//! remaining jobs still run, and **every** payload is recorded at its
//! job's slot. [`par_map_caught`] exposes the per-job outcomes as
//! `Result<R, JobPanic>` — the API fault-tolerant callers build on —
//! while [`par_map`] keeps the fail-fast contract by re-raising the
//! payload of the **lowest-index** panicking job (deterministic across
//! thread counts, unlike first-to-finish) after the pool drains.
//!
//! # Instrumentation
//!
//! The [`profile`] module wraps flow stages (place / route / STA / opt /
//! power) in lightweight timers and iteration counters; the pool feeds
//! queue-depth and steal statistics into the same report. See
//! [`RunStats`] for the per-run numbers exposed programmatically.

pub mod profile;

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Statistics of one [`par_map_stats`] run, exposed so benches and tests
/// can assert on scheduling behavior.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of jobs executed (each exactly once).
    pub jobs: usize,
    /// Worker threads used (1 = inline serial execution).
    pub threads: usize,
    /// Jobs taken from another worker's queue.
    pub steals: usize,
    /// Largest backlog any worker's queue reached, sampled at dequeue.
    pub peak_queue_depth: usize,
    /// Wall time of the whole fan-out.
    pub wall: Duration,
}

/// Resolves a requested worker count.
///
/// `Some(n > 0)` wins; otherwise the `FOLDIC_THREADS` environment
/// variable; otherwise [`std::thread::available_parallelism`].
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        if n > 0 {
            return n;
        }
    }
    if let Ok(v) = std::env::var("FOLDIC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A panic captured at the job boundary by [`par_map_caught`] /
/// [`run_caught`].
pub struct JobPanic {
    /// Submission index of the job that panicked.
    pub index: usize,
    /// The raw panic payload, as handed to `catch_unwind`.
    pub payload: Box<dyn std::any::Any + Send>,
}

impl JobPanic {
    /// A human-readable form of the payload (`&str` / `String` payloads
    /// verbatim, anything else a placeholder). Typed payloads should be
    /// recovered from [`JobPanic::payload`] by downcast instead.
    pub fn message(&self) -> String {
        self.payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| self.payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned())
    }
}

impl std::fmt::Debug for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPanic")
            .field("index", &self.index)
            .field("message", &self.message())
            .finish()
    }
}

/// Runs one closure behind the same unwind boundary the pool uses,
/// returning the panic (if any) instead of propagating it.
///
/// # Errors
///
/// Returns the captured payload (index 0) when `f` panics.
pub fn run_caught<R>(f: impl FnOnce() -> R) -> Result<R, JobPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| JobPanic { index: 0, payload })
}

/// Maps `f` over `items` on `threads` workers, returning results in
/// submission order. See the crate docs for the determinism and panic
/// contracts.
pub fn par_map<I, R, F>(threads: usize, items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    par_map_stats(threads, items, f).0
}

/// [`par_map`] variant that also returns the run's [`RunStats`].
///
/// Panic contract: if any job panics, every job still runs, then the
/// payload of the lowest-index panicking job is re-raised here.
pub fn par_map_stats<I, R, F>(threads: usize, items: Vec<I>, f: F) -> (Vec<R>, RunStats)
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    let (caught, stats) = par_map_caught_stats(threads, items, f);
    let results = caught
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => resume_unwind(p.payload),
        })
        .collect();
    (results, stats)
}

/// Outcome of one job under cooperative cancellation
/// ([`run_cancellable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome<R, I> {
    /// The job ran to completion.
    Done(R),
    /// The cancel flag was set before the job body started; the input is
    /// handed back untouched so the caller can degrade or requeue it
    /// explicitly — no item is ever silently dropped.
    Skipped(I),
}

impl<R, I> JobOutcome<R, I> {
    /// The result, when the job ran.
    pub fn done(self) -> Option<R> {
        match self {
            JobOutcome::Done(r) => Some(r),
            JobOutcome::Skipped(_) => None,
        }
    }
}

/// [`par_map`] with cooperative cancellation: workers observe `cancel`
/// between jobs — the flag is checked on the worker thread immediately
/// before each job body — so once it is set, every not-yet-started job
/// comes back as [`JobOutcome::Skipped`] with its input intact (still in
/// submission order). In-flight jobs are *not* interrupted; they are
/// expected to poll the same flag at their own coarse-grained
/// checkpoints (see `foldic-fault::deadline`).
///
/// The flag is a plain [`AtomicBool`] rather than a token type so this
/// crate stays dependency-free; `CancelToken::flag()` hands one over.
/// The panic contract matches [`par_map`]: every job runs (or is
/// skipped), then the lowest-index panic is re-raised.
pub fn run_cancellable<I, R, F>(
    threads: usize,
    items: Vec<I>,
    cancel: &std::sync::atomic::AtomicBool,
    f: F,
) -> Vec<JobOutcome<R, I>>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    par_map(threads, items, |index, item| {
        if cancel.load(Ordering::Relaxed) {
            JobOutcome::Skipped(item)
        } else {
            JobOutcome::Done(f(index, item))
        }
    })
}

/// [`par_map`] variant for fault-tolerant callers: panics are captured
/// per job, so one failing job cannot take down its siblings' results.
pub fn par_map_caught<I, R, F>(threads: usize, items: Vec<I>, f: F) -> Vec<Result<R, JobPanic>>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    par_map_caught_stats(threads, items, f).0
}

/// [`par_map_caught`] variant that also returns the run's [`RunStats`].
pub fn par_map_caught_stats<I, R, F>(
    threads: usize,
    items: Vec<I>,
    f: F,
) -> (Vec<Result<R, JobPanic>>, RunStats)
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    let t0 = Instant::now();
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    let mut stats = RunStats {
        jobs: n,
        threads: workers,
        ..RunStats::default()
    };

    if workers <= 1 {
        let results = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                catch_unwind(AssertUnwindSafe(|| {
                    let _span = foldic_obs::span!("job", idx = i, worker = 0usize);
                    f(i, item)
                }))
                .map_err(|payload| JobPanic { index: i, payload })
            })
            .collect();
        stats.wall = t0.elapsed();
        profile::note_run(&stats);
        return (results, stats);
    }

    // Capture the submitting span so jobs on pool workers (whose span
    // stacks start empty) still attribute to it, and the fan-out
    // timestamp so each job span carries its queue wait (`wait_us`) —
    // scheduling delay stays distinguishable from execution time.
    let parent_span = foldic_obs::trace::current_span();
    let fanout_ns = foldic_obs::trace::now_ns();

    // Per-worker deques, filled round-robin so early jobs start early on
    // every worker. A worker pops its own queue from the front and steals
    // from the back of the longest other queue.
    let queues: Vec<Mutex<VecDeque<(usize, I)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers].lock().unwrap().push_back((i, item));
    }

    let results: Mutex<Vec<Option<Result<R, JobPanic>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let steals = AtomicUsize::new(0);
    let peak_depth = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let steals = &steals;
            let peak_depth = &peak_depth;
            let f = &f;
            scope.spawn(move || loop {
                // own queue first
                let mut job = {
                    let mut q = queues[me].lock().unwrap();
                    let depth = q.len();
                    peak_depth.fetch_max(depth, Ordering::Relaxed);
                    q.pop_front()
                };
                // then steal from the most loaded victim
                if job.is_none() {
                    let victim = (0..workers)
                        .filter(|&w| w != me)
                        .max_by_key(|&w| queues[w].lock().unwrap().len());
                    if let Some(v) = victim {
                        job = queues[v].lock().unwrap().pop_back();
                        if let Some((idx, _)) = &job {
                            steals.fetch_add(1, Ordering::Relaxed);
                            if foldic_obs::trace::is_enabled() {
                                foldic_obs::trace::instant(
                                    "steal",
                                    vec![
                                        ("worker", me.into()),
                                        ("victim", v.into()),
                                        ("idx", (*idx).into()),
                                    ],
                                );
                            }
                        }
                    }
                }
                let Some((idx, item)) = job else {
                    // Every queue was empty at the moment we looked. Jobs
                    // cannot spawn jobs, so the set is fixed and emptiness
                    // is terminal for this worker.
                    break;
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    foldic_obs::trace::run_with_parent(parent_span, || {
                        let _span = foldic_obs::span!(
                            "job",
                            idx = idx,
                            worker = me,
                            wait_us = foldic_obs::trace::now_ns().saturating_sub(fanout_ns) / 1_000,
                        );
                        f(idx, item)
                    })
                }))
                .map_err(|payload| JobPanic {
                    index: idx,
                    payload,
                });
                results.lock().unwrap()[idx] = Some(outcome);
            });
        }
    });

    stats.steals = steals.into_inner();
    stats.peak_queue_depth = peak_depth.into_inner();
    stats.wall = t0.elapsed();
    let results = results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every job ran exactly once"))
        .collect();
    profile::note_run(&stats);
    (results, stats)
}

/// Maps `f` over mutable borrows in parallel.
///
/// Convenience wrapper for the common "run the flow on every block in
/// place" pattern: distinct `&mut T` are disjoint, so this is plain safe
/// [`par_map`] over the borrow vector.
pub fn par_map_mut<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    par_map(threads, items.iter_mut().collect(), f)
}

/// A monotonically-increasing global counter handed to jobs that need a
/// cheap unique id without threading state through closures.
pub fn next_job_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_submission_order() {
        let out = par_map(4, (0..64).collect::<Vec<i64>>(), |i, x| {
            assert_eq!(i as i64, x);
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..200).collect();
        let f = |_: usize, x: u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        let serial = par_map(1, items.clone(), f);
        let parallel = par_map(8, items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn stats_count_jobs() {
        let (_, stats) = par_map_stats(4, (0..40).collect::<Vec<usize>>(), |_, x| x);
        assert_eq!(stats.jobs, 40);
        assert_eq!(stats.threads, 4);
        assert!(stats.peak_queue_depth >= 1);
    }

    #[test]
    fn par_map_mut_mutates_in_place() {
        let mut v: Vec<usize> = (0..32).collect();
        let doubled = par_map_mut(4, &mut v, |_, x| {
            *x *= 2;
            *x
        });
        assert_eq!(v, (0..32).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(doubled, v);
    }

    #[test]
    fn caught_map_records_every_outcome() {
        for threads in [1, 4] {
            let out = par_map_caught(threads, (0..16).collect::<Vec<usize>>(), |_, x| {
                if x % 5 == 3 {
                    panic!("job {x} failed");
                }
                x * 10
            });
            assert_eq!(out.len(), 16);
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, i, "threads={threads}");
                    assert_eq!(p.message(), format!("job {i} failed"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn par_map_reraises_lowest_index_panic() {
        for threads in [1, 4] {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                par_map(threads, (0..32).collect::<Vec<usize>>(), |_, x| {
                    if x == 7 || x == 21 {
                        panic!("boom {x}");
                    }
                    x
                })
            }))
            .unwrap_err();
            let msg = caught.downcast_ref::<String>().cloned().unwrap();
            assert_eq!(msg, "boom 7", "threads={threads}: deterministic re-raise");
        }
    }

    #[test]
    fn run_caught_returns_value_or_payload() {
        assert_eq!(run_caught(|| 5).unwrap(), 5);
        let p = run_caught(|| -> u8 { panic!("solo") }).unwrap_err();
        assert_eq!(p.message(), "solo");
        // typed payloads survive for downcast by the caller
        let p = run_caught(|| std::panic::panic_any(42usize)).unwrap_err();
        assert_eq!(p.payload.downcast_ref::<usize>(), Some(&42));
        assert_eq!(p.message(), "non-string panic payload");
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = par_map(4, Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn pre_cancelled_run_skips_every_job_in_order() {
        use std::sync::atomic::AtomicBool;
        for threads in [1, 4] {
            let cancel = AtomicBool::new(true);
            let out = run_cancellable(threads, (0..12).collect::<Vec<usize>>(), &cancel, |_, x| {
                x * 2
            });
            assert_eq!(out.len(), 12, "threads={threads}");
            for (i, o) in out.into_iter().enumerate() {
                assert_eq!(o, JobOutcome::Skipped(i), "threads={threads}");
            }
        }
    }

    #[test]
    fn cancellation_mid_run_skips_the_remaining_jobs() {
        use std::sync::atomic::AtomicBool;
        // inline (threads=1) runs jobs strictly in order, so cancelling
        // inside job 2 deterministically skips jobs 3 and up
        let cancel = AtomicBool::new(false);
        let out = run_cancellable(1, (0..8).collect::<Vec<usize>>(), &cancel, |i, x| {
            if i == 2 {
                cancel.store(true, Ordering::Relaxed);
            }
            x * 10
        });
        for (i, o) in out.into_iter().enumerate() {
            if i <= 2 {
                assert_eq!(o, JobOutcome::Done(i * 10));
                assert_eq!(o.done(), Some(i * 10));
            } else {
                assert_eq!(o, JobOutcome::Skipped(i));
                assert_eq!(o.done(), None);
            }
        }
    }

    #[test]
    fn uncancelled_run_matches_par_map() {
        use std::sync::atomic::AtomicBool;
        let cancel = AtomicBool::new(false);
        let out = run_cancellable(4, (0..32).collect::<Vec<u64>>(), &cancel, |_, x| x + 1);
        let expect: Vec<JobOutcome<u64, u64>> = (0..32).map(|x| JobOutcome::Done(x + 1)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pool_jobs_attribute_to_the_submitting_span() {
        use foldic_obs::trace;
        trace::set_enabled(true);
        let submit_id = {
            let submit = foldic_obs::span!("fanout_test");
            let id = submit.id().unwrap();
            let out = par_map(4, (0..16).collect::<Vec<usize>>(), |_, x| x * 3);
            assert_eq!(out, (0..16).map(|x| x * 3).collect::<Vec<_>>());
            id
        };
        trace::set_enabled(false);
        let events = trace::take_events();
        // Other tests may run par_map concurrently; only count jobs that
        // claim *our* span as parent.
        let mine: Vec<_> = events
            .iter()
            .filter(|e| {
                e.name == "job" && e.kind == trace::EventKind::Begin && e.parent == Some(submit_id)
            })
            .collect();
        assert_eq!(mine.len(), 16, "every pool job inherits the fan-out span");
        // jobs really ran on pool workers, not the submitting thread
        let submit_tid = events
            .iter()
            .find(|e| e.name == "fanout_test")
            .map(|e| e.tid)
            .unwrap();
        assert!(mine.iter().all(|e| e.tid != submit_tid));
    }
}
