//! Property tests of the work-stealing engine's contract:
//!
//! * every submitted job executes exactly once, for any thread count;
//! * results come back in submission order regardless of scheduling;
//! * a panicking job propagates after the pool drains — no deadlock, and
//!   the surviving jobs still ran;
//! * output is identical for every thread count (the determinism
//!   guarantee the experiments build on).
//!
//! Job durations are randomized from the workspace's seeded RNG so the
//! schedule varies across cases while each failure stays reproducible.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng_for(test: &str, case: u64) -> StdRng {
    StdRng::seed_from_u64(rand::derive_seed(&[
        "exec-properties",
        test,
        &case.to_string(),
    ]))
}

/// Sleep long enough to force real interleaving, short enough to keep the
/// suite fast.
fn jitter(rng: &mut StdRng) -> Duration {
    Duration::from_micros(rng.gen_range(0..800u64))
}

#[test]
fn every_job_runs_exactly_once() {
    for case in 0..8u64 {
        let mut rng = rng_for("exactly-once", case);
        let threads = rng.gen_range(1..9usize);
        let jobs = rng.gen_range(0..65usize);
        let delays: Vec<Duration> = (0..jobs).map(|_| jitter(&mut rng)).collect();
        let counters: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();
        let out = foldic_exec::par_map(threads, (0..jobs).collect(), |_, i: usize| {
            std::thread::sleep(delays[i]);
            counters[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out.len(), jobs, "case {case}");
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "case {case}: job {i} run count"
            );
        }
    }
}

#[test]
fn results_preserve_submission_order() {
    for case in 0..8u64 {
        let mut rng = rng_for("order", case);
        let threads = rng.gen_range(2..9usize);
        let jobs = rng.gen_range(1..80usize);
        // reverse-biased delays so late submissions tend to finish first
        let delays: Vec<Duration> = (0..jobs)
            .map(|i| jitter(&mut rng) + Duration::from_micros(((jobs - i) * 20) as u64))
            .collect();
        let out = foldic_exec::par_map(threads, (0..jobs).collect(), |idx, i: usize| {
            std::thread::sleep(delays[i]);
            (idx, i * 3)
        });
        for (k, (idx, v)) in out.into_iter().enumerate() {
            assert_eq!(idx, k, "case {case}: index passed to job");
            assert_eq!(v, k * 3, "case {case}: slot {k} holds job {k}'s result");
        }
    }
}

#[test]
fn panicking_job_does_not_deadlock_the_pool() {
    for case in 0..4u64 {
        let mut rng = rng_for("panic", case);
        let threads = rng.gen_range(2..7usize);
        let jobs = 24usize;
        let victim = rng.gen_range(0..jobs);
        let delays: Vec<Duration> = (0..jobs).map(|_| jitter(&mut rng)).collect();
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            foldic_exec::par_map(threads, (0..jobs).collect(), |_, i: usize| {
                std::thread::sleep(delays[i]);
                if i == victim {
                    panic!("job {i} exploded");
                }
                ran.fetch_add(1, Ordering::SeqCst);
                i
            })
        }));
        // the panic propagates to the caller (after the pool drained)...
        assert!(result.is_err(), "case {case}: panic must propagate");
        // ...and every other job still executed
        assert_eq!(
            ran.load(Ordering::SeqCst),
            jobs - 1,
            "case {case}: surviving jobs all ran"
        );
    }
}

#[test]
fn output_is_identical_for_every_thread_count() {
    for case in 0..4u64 {
        let mut rng = rng_for("thread-count", case);
        let jobs = rng.gen_range(1..48usize);
        let delays: Vec<Duration> = (0..jobs).map(|_| jitter(&mut rng)).collect();
        // each job owns a stream derived from a stable per-job key, the
        // pattern every parallel experiment uses
        let work = |_: usize, i: usize| {
            std::thread::sleep(delays[i]);
            let mut r = StdRng::seed_from_u64(rand::derive_seed(&[
                "thread-count-job",
                &case.to_string(),
                &i.to_string(),
            ]));
            (0..16).map(|_| r.gen_range(0..1_000_000u64)).sum::<u64>()
        };
        let serial = foldic_exec::par_map(1, (0..jobs).collect(), work);
        for threads in [2, 4, 8] {
            let parallel = foldic_exec::par_map(threads, (0..jobs).collect(), work);
            assert_eq!(serial, parallel, "case {case}: threads={threads}");
        }
    }
}

#[test]
fn par_map_mut_touches_each_item_exactly_once() {
    for case in 0..4u64 {
        let mut rng = rng_for("mut", case);
        let threads = rng.gen_range(1..9usize);
        let n = rng.gen_range(1..64usize);
        let mut items: Vec<u64> = (0..n as u64).collect();
        let sums = foldic_exec::par_map_mut(threads, &mut items, |i, x| {
            *x += 1_000;
            *x + i as u64
        });
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, i as u64 + 1_000, "case {case}: item {i} mutated once");
        }
        assert_eq!(sums.len(), n, "case {case}");
    }
}
