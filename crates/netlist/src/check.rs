//! Structural invariant checking for netlists and physical validation
//! for blocks.
//!
//! [`Netlist::check`] guards the connectivity invariants the flow
//! assumes; [`Block::validate`] adds the physical preconditions —
//! sane outline, placeable utilization, ports inside the outline, tier
//! assignments consistent with the fold state — that the placer and
//! router would otherwise only discover as panics deep inside a stage.
//! The fault-tolerant flow runs both at entry and maps violations to a
//! non-recoverable `Invalid` error (retrying identical bad input is
//! pointless).

use crate::block::{Block, PortDir};
use crate::netlist::{Netlist, PinRef};
use crate::stats::NetlistStats;
use foldic_geom::Tier;
use foldic_tech::Technology;
use std::fmt;

/// Widest block aspect ratio (long side over short side) the placer
/// handles gracefully. T2 blocks are near-square; even a folded half
/// stays far below this.
pub const MAX_ASPECT_RATIO: f64 = 16.0;

/// A violated netlist invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A net has no driver pin.
    UndrivenNet {
        /// Name of the offending net.
        net: String,
    },
    /// A pin reference points past the instance arena.
    DanglingInst {
        /// Name of the offending net.
        net: String,
    },
    /// A pin reference points past the port arena.
    DanglingPort {
        /// Name of the offending net.
        net: String,
    },
    /// An input port appears as a net sink or an output port as a driver.
    PortDirectionMismatch {
        /// Name of the offending net.
        net: String,
        /// Name of the offending port.
        port: String,
    },
    /// The same sink pin appears on a net twice.
    DuplicateSink {
        /// Name of the offending net.
        net: String,
    },
    /// A block outline with non-finite or non-positive dimensions.
    DegenerateOutline {
        /// Name of the offending block.
        block: String,
    },
    /// Block aspect ratio beyond [`MAX_ASPECT_RATIO`].
    ExtremeAspect {
        /// Name of the offending block.
        block: String,
        /// Aspect ratio in tenths (`173` = 17.3 : 1).
        ratio_tenths: u32,
    },
    /// Cell + macro area exceeds the outline area: the block cannot be
    /// legalized at any utilization.
    Overfilled {
        /// Name of the offending block.
        block: String,
        /// Utilization in percent (> 100).
        util_pct: u32,
    },
    /// A port placed outside the block outline.
    PortOutsideOutline {
        /// Name of the offending block.
        block: String,
        /// Name of the offending port.
        port: String,
    },
    /// A port assigned to the top tier of an *unfolded* block.
    TierMismatch {
        /// Name of the offending block.
        block: String,
        /// Name of the offending port.
        port: String,
    },
    /// Toggle activity that is not a finite non-negative number.
    BadActivity {
        /// Name of the offending block.
        block: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UndrivenNet { net } => write!(f, "net `{net}` has no driver"),
            CheckError::DanglingInst { net } => {
                write!(f, "net `{net}` references a nonexistent instance")
            }
            CheckError::DanglingPort { net } => {
                write!(f, "net `{net}` references a nonexistent port")
            }
            CheckError::PortDirectionMismatch { net, port } => {
                write!(f, "net `{net}` uses port `{port}` against its direction")
            }
            CheckError::DuplicateSink { net } => {
                write!(f, "net `{net}` lists the same sink pin twice")
            }
            CheckError::DegenerateOutline { block } => {
                write!(f, "block `{block}` has a degenerate outline")
            }
            CheckError::ExtremeAspect {
                block,
                ratio_tenths,
            } => write!(
                f,
                "block `{block}` aspect ratio {}.{} exceeds {MAX_ASPECT_RATIO}",
                ratio_tenths / 10,
                ratio_tenths % 10
            ),
            CheckError::Overfilled { block, util_pct } => write!(
                f,
                "block `{block}` is overfilled: {util_pct}% of outline area"
            ),
            CheckError::PortOutsideOutline { block, port } => {
                write!(f, "block `{block}` port `{port}` lies outside the outline")
            }
            CheckError::TierMismatch { block, port } => write!(
                f,
                "unfolded block `{block}` has port `{port}` on the top tier"
            ),
            CheckError::BadActivity { block } => {
                write!(f, "block `{block}` has a non-finite or negative activity")
            }
        }
    }
}

impl std::error::Error for CheckError {}

impl Netlist {
    /// Verifies the structural invariants of the netlist, returning the
    /// first violation found.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] describing the first violated invariant:
    /// undriven nets, dangling instance/port references, ports used against
    /// their direction, or duplicated sink pins.
    pub fn check(&self) -> Result<(), CheckError> {
        // Single pass over the flat arrays: names are symbols resolved
        // only when constructing an error, and duplicate-sink detection
        // sorts packed 6-byte pin encodings in one reused buffer instead
        // of hashing `PinRef`s per net — zero steady-state allocations,
        // O(pins · log fanout) overall.
        let mut buf: Vec<u64> = Vec::new();
        for (_, net) in self.nets() {
            let name = || self.name_of(net.name).to_string();
            let driver = net
                .driver
                .ok_or_else(|| CheckError::UndrivenNet { net: name() })?;

            for (k, pin) in net.pins().enumerate() {
                match pin {
                    PinRef::InstOut(i) | PinRef::InstIn(i, _) => {
                        if i.index() >= self.num_insts() {
                            return Err(CheckError::DanglingInst { net: name() });
                        }
                    }
                    PinRef::Port(p) => {
                        if p.index() >= self.num_ports() {
                            return Err(CheckError::DanglingPort { net: name() });
                        }
                        let port = self.port(p);
                        let is_driver = k == 0;
                        let ok = match port.dir {
                            PortDir::Input => is_driver,
                            PortDir::Output => !is_driver,
                        };
                        if !ok {
                            return Err(CheckError::PortDirectionMismatch {
                                net: name(),
                                port: self.name_of(port.name).to_string(),
                            });
                        }
                    }
                }
            }
            // A driver must be an output-ish pin (inst output or input port).
            if let PinRef::InstIn(..) = driver {
                // treat an input pin driving a net as an undriven net
                return Err(CheckError::UndrivenNet { net: name() });
            }
            buf.clear();
            for s in net.sinks() {
                let (key, aux) = crate::netlist::encode_pin(s);
                buf.push(u64::from(key) << 16 | u64::from(aux));
            }
            buf.sort_unstable();
            if buf.windows(2).any(|w| w[0] == w[1]) {
                return Err(CheckError::DuplicateSink { net: name() });
            }
        }
        Ok(())
    }
}

impl Block {
    /// Verifies the physical and structural preconditions of the block
    /// flow, returning the first violation found.
    ///
    /// Covers, in order: outline sanity (finite, positive, aspect ratio
    /// within [`MAX_ASPECT_RATIO`]), utilization (cell + macro area must
    /// fit the outline), port geometry (inside the outline) and tier
    /// assignment (no top-tier ports on an unfolded block), activity
    /// sanity, then the [`Netlist::check`] connectivity invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] describing the first violated invariant.
    pub fn validate(&self, tech: &Technology) -> Result<(), CheckError> {
        let name = || self.name.clone();
        let (w, h) = (self.outline.width(), self.outline.height());
        if !(w.is_finite() && h.is_finite()) || w <= 0.0 || h <= 0.0 {
            return Err(CheckError::DegenerateOutline { block: name() });
        }
        let aspect = w.max(h) / w.min(h);
        if aspect > MAX_ASPECT_RATIO {
            return Err(CheckError::ExtremeAspect {
                block: name(),
                ratio_tenths: (aspect * 10.0).min(u32::MAX as f64) as u32,
            });
        }
        let used = NetlistStats::collect(&self.netlist, tech).total_area_um2();
        // A folded block keeps its full-content netlist but gets a
        // half-footprint outline on each of two dies.
        let capacity = if self.folded {
            2.0 * self.outline.area()
        } else {
            self.outline.area()
        };
        if used > capacity * (1.0 + 1e-9) {
            return Err(CheckError::Overfilled {
                block: name(),
                util_pct: (used / capacity * 100.0).min(u32::MAX as f64) as u32,
            });
        }
        const EPS: f64 = 1e-6;
        for (_, port) in self.netlist.ports() {
            let p = port.pos;
            let inside = p.x >= self.outline.llx - EPS
                && p.x <= self.outline.urx + EPS
                && p.y >= self.outline.lly - EPS
                && p.y <= self.outline.ury + EPS;
            if !inside {
                return Err(CheckError::PortOutsideOutline {
                    block: name(),
                    port: self.netlist.name_of(port.name).to_string(),
                });
            }
            if !self.folded && port.tier == Tier::Top {
                return Err(CheckError::TierMismatch {
                    block: name(),
                    port: self.netlist.name_of(port.name).to_string(),
                });
            }
        }
        if !self.activity.is_finite() || self.activity < 0.0 {
            return Err(CheckError::BadActivity { block: name() });
        }
        self.netlist.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{InstMaster, Netlist};
    use crate::{BlockKind, ClockDomain};
    use foldic_geom::{Point, Rect};
    use foldic_tech::{CellKind, CellLibrary, Drive, VthClass};

    fn inv_master() -> InstMaster {
        InstMaster::Cell(CellLibrary::cmos28().id_of(CellKind::Inv, Drive::X1, VthClass::Rvt))
    }

    #[test]
    fn valid_netlist_passes() {
        let mut nl = Netlist::new("t");
        let a = nl.add_inst("a", inv_master());
        let b = nl.add_inst("b", inv_master());
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_sink(n, PinRef::input(b, 0));
        assert!(nl.check().is_ok());
    }

    #[test]
    fn undriven_net_detected() {
        let mut nl = Netlist::new("t");
        let _ = nl.add_net("n");
        assert!(matches!(nl.check(), Err(CheckError::UndrivenNet { .. })));
    }

    #[test]
    fn input_pin_as_driver_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_inst("a", inv_master());
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::input(a, 0));
        assert!(matches!(nl.check(), Err(CheckError::UndrivenNet { .. })));
    }

    #[test]
    fn port_direction_enforced() {
        let mut nl = Netlist::new("t");
        let a = nl.add_inst("a", inv_master());
        let out = nl.add_port("y", PortDir::Output, ClockDomain::Cpu);
        let n = nl.add_net("n");
        // an output port cannot drive a net
        nl.connect_driver(n, PinRef::port(out));
        nl.connect_sink(n, PinRef::input(a, 0));
        assert!(matches!(
            nl.check(),
            Err(CheckError::PortDirectionMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_sink_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_inst("a", inv_master());
        let b = nl.add_inst("b", inv_master());
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_sink(n, PinRef::input(b, 0));
        nl.connect_sink(n, PinRef::input(b, 0));
        assert!(matches!(nl.check(), Err(CheckError::DuplicateSink { .. })));
    }

    #[test]
    fn errors_display_nonempty() {
        let e = CheckError::UndrivenNet { net: "x".into() };
        assert!(!e.to_string().is_empty());
        let e = CheckError::ExtremeAspect {
            block: "b".into(),
            ratio_tenths: 173,
        };
        assert!(e.to_string().contains("17.3"), "{e}");
    }

    fn block_with(outline: Rect) -> Block {
        let mut nl = Netlist::new("v");
        let a = nl.add_inst("a", inv_master());
        let b = nl.add_inst("b", inv_master());
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_sink(n, PinRef::input(b, 0));
        Block::new("v0", BlockKind::Misc, nl, outline)
    }

    #[test]
    fn valid_block_passes() {
        let tech = foldic_tech::Technology::cmos28();
        let b = block_with(Rect::new(0.0, 0.0, 50.0, 40.0));
        assert_eq!(b.validate(&tech), Ok(()));
    }

    #[test]
    fn outline_shape_is_checked() {
        let tech = foldic_tech::Technology::cmos28();
        let b = block_with(Rect::new(0.0, 0.0, 0.0, 40.0));
        assert!(matches!(
            b.validate(&tech),
            Err(CheckError::DegenerateOutline { .. })
        ));
        let b = block_with(Rect {
            llx: 0.0,
            lly: 0.0,
            urx: f64::NAN,
            ury: 40.0,
        });
        assert!(matches!(
            b.validate(&tech),
            Err(CheckError::DegenerateOutline { .. })
        ));
        let b = block_with(Rect::new(0.0, 0.0, 1000.0, 10.0));
        assert!(matches!(
            b.validate(&tech),
            Err(CheckError::ExtremeAspect {
                ratio_tenths: 1000,
                ..
            })
        ));
    }

    #[test]
    fn overfill_is_checked() {
        let tech = foldic_tech::Technology::cmos28();
        let probe = block_with(Rect::new(0.0, 0.0, 10.0, 10.0));
        let used = NetlistStats::collect(&probe.netlist, &tech).total_area_um2();
        assert!(used > 0.0);
        // outline with 75% of the required area: overfilled unfolded,
        // but folding doubles the capacity and makes it fit
        let side = (used * 0.75).sqrt();
        let mut b = block_with(Rect::new(0.0, 0.0, side, side));
        assert!(matches!(
            b.validate(&tech),
            Err(CheckError::Overfilled { .. })
        ));
        b.folded = true;
        assert_eq!(b.validate(&tech), Ok(()));
    }

    #[test]
    fn port_geometry_and_tier_are_checked() {
        let tech = foldic_tech::Technology::cmos28();
        let mut b = block_with(Rect::new(0.0, 0.0, 50.0, 40.0));
        let p = b.netlist.add_port("in0", PortDir::Input, ClockDomain::Cpu);
        b.netlist.port_mut(p).pos = Point::new(-5.0, 0.0);
        assert!(matches!(
            b.validate(&tech),
            Err(CheckError::PortOutsideOutline { .. })
        ));
        b.netlist.port_mut(p).pos = Point::new(0.0, 10.0);
        b.netlist.port_mut(p).tier = foldic_geom::Tier::Top;
        assert!(matches!(
            b.validate(&tech),
            Err(CheckError::TierMismatch { .. })
        ));
        // folded blocks legitimately land ports on the top die
        b.folded = true;
        assert_eq!(b.validate(&tech), Ok(()));
    }

    #[test]
    fn activity_is_checked() {
        let tech = foldic_tech::Technology::cmos28();
        let mut b = block_with(Rect::new(0.0, 0.0, 50.0, 40.0));
        b.activity = f64::NAN;
        assert!(matches!(
            b.validate(&tech),
            Err(CheckError::BadActivity { .. })
        ));
        b.activity = -0.1;
        assert!(matches!(
            b.validate(&tech),
            Err(CheckError::BadActivity { .. })
        ));
    }

    #[test]
    fn validate_includes_structural_check() {
        let tech = foldic_tech::Technology::cmos28();
        let mut b = block_with(Rect::new(0.0, 0.0, 50.0, 40.0));
        let _ = b.netlist.add_net("floating");
        assert!(matches!(
            b.validate(&tech),
            Err(CheckError::UndrivenNet { .. })
        ));
    }
}
