//! Structural invariant checking for netlists.

use crate::block::PortDir;
use crate::netlist::{Netlist, PinRef};
use std::fmt;

/// A violated netlist invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A net has no driver pin.
    UndrivenNet {
        /// Name of the offending net.
        net: String,
    },
    /// A pin reference points past the instance arena.
    DanglingInst {
        /// Name of the offending net.
        net: String,
    },
    /// A pin reference points past the port arena.
    DanglingPort {
        /// Name of the offending net.
        net: String,
    },
    /// An input port appears as a net sink or an output port as a driver.
    PortDirectionMismatch {
        /// Name of the offending net.
        net: String,
        /// Name of the offending port.
        port: String,
    },
    /// The same sink pin appears on a net twice.
    DuplicateSink {
        /// Name of the offending net.
        net: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UndrivenNet { net } => write!(f, "net `{net}` has no driver"),
            CheckError::DanglingInst { net } => {
                write!(f, "net `{net}` references a nonexistent instance")
            }
            CheckError::DanglingPort { net } => {
                write!(f, "net `{net}` references a nonexistent port")
            }
            CheckError::PortDirectionMismatch { net, port } => {
                write!(f, "net `{net}` uses port `{port}` against its direction")
            }
            CheckError::DuplicateSink { net } => {
                write!(f, "net `{net}` lists the same sink pin twice")
            }
        }
    }
}

impl std::error::Error for CheckError {}

impl Netlist {
    /// Verifies the structural invariants of the netlist, returning the
    /// first violation found.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] describing the first violated invariant:
    /// undriven nets, dangling instance/port references, ports used against
    /// their direction, or duplicated sink pins.
    pub fn check(&self) -> Result<(), CheckError> {
        for (_, net) in self.nets() {
            let name = || net.name.clone();
            let driver = net
                .driver
                .ok_or_else(|| CheckError::UndrivenNet { net: name() })?;

            for (k, pin) in net.pins().enumerate() {
                match pin {
                    PinRef::InstOut(i) | PinRef::InstIn(i, _) => {
                        if i.index() >= self.num_insts() {
                            return Err(CheckError::DanglingInst { net: name() });
                        }
                    }
                    PinRef::Port(p) => {
                        if p.index() >= self.num_ports() {
                            return Err(CheckError::DanglingPort { net: name() });
                        }
                        let port = self.port(p);
                        let is_driver = k == 0;
                        let ok = match port.dir {
                            PortDir::Input => is_driver,
                            PortDir::Output => !is_driver,
                        };
                        if !ok {
                            return Err(CheckError::PortDirectionMismatch {
                                net: name(),
                                port: port.name.clone(),
                            });
                        }
                    }
                }
            }
            // A driver must be an output-ish pin (inst output or input port).
            if let PinRef::InstIn(..) = driver {
                // treat an input pin driving a net as an undriven net
                return Err(CheckError::UndrivenNet { net: name() });
            }
            let mut seen = std::collections::HashSet::new();
            for s in &net.sinks {
                if !seen.insert(*s) {
                    return Err(CheckError::DuplicateSink { net: name() });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{InstMaster, Netlist};
    use crate::ClockDomain;
    use foldic_tech::{CellKind, CellLibrary, Drive, VthClass};

    fn inv_master() -> InstMaster {
        InstMaster::Cell(CellLibrary::cmos28().id_of(CellKind::Inv, Drive::X1, VthClass::Rvt))
    }

    #[test]
    fn valid_netlist_passes() {
        let mut nl = Netlist::new("t");
        let a = nl.add_inst("a", inv_master());
        let b = nl.add_inst("b", inv_master());
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_sink(n, PinRef::input(b, 0));
        assert!(nl.check().is_ok());
    }

    #[test]
    fn undriven_net_detected() {
        let mut nl = Netlist::new("t");
        let _ = nl.add_net("n");
        assert!(matches!(nl.check(), Err(CheckError::UndrivenNet { .. })));
    }

    #[test]
    fn input_pin_as_driver_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_inst("a", inv_master());
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::input(a, 0));
        assert!(matches!(nl.check(), Err(CheckError::UndrivenNet { .. })));
    }

    #[test]
    fn port_direction_enforced() {
        let mut nl = Netlist::new("t");
        let a = nl.add_inst("a", inv_master());
        let out = nl.add_port("y", PortDir::Output, ClockDomain::Cpu);
        let n = nl.add_net("n");
        // an output port cannot drive a net
        nl.connect_driver(n, PinRef::port(out));
        nl.connect_sink(n, PinRef::input(a, 0));
        assert!(matches!(
            nl.check(),
            Err(CheckError::PortDirectionMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_sink_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_inst("a", inv_master());
        let b = nl.add_inst("b", inv_master());
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_sink(n, PinRef::input(b, 0));
        nl.connect_sink(n, PinRef::input(b, 0));
        assert!(matches!(nl.check(), Err(CheckError::DuplicateSink { .. })));
    }

    #[test]
    fn errors_display_nonempty() {
        let e = CheckError::UndrivenNet { net: "x".into() };
        assert!(!e.to_string().is_empty());
    }
}
