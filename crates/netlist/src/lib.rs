#![warn(missing_docs)]
//! Gate-level design database for the `foldic` study.
//!
//! The database mirrors the paper's two design levels:
//!
//! * **block level** — each [`Block`] owns a flat gate-level [`Netlist`] of
//!   cell and macro [`Inst`]ances wired by [`Net`]s, plus boundary
//!   [`Port`]s. Instances carry their placement (`pos`), die assignment
//!   (`tier`, used when a block is folded across two dies) and an optional
//!   group tag (FUBs inside the SPARC core, PCX/CPX inside the crossbar).
//! * **chip level** — a [`Design`] owns the blocks plus the inter-block
//!   [`ChipNet`]s that the 3D floorplanner optimizes.
//!
//! All geometric data uses µm ([`foldic_geom`]); electrical characteristics
//! live in [`foldic_tech`] and are referenced via master identifiers.
//!
//! # Examples
//!
//! ```
//! use foldic_netlist::{Netlist, InstMaster, PinRef, PortDir, ClockDomain};
//! use foldic_tech::{CellKind, CellLibrary, Drive, VthClass};
//!
//! let lib = CellLibrary::cmos28();
//! let mut nl = Netlist::new("tiny");
//! let a = nl.add_port("a", PortDir::Input, ClockDomain::Cpu);
//! let y = nl.add_port("y", PortDir::Output, ClockDomain::Cpu);
//! let inv = nl.add_inst("u1", InstMaster::Cell(lib.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt)));
//! let n_in = nl.add_net("a");
//! nl.connect_driver(n_in, PinRef::port(a));
//! nl.connect_sink(n_in, PinRef::input(inv, 0));
//! let n_out = nl.add_net("y");
//! nl.connect_driver(n_out, PinRef::output(inv));
//! nl.connect_sink(n_out, PinRef::port(y));
//! assert!(nl.check().is_ok());
//! ```

mod block;
mod check;
pub mod db;
mod design;
mod ids;
mod intern;
mod netlist;
mod stats;
pub mod verilog;

pub use block::{Block, BlockKind, Port, PortDir};
pub use check::CheckError;
pub use design::{ChipNet, Design};
pub use ids::{BlockId, GroupId, InstId, NetId, PortId};
pub use intern::{DerivedName, NameRef, Symbol, Tmpl};
pub use netlist::{
    Adjacency, ClockDomain, Inst, InstMaster, InstMut, IntoName, Net, NetData, NetMut, Netlist,
    NetlistBuilder, PinRef,
};
pub use stats::NetlistStats;
pub use verilog::write_verilog;
