//! Blocks: named netlists with a physical outline and chip-level placement.

use crate::intern::Symbol;
use crate::netlist::{ClockDomain, Netlist};
use foldic_geom::{Point, Rect, Tier};
use std::fmt;

/// Direction of a block boundary port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Signal enters the block.
    Input,
    /// Signal leaves the block.
    Output,
}

/// A block boundary pin.
#[derive(Debug, Clone)]
pub struct Port {
    /// Port name (resolve via `Netlist::name_of`).
    pub name: Symbol,
    /// Direction.
    pub dir: PortDir,
    /// Clock domain of the signal.
    pub domain: ClockDomain,
    /// Location in block-local µm (on the block boundary after pin
    /// assignment).
    pub pos: Point,
    /// Die the port lands on when the block is folded.
    pub tier: Tier,
}

/// Functional identity of a T2 block, used for floorplan constraints,
/// folding-candidate tables and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockKind {
    /// SPARC core (8 copies).
    Spc,
    /// L2-cache data bank, `scdata` (8 copies).
    L2d,
    /// L2-cache tag, `sctag` (8 copies).
    L2t,
    /// L2-cache miss buffer, `scbuf` (8 copies).
    L2b,
    /// Cache crossbar (PCX + CPX).
    Ccx,
    /// Memory controller unit (4 copies).
    Mcu,
    /// NIU: 10G Ethernet MAC.
    Mac,
    /// NIU: receive datapath.
    Rdp,
    /// NIU: transmit data store.
    Tds,
    /// NIU: receive traffic engine.
    Rtx,
    /// Non-cacheable unit.
    Ncu,
    /// Clock control unit.
    Ccu,
    /// Data management unit.
    Dmu,
    /// PCIe unit.
    Peu,
    /// System interface unit.
    Siu,
    /// Test control unit.
    Tcu,
    /// Anything else.
    Misc,
}

impl BlockKind {
    /// `true` for the blocks the paper calls routing-hungry (SPC uses all
    /// nine metal layers).
    pub fn routing_hungry(self) -> bool {
        matches!(self, BlockKind::Spc)
    }

    /// Clock domain the block predominantly runs in.
    pub fn clock(self) -> ClockDomain {
        match self {
            BlockKind::Mac | BlockKind::Rdp | BlockKind::Tds | BlockKind::Rtx => ClockDomain::Io,
            _ => ClockDomain::Cpu,
        }
    }

    /// Short display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            BlockKind::Spc => "SPC",
            BlockKind::L2d => "L2D",
            BlockKind::L2t => "L2T",
            BlockKind::L2b => "L2B",
            BlockKind::Ccx => "CCX",
            BlockKind::Mcu => "MCU",
            BlockKind::Mac => "MAC",
            BlockKind::Rdp => "RDP",
            BlockKind::Tds => "TDS",
            BlockKind::Rtx => "RTX",
            BlockKind::Ncu => "NCU",
            BlockKind::Ccu => "CCU",
            BlockKind::Dmu => "DMU",
            BlockKind::Peu => "PEU",
            BlockKind::Siu => "SIU",
            BlockKind::Tcu => "TCU",
            BlockKind::Misc => "MISC",
        }
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A design block: a gate-level netlist with a physical outline, placed on
/// a die (or folded across both) at chip level.
#[derive(Debug, Clone)]
pub struct Block {
    /// Instance name at chip level, e.g. `"spc0"`.
    pub name: String,
    /// Functional identity.
    pub kind: BlockKind,
    /// Dominant clock domain.
    pub clock: ClockDomain,
    /// Gate-level content.
    pub netlist: Netlist,
    /// Block outline in block-local coordinates, lower-left at the origin.
    pub outline: Rect,
    /// Chip-level placement: lower-left corner of the outline on the die.
    pub pos: Point,
    /// Die the block sits on; for folded blocks this is the *bottom* die
    /// and the block occupies both tiers.
    pub tier: Tier,
    /// `true` once the block has been folded across both dies.
    pub folded: bool,
    /// Toggle activity (expected toggles per cycle) of the block's logic,
    /// set by the workload generator and consumed by the power engine.
    pub activity: f64,
}

impl Block {
    /// Creates a block with an empty placement at the origin of the bottom
    /// die.
    pub fn new(name: impl Into<String>, kind: BlockKind, netlist: Netlist, outline: Rect) -> Self {
        Self {
            name: name.into(),
            kind,
            clock: kind.clock(),
            netlist,
            outline,
            pos: Point::ORIGIN,
            tier: Tier::Bottom,
            folded: false,
            activity: 0.10,
        }
    }

    /// Silicon footprint in µm² (outline area; a folded block occupies this
    /// footprint on **each** of the two dies).
    pub fn footprint_um2(&self) -> f64 {
        self.outline.area()
    }

    /// Chip-level rectangle occupied by the block.
    pub fn chip_rect(&self) -> Rect {
        self.outline.translated(self.pos.x, self.pos.y)
    }

    /// Converts a block-local point to chip coordinates.
    pub fn to_chip(&self, local: Point) -> Point {
        local + self.pos
    }

    /// `true` when this block uses all nine metal layers (see
    /// [`BlockKind::routing_hungry`]).
    pub fn routing_hungry(&self) -> bool {
        self.kind.routing_hungry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_properties() {
        assert!(BlockKind::Spc.routing_hungry());
        assert!(!BlockKind::Ccx.routing_hungry());
        assert_eq!(BlockKind::Mac.clock(), ClockDomain::Io);
        assert_eq!(BlockKind::Spc.clock(), ClockDomain::Cpu);
        assert_eq!(BlockKind::L2d.label(), "L2D");
    }

    #[test]
    fn chip_coordinates() {
        let nl = Netlist::new("x");
        let mut b = Block::new("x0", BlockKind::Misc, nl, Rect::new(0.0, 0.0, 100.0, 50.0));
        b.pos = Point::new(10.0, 20.0);
        assert_eq!(b.chip_rect(), Rect::new(10.0, 20.0, 110.0, 70.0));
        assert_eq!(b.to_chip(Point::new(1.0, 2.0)), Point::new(11.0, 22.0));
        assert_eq!(b.footprint_um2(), 5000.0);
    }
}
