//! Versioned binary design snapshots: the `foldic-db/1` format.
//!
//! A snapshot is the SoA design database written to disk almost verbatim:
//! a fixed header (magic, version, section count, table offset), one
//! section per block plus a design-meta and a chip-net section, and a
//! trailing section table where every record carries an FNV-1a digest of
//! its section bytes. Loading is a single `read` of the file followed by
//! structural validation and direct `Vec` adoption — one bounds-checked
//! `memcpy` per column, **no per-entity parsing**. A million-cell design
//! loads in the time it takes to copy ~60 MB.
//!
//! Deliberately *not* zero-copy (each is a small O(n) pass or O(1)):
//!
//! * columns are copied out of the file buffer into owned `Vec`s (the
//!   netlist stays freely mutable; no lifetime ties to a mapping),
//! * `Point` columns are rebuilt from flat `f64` pairs (`Point`'s layout
//!   is not a stability promise),
//! * ports and chip nets are parsed record-by-record (there are tens to
//!   thousands of them, not millions).
//!
//! All integers are little-endian; the format is only read and written on
//! little-endian hosts (enforced at compile time below). Torn writes,
//! truncation and bit flips are caught by the header checks, per-section
//! digests and full structural validation (every symbol, master, pin and
//! CSR span is range-checked before the netlist is handed out) — a
//! corrupt file yields a typed [`DbError`], never a panic.

#[cfg(not(target_endian = "little"))]
compile_error!("foldic-db snapshots are little-endian only");

use crate::block::{Block, BlockKind, Port, PortDir};
use crate::design::{ChipNet, Design};
use crate::intern::{Interner, Symbol};
use crate::netlist::{master_raw_valid, pin_raw_valid, ClockDomain, Netlist};
use crate::{BlockId, PortId};
use foldic_geom::{Point, Rect, Tier};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

/// Schema identifier of the snapshot format.
pub const SCHEMA: &str = "foldic-db/1";

const MAGIC: [u8; 8] = *b"FOLDICDB";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 24;
/// Section table record: tag, index, off, len, digest.
const RECORD_LEN: usize = 32;

const TAG_META: u32 = 1;
const TAG_CHIP_NETS: u32 = 2;
const TAG_BLOCK: u32 = 3;

/// Lazy-column presence bits in a block section header.
const HAS_INST_FLAGS: u32 = 1;
const HAS_INST_GROUPS: u32 = 1 << 1;
const HAS_NET_CAPS: u32 = 1 << 2;
const HAS_NET_FLAGS: u32 = 1 << 3;

/// Stable `BlockKind` byte encoding (order is part of the format).
const BLOCK_KINDS: [BlockKind; 17] = [
    BlockKind::Spc,
    BlockKind::L2d,
    BlockKind::L2t,
    BlockKind::L2b,
    BlockKind::Ccx,
    BlockKind::Mcu,
    BlockKind::Mac,
    BlockKind::Rdp,
    BlockKind::Tds,
    BlockKind::Rtx,
    BlockKind::Ncu,
    BlockKind::Ccu,
    BlockKind::Dmu,
    BlockKind::Peu,
    BlockKind::Siu,
    BlockKind::Tcu,
    BlockKind::Misc,
];

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum DbError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `FOLDICDB` magic.
    BadMagic,
    /// The file's format version is not one this build reads.
    BadVersion(u32),
    /// The file ends before a declared structure does (torn write).
    Truncated,
    /// A section's bytes do not match the digest in the section table.
    SectionDigest {
        /// Section tag (meta, chip nets, block).
        tag: u32,
        /// Section index within its tag (block position).
        index: u32,
    },
    /// The bytes parse but violate a structural invariant.
    Corrupt(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            DbError::BadMagic => write!(f, "not a foldic-db snapshot (bad magic)"),
            DbError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {VERSION})"
                )
            }
            DbError::Truncated => write!(f, "snapshot is truncated"),
            DbError::SectionDigest { tag, index } => {
                write!(
                    f,
                    "snapshot section tag={tag} index={index} fails its digest"
                )
            }
            DbError::Corrupt(why) => write!(f, "snapshot is corrupt: {why}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

fn corrupt(why: impl Into<String>) -> DbError {
    DbError::Corrupt(why.into())
}

/// FNV-1a over `bytes` (same function the report digests use).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Whole-file digest in the manifest's `fnv64:` notation.
pub fn file_digest(path: &Path) -> Result<String, DbError> {
    let bytes = std::fs::read(path)?;
    Ok(format!("fnv64:{:016x}", fnv1a(&bytes)))
}

/// Provenance of a loaded snapshot: the meta entries the generator wrote,
/// the whole-file digest, and entity totals.
#[derive(Debug, Clone)]
pub struct DbInfo {
    /// Generator-provided `key=value` provenance (e.g. `generator=t2`,
    /// `size=full`, `seed=…`).
    pub meta: BTreeMap<String, String>,
    /// Whole-file digest (`fnv64:<16 hex>`), path-independent.
    pub digest: String,
    /// Total instances across all blocks.
    pub cells: u64,
    /// Total intra-block nets across all blocks.
    pub nets: u64,
}

// ---- writing ---------------------------------------------------------------

/// Streaming snapshot writer: sections are buffered one at a time, so
/// writing a design holds O(largest section) memory, not O(design) —
/// the partner of `NetlistBuilder` on the save side.
pub struct DbWriter {
    out: BufWriter<File>,
    // (tag, index, off, len, digest)
    records: Vec<(u32, u32, u64, u64, u64)>,
    off: u64,
    buf: Vec<u8>,
    blocks: u32,
    finished: bool,
}

impl DbWriter {
    /// Creates `path` and writes the design-meta section.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when the file cannot be created or written.
    pub fn create(path: &Path, design_name: &str, meta: &[(&str, &str)]) -> Result<Self, DbError> {
        let file = File::create(path)?;
        let mut w = Self {
            out: BufWriter::new(file),
            records: Vec::new(),
            off: HEADER_LEN as u64,
            buf: Vec::new(),
            blocks: 0,
            finished: false,
        };
        // placeholder header, patched by finish()
        w.out.write_all(&[0u8; HEADER_LEN])?;
        w.buf.clear();
        let mut text = String::new();
        text.push_str("design_name=");
        text.push_str(design_name);
        text.push('\n');
        for (k, v) in meta {
            debug_assert!(!k.contains('=') && !k.contains('\n') && !v.contains('\n'));
            text.push_str(k);
            text.push('=');
            text.push_str(v);
            text.push('\n');
        }
        let mut buf = std::mem::take(&mut w.buf);
        buf.extend_from_slice(text.as_bytes());
        w.flush_section(TAG_META, 0, &buf)?;
        w.buf = buf;
        Ok(w)
    }

    fn flush_section(&mut self, tag: u32, index: u32, bytes: &[u8]) -> Result<(), DbError> {
        let digest = fnv1a(bytes);
        self.out.write_all(bytes)?;
        self.records
            .push((tag, index, self.off, bytes.len() as u64, digest));
        self.off += bytes.len() as u64;
        Ok(())
    }

    /// Appends one block as a section.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on write failure.
    pub fn add_block(&mut self, block: &Block) -> Result<(), DbError> {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        encode_block(&mut buf, block);
        let index = self.blocks;
        self.blocks += 1;
        self.flush_section(TAG_BLOCK, index, &buf)?;
        self.buf = buf;
        Ok(())
    }

    /// Writes the chip-level nets.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on write failure.
    pub fn chip_nets(&mut self, nets: &[ChipNet]) -> Result<(), DbError> {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        put_u32(&mut buf, nets.len() as u32);
        for net in nets {
            put_u32(&mut buf, net.name.len() as u32);
            buf.extend_from_slice(net.name.as_bytes());
            put_u32(&mut buf, net.endpoints.len() as u32);
            for &(b, p) in &net.endpoints {
                put_u32(&mut buf, b.0);
                put_u32(&mut buf, p.0);
            }
            put_u32(&mut buf, net.bits);
            buf.push(domain_byte(net.domain));
        }
        self.flush_section(TAG_CHIP_NETS, 0, &buf)?;
        self.buf = buf;
        Ok(())
    }

    /// Writes the section table and patches the header, completing the
    /// snapshot. A file without a finished header is rejected by the
    /// loader, so a crash mid-write cannot produce a silently-truncated
    /// but loadable snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] on write failure.
    pub fn finish(mut self) -> Result<(), DbError> {
        let table_off = self.off;
        let mut table = Vec::with_capacity(self.records.len() * RECORD_LEN);
        for &(tag, index, off, len, digest) in &self.records {
            put_u32(&mut table, tag);
            put_u32(&mut table, index);
            put_u64(&mut table, off);
            put_u64(&mut table, len);
            put_u64(&mut table, digest);
        }
        self.out.write_all(&table)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        put_u32(&mut header, VERSION);
        put_u32(&mut header, self.records.len() as u32);
        put_u64(&mut header, table_off);
        self.out.seek(SeekFrom::Start(0))?;
        self.out.write_all(&header)?;
        self.out.flush()?;
        self.finished = true;
        Ok(())
    }
}

/// Saves `design` with the given provenance entries.
///
/// # Errors
///
/// Returns [`DbError::Io`] on write failure.
pub fn save_design(design: &Design, meta: &[(&str, &str)], path: &Path) -> Result<(), DbError> {
    let mut w = DbWriter::create(path, &design.name, meta)?;
    for (_, block) in design.blocks() {
        w.add_block(block)?;
    }
    w.chip_nets(design.chip_nets())?;
    w.finish()
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn domain_byte(d: ClockDomain) -> u8 {
    match d {
        ClockDomain::Cpu => 0,
        ClockDomain::Io => 1,
    }
}

fn tier_byte(t: Tier) -> u8 {
    match t {
        Tier::Bottom => 0,
        Tier::Top => 1,
    }
}

fn put_slice_u32(buf: &mut Vec<u8>, xs: impl IntoIterator<Item = u32>) {
    for x in xs {
        put_u32(buf, x);
    }
}

fn encode_block(buf: &mut Vec<u8>, block: &Block) {
    let nl = &block.netlist;
    let (ibuf, spans, templates) = nl.interner.parts();
    let mut lazy = 0u32;
    if !nl.inst_flags.is_empty() {
        lazy |= HAS_INST_FLAGS;
    }
    if !nl.inst_groups.is_empty() {
        lazy |= HAS_INST_GROUPS;
    }
    if !nl.net_caps.is_empty() {
        lazy |= HAS_NET_CAPS;
    }
    if !nl.net_flags.is_empty() {
        lazy |= HAS_NET_FLAGS;
    }
    // fixed header
    put_u32(buf, block.name.len() as u32);
    put_u32(buf, nl.name.len() as u32);
    buf.push(
        BLOCK_KINDS
            .iter()
            .position(|k| *k == block.kind)
            .expect("BLOCK_KINDS covers every kind") as u8,
    );
    buf.push(domain_byte(block.clock));
    buf.push(tier_byte(block.tier));
    buf.push(block.folded as u8);
    put_f64(buf, block.activity);
    for v in [
        block.outline.llx,
        block.outline.lly,
        block.outline.urx,
        block.outline.ury,
        block.pos.x,
        block.pos.y,
    ] {
        put_f64(buf, v);
    }
    for v in [
        nl.num_insts() as u32,
        nl.num_nets() as u32,
        nl.pin_keys.len() as u32,
        nl.num_ports() as u32,
        nl.num_groups() as u32,
        ibuf.len() as u32,
        spans.len() as u32,
        templates.len() as u32,
        lazy,
    ] {
        put_u32(buf, v);
    }
    // variable payload, in header order
    buf.extend_from_slice(block.name.as_bytes());
    buf.extend_from_slice(nl.name.as_bytes());
    buf.extend_from_slice(ibuf.as_bytes());
    put_slice_u32(buf, spans.iter().flat_map(|&(a, b)| [a, b]));
    put_slice_u32(buf, templates.iter().flat_map(|&(a, b, c, d)| [a, b, c, d]));
    put_slice_u32(buf, nl.inst_names.iter().map(|s| s.raw()));
    put_slice_u32(buf, nl.inst_masters.iter().copied());
    for p in &nl.inst_pos {
        put_f64(buf, p.x);
        put_f64(buf, p.y);
    }
    buf.extend_from_slice(&nl.inst_flags);
    put_slice_u32(buf, nl.inst_groups.iter().copied());
    put_slice_u32(buf, nl.net_names.iter().map(|s| s.raw()));
    put_slice_u32(buf, nl.net_driver_key.iter().copied());
    for &a in &nl.net_driver_aux {
        buf.extend_from_slice(&a.to_le_bytes());
    }
    put_slice_u32(buf, nl.net_off.iter().copied());
    put_slice_u32(buf, nl.net_len.iter().copied());
    put_slice_u32(buf, nl.net_caps.iter().copied());
    buf.extend_from_slice(&nl.net_flags);
    put_slice_u32(buf, nl.pin_keys.iter().copied());
    for &a in &nl.pin_aux {
        buf.extend_from_slice(&a.to_le_bytes());
    }
    for port in &nl.ports {
        put_u32(buf, port.name.raw());
        buf.push(match port.dir {
            PortDir::Input => 0,
            PortDir::Output => 1,
        });
        buf.push(domain_byte(port.domain));
        buf.push(tier_byte(port.tier));
        buf.push(0);
        put_f64(buf, port.pos.x);
        put_f64(buf, port.pos.y);
    }
    put_slice_u32(buf, nl.groups.iter().map(|s| s.raw()));
}

// ---- reading ---------------------------------------------------------------

/// Byte cursor over one section.
struct Cur<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, p: 0 }
    }

    fn take(&mut self, n: u64) -> Result<&'a [u8], DbError> {
        let rest = (self.b.len() - self.p) as u64;
        if n > rest {
            return Err(DbError::Truncated);
        }
        let s = &self.b[self.p..self.p + n as usize];
        self.p += n as usize;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DbError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn utf8(&mut self, len: u32) -> Result<String, DbError> {
        let bytes = self.take(u64::from(len))?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("non-UTF-8 string"))
    }

    fn done(&self) -> bool {
        self.p == self.b.len()
    }
}

/// Plain-old-data column element adoptable by bulk copy.
///
/// # Safety
///
/// Implementors must be valid for every bit pattern and have no padding.
unsafe trait Pod: Copy {}
unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for f64 {}

/// Adopts `count` elements from the cursor into an owned exact-capacity
/// `Vec` with a single `memcpy` — the near-zero-copy load path.
fn adopt<T: Pod>(cur: &mut Cur<'_>, count: u32) -> Result<Vec<T>, DbError> {
    let n = count as usize;
    let bytes = cur.take(u64::from(count) * std::mem::size_of::<T>() as u64)?;
    let mut v: Vec<T> = Vec::with_capacity(n);
    // SAFETY: the destination has capacity for n elements, the source
    // holds exactly n * size_of::<T>() initialized bytes, T is Pod (any
    // bit pattern valid, no padding), and the regions cannot overlap.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), v.as_mut_ptr().cast::<u8>(), bytes.len());
        v.set_len(n);
    }
    Ok(v)
}

fn decode_block(bytes: &[u8]) -> Result<Block, DbError> {
    let mut c = Cur::new(bytes);
    let name_len = c.u32()?;
    let nl_name_len = c.u32()?;
    let kind_byte = c.u8()?;
    let kind = *BLOCK_KINDS
        .get(kind_byte as usize)
        .ok_or_else(|| corrupt(format!("bad block kind {kind_byte}")))?;
    let clock = decode_domain(c.u8()?)?;
    let tier = decode_tier(c.u8()?)?;
    let folded = match c.u8()? {
        0 => false,
        1 => true,
        b => return Err(corrupt(format!("bad folded byte {b}"))),
    };
    let activity = c.f64()?;
    let outline = Rect {
        llx: c.f64()?,
        lly: c.f64()?,
        urx: c.f64()?,
        ury: c.f64()?,
    };
    let pos = Point::new(c.f64()?, c.f64()?);
    let n_insts = c.u32()?;
    let n_nets = c.u32()?;
    let n_pool = c.u32()?;
    let n_ports = c.u32()?;
    let n_groups = c.u32()?;
    let buf_len = c.u32()?;
    let n_spans = c.u32()?;
    let n_tmpls = c.u32()?;
    let lazy = c.u32()?;
    if lazy & !(HAS_INST_FLAGS | HAS_INST_GROUPS | HAS_NET_CAPS | HAS_NET_FLAGS) != 0 {
        return Err(corrupt(format!("bad lazy-column mask {lazy:#x}")));
    }

    let name = c.utf8(name_len)?;
    let nl_name = c.utf8(nl_name_len)?;
    let ibuf = c.utf8(buf_len)?;
    let span_words: Vec<u32> = adopt(&mut c, n_spans.checked_mul(2).ok_or(DbError::Truncated)?)?;
    let spans: Vec<(u32, u32)> = span_words.chunks_exact(2).map(|w| (w[0], w[1])).collect();
    let tmpl_words: Vec<u32> = adopt(&mut c, n_tmpls.checked_mul(4).ok_or(DbError::Truncated)?)?;
    let templates: Vec<(u32, u32, u32, u32)> = tmpl_words
        .chunks_exact(4)
        .map(|w| (w[0], w[1], w[2], w[3]))
        .collect();
    let interner = Interner::from_parts(ibuf, spans, templates).map_err(corrupt)?;

    let inst_name_raws: Vec<u32> = adopt(&mut c, n_insts)?;
    let inst_masters: Vec<u32> = adopt(&mut c, n_insts)?;
    let pos_words: Vec<f64> = adopt(&mut c, n_insts.checked_mul(2).ok_or(DbError::Truncated)?)?;
    let inst_pos: Vec<Point> = pos_words
        .chunks_exact(2)
        .map(|w| Point::new(w[0], w[1]))
        .collect();
    let inst_flags: Vec<u8> = if lazy & HAS_INST_FLAGS != 0 {
        adopt(&mut c, n_insts)?
    } else {
        Vec::new()
    };
    let inst_groups: Vec<u32> = if lazy & HAS_INST_GROUPS != 0 {
        adopt(&mut c, n_insts)?
    } else {
        Vec::new()
    };
    let net_name_raws: Vec<u32> = adopt(&mut c, n_nets)?;
    let net_driver_key: Vec<u32> = adopt(&mut c, n_nets)?;
    let net_driver_aux: Vec<u16> = adopt(&mut c, n_nets)?;
    let net_off: Vec<u32> = adopt(&mut c, n_nets)?;
    let net_len: Vec<u32> = adopt(&mut c, n_nets)?;
    let net_caps: Vec<u32> = if lazy & HAS_NET_CAPS != 0 {
        adopt(&mut c, n_nets)?
    } else {
        Vec::new()
    };
    let net_flags: Vec<u8> = if lazy & HAS_NET_FLAGS != 0 {
        adopt(&mut c, n_nets)?
    } else {
        Vec::new()
    };
    let pin_keys: Vec<u32> = adopt(&mut c, n_pool)?;
    let pin_aux: Vec<u16> = adopt(&mut c, n_pool)?;
    let mut ports = Vec::with_capacity(n_ports as usize);
    for _ in 0..n_ports {
        let name = Symbol::from_raw(c.u32()?);
        let dir = match c.u8()? {
            0 => PortDir::Input,
            1 => PortDir::Output,
            b => return Err(corrupt(format!("bad port direction {b}"))),
        };
        let domain = decode_domain(c.u8()?)?;
        let tier = decode_tier(c.u8()?)?;
        let _pad = c.u8()?;
        let pos = Point::new(c.f64()?, c.f64()?);
        ports.push(Port {
            name,
            dir,
            domain,
            pos,
            tier,
        });
    }
    let group_raws: Vec<u32> = adopt(&mut c, n_groups)?;
    if !c.done() {
        return Err(corrupt("trailing bytes in block section"));
    }

    // ---- structural validation (everything below is range checks) ----
    let check_symbol = |raw: u32, what: &str| -> Result<Symbol, DbError> {
        let sym = Symbol::from_raw(raw);
        if interner.contains(sym) {
            Ok(sym)
        } else {
            Err(corrupt(format!("{what} symbol {raw:#x} outside the table")))
        }
    };
    let mut inst_names = Vec::with_capacity(inst_name_raws.len());
    for raw in inst_name_raws {
        inst_names.push(check_symbol(raw, "instance")?);
    }
    let mut net_names = Vec::with_capacity(net_name_raws.len());
    for raw in net_name_raws {
        net_names.push(check_symbol(raw, "net")?);
    }
    for port in &ports {
        check_symbol(port.name.raw(), "port")?;
    }
    let mut groups = Vec::with_capacity(group_raws.len());
    for raw in group_raws {
        let sym = check_symbol(raw, "group")?;
        if interner.as_plain(sym).is_none() {
            return Err(corrupt("derived symbol used as a group name"));
        }
        groups.push(sym);
    }
    for &m in &inst_masters {
        if !master_raw_valid(m) {
            return Err(corrupt(format!("bad master encoding {m:#x}")));
        }
    }
    for &f in inst_flags.iter().chain(&net_flags) {
        if f > 3 {
            return Err(corrupt(format!("bad flag byte {f:#x}")));
        }
    }
    for &g in &inst_groups {
        if g != u32::MAX && g as usize >= groups.len() {
            return Err(corrupt(format!("instance group {g} out of range")));
        }
    }
    for i in 0..n_nets as usize {
        let key = net_driver_key[i];
        if key != u32::MAX && !pin_raw_valid(key, net_driver_aux[i], n_insts, n_ports) {
            return Err(corrupt(format!("bad driver pin on net {i}")));
        }
        let len = u64::from(net_len[i]);
        let off = u64::from(net_off[i]);
        let span = if net_caps.is_empty() {
            len
        } else {
            let cap = u64::from(net_caps[i]);
            if cap < len {
                return Err(corrupt(format!("net {i} capacity below its length")));
            }
            cap
        };
        if len > 0 && off + span > u64::from(n_pool) {
            return Err(corrupt(format!("net {i} pin span outside the pool")));
        }
        for k in off as usize..(off + len) as usize {
            if !pin_raw_valid(pin_keys[k], pin_aux[k], n_insts, n_ports) {
                return Err(corrupt(format!("bad sink pin on net {i}")));
            }
        }
    }

    let netlist = Netlist {
        name: nl_name,
        interner,
        inst_names,
        inst_masters,
        inst_pos,
        inst_flags,
        inst_groups,
        net_names,
        net_driver_key,
        net_driver_aux,
        net_off,
        net_len,
        net_caps,
        net_flags,
        pin_keys,
        pin_aux,
        ports,
        groups,
    };
    Ok(Block {
        name,
        kind,
        clock,
        netlist,
        outline,
        pos,
        tier,
        folded,
        activity,
    })
}

fn decode_domain(b: u8) -> Result<ClockDomain, DbError> {
    match b {
        0 => Ok(ClockDomain::Cpu),
        1 => Ok(ClockDomain::Io),
        _ => Err(corrupt(format!("bad clock-domain byte {b}"))),
    }
}

fn decode_tier(b: u8) -> Result<Tier, DbError> {
    match b {
        0 => Ok(Tier::Bottom),
        1 => Ok(Tier::Top),
        _ => Err(corrupt(format!("bad tier byte {b}"))),
    }
}

fn decode_chip_nets(bytes: &[u8], blocks: &[Block]) -> Result<Vec<ChipNet>, DbError> {
    let mut c = Cur::new(bytes);
    let count = c.u32()?;
    let mut nets = Vec::new();
    for _ in 0..count {
        let name_len = c.u32()?;
        let name = c.utf8(name_len)?;
        let arity = c.u32()?;
        let mut endpoints = Vec::with_capacity(arity.min(1 << 16) as usize);
        for _ in 0..arity {
            let b = c.u32()?;
            let p = c.u32()?;
            let block = blocks
                .get(b as usize)
                .ok_or_else(|| corrupt(format!("chip net endpoint block {b} out of range")))?;
            if p as usize >= block.netlist.num_ports() {
                return Err(corrupt(format!("chip net endpoint port {p} out of range")));
            }
            endpoints.push((BlockId(b), PortId(p)));
        }
        let bits = c.u32()?;
        let domain = decode_domain(c.u8()?)?;
        nets.push(ChipNet {
            name,
            endpoints,
            bits,
            domain,
        });
    }
    if !c.done() {
        return Err(corrupt("trailing bytes in chip-net section"));
    }
    Ok(nets)
}

/// Loads a snapshot, fully validating it.
///
/// # Errors
///
/// Returns a typed [`DbError`] for I/O failures, wrong magic/version,
/// truncation, per-section digest mismatches, and any structural
/// corruption. A file this function accepts yields a design whose every
/// symbol, master, pin and span is in range.
pub fn load_design(path: &Path) -> Result<(Design, DbInfo), DbError> {
    let bytes = std::fs::read(path)?;
    load_design_bytes(&bytes)
}

/// [`load_design`] over an in-memory snapshot (the fuzz-suite entry).
///
/// # Errors
///
/// See [`load_design`].
pub fn load_design_bytes(bytes: &[u8]) -> Result<(Design, DbInfo), DbError> {
    if bytes.len() < HEADER_LEN {
        return Err(DbError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(DbError::BadMagic);
    }
    let mut c = Cur::new(&bytes[8..HEADER_LEN]);
    let version = c.u32().expect("header length checked");
    if version != VERSION {
        return Err(DbError::BadVersion(version));
    }
    let n_sections = c.u32().expect("header length checked");
    let table_off = c.u64().expect("header length checked");
    let table_len = u64::from(n_sections) * RECORD_LEN as u64;
    if table_off < HEADER_LEN as u64 || table_off + table_len > bytes.len() as u64 {
        return Err(DbError::Truncated);
    }
    let mut t = Cur::new(&bytes[table_off as usize..(table_off + table_len) as usize]);
    let mut meta_bytes: Option<&[u8]> = None;
    let mut chip_bytes: Option<&[u8]> = None;
    let mut block_bytes: Vec<(u32, &[u8])> = Vec::new();
    for _ in 0..n_sections {
        let tag = t.u32().expect("table length checked");
        let index = t.u32().expect("table length checked");
        let off = t.u64().expect("table length checked");
        let len = t.u64().expect("table length checked");
        let digest = t.u64().expect("table length checked");
        if off < HEADER_LEN as u64 || off + len > table_off {
            return Err(DbError::Truncated);
        }
        let sec = &bytes[off as usize..(off + len) as usize];
        if fnv1a(sec) != digest {
            return Err(DbError::SectionDigest { tag, index });
        }
        match tag {
            TAG_META if meta_bytes.is_none() && index == 0 => meta_bytes = Some(sec),
            TAG_CHIP_NETS if chip_bytes.is_none() && index == 0 => chip_bytes = Some(sec),
            TAG_BLOCK => block_bytes.push((index, sec)),
            _ => {
                return Err(corrupt(format!(
                    "unexpected section record tag={tag} index={index}"
                )))
            }
        }
    }
    let meta_bytes = meta_bytes.ok_or_else(|| corrupt("missing design-meta section"))?;
    let chip_bytes = chip_bytes.ok_or_else(|| corrupt("missing chip-net section"))?;
    block_bytes.sort_by_key(|&(i, _)| i);
    for (want, &(got, _)) in block_bytes.iter().enumerate() {
        if got as usize != want {
            return Err(corrupt(format!("block sections are not 0..n: saw {got}")));
        }
    }

    let meta_text =
        std::str::from_utf8(meta_bytes).map_err(|_| corrupt("non-UTF-8 meta section"))?;
    let mut meta = BTreeMap::new();
    let mut design_name = String::new();
    for line in meta_text.lines() {
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| corrupt("meta line without `=`"))?;
        if k == "design_name" {
            design_name = v.to_owned();
        } else {
            meta.insert(k.to_owned(), v.to_owned());
        }
    }

    let mut blocks = Vec::with_capacity(block_bytes.len());
    for &(_, sec) in &block_bytes {
        blocks.push(decode_block(sec)?);
    }
    let chip_nets = decode_chip_nets(chip_bytes, &blocks)?;

    let cells = blocks.iter().map(|b| b.netlist.num_insts() as u64).sum();
    let nets = blocks.iter().map(|b| b.netlist.num_nets() as u64).sum();
    let mut design = Design::new(design_name);
    for b in blocks {
        design.add_block(b);
    }
    for n in chip_nets {
        design.add_chip_net(n);
    }
    let info = DbInfo {
        meta,
        digest: format!("fnv64:{:016x}", fnv1a(bytes)),
        cells,
        nets,
    };
    Ok((design, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{InstMaster, PinRef};
    use foldic_tech::{CellKind, CellLibrary, Drive, MacroKind, VthClass};

    fn sample_design() -> Design {
        let lib = CellLibrary::cmos28();
        let inv = InstMaster::Cell(lib.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let mut d = Design::new("chip");
        let mut nl = Netlist::new("m0");
        let t = nl.name_template("u", "");
        let nt = nl.name_template("n_", "");
        let g = nl.add_group("alu");
        let p = nl.add_port("in0", PortDir::Input, ClockDomain::Io);
        let mut prev = None;
        for i in 0..20 {
            let u = nl.add_inst(t.at(i), inv);
            if i == 3 {
                nl.inst_mut(u).group = Some(g);
                nl.inst_mut(u).tier = Tier::Top;
            }
            let n = nl.add_net(nt.at(i));
            match prev {
                None => nl.connect_driver(n, PinRef::port(p)),
                Some(q) => nl.connect_driver(n, PinRef::output(q)),
            }
            nl.connect_sink(n, PinRef::input(u, 0));
            prev = Some(u);
        }
        let clk = nl.add_net("clk");
        nl.connect_driver(clk, PinRef::output(prev.unwrap()));
        nl.net_mut(clk).is_clock = true;
        let _m = nl.add_inst("mem0", InstMaster::Macro(MacroKind::Sram4k));
        let b0 = Block::new("m0", BlockKind::Misc, nl, Rect::new(0.0, 0.0, 100.0, 100.0));
        let id0 = d.add_block(b0);
        let nl1 = Netlist::new("m1");
        let id1 = d.add_block(Block::new(
            "m1",
            BlockKind::Ccx,
            nl1,
            Rect::new(0.0, 0.0, 10.0, 10.0),
        ));
        let _ = id1;
        d.add_chip_net(ChipNet {
            name: "bus".into(),
            endpoints: vec![(id0, PortId(0))],
            bits: 64,
            domain: ClockDomain::Cpu,
        });
        d
    }

    fn save_to_vec(d: &Design) -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!("foldic-db-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fdb");
        save_design(d, &[("generator", "test"), ("seed", "7")], &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        bytes
    }

    #[test]
    fn round_trip_preserves_arrays_and_reports() {
        let d = sample_design();
        let bytes = save_to_vec(&d);
        let (d2, info) = load_design_bytes(&bytes).unwrap();
        assert_eq!(info.meta.get("generator").map(String::as_str), Some("test"));
        assert_eq!(info.cells, d.total_insts() as u64);
        assert_eq!(info.nets, d.total_nets() as u64);
        assert!(info.digest.starts_with("fnv64:"));
        assert_eq!(d2.name, d.name);
        assert_eq!(d2.num_blocks(), d.num_blocks());
        let (a, b) = (d.block(crate::BlockId(0)), d2.block(crate::BlockId(0)));
        assert_eq!(a.netlist.num_insts(), b.netlist.num_insts());
        // identical arrays ⇒ identical resolved names and connectivity
        for (id, inst) in a.netlist.insts() {
            let other = b.netlist.inst(id);
            assert_eq!(
                a.netlist.name_of(inst.name).to_string(),
                b.netlist.name_of(other.name).to_string()
            );
            assert_eq!(inst.tier, other.tier);
            assert_eq!(inst.group, other.group);
        }
        for (id, net) in a.netlist.nets() {
            let other = b.netlist.net(id);
            assert_eq!(net.driver, other.driver);
            assert!(net.sinks().eq(other.sinks()));
            assert_eq!(net.is_clock, other.is_clock);
        }
        assert_eq!(d2.chip_nets().len(), 1);
        assert_eq!(d2.chip_nets()[0].bits, 64);
        // a second save of the loaded design is byte-identical
        assert_eq!(save_to_vec(&d2), bytes);
    }

    #[test]
    fn truncation_and_magic_are_typed_errors() {
        let bytes = save_to_vec(&sample_design());
        assert!(matches!(
            load_design_bytes(&bytes[..10]),
            Err(DbError::Truncated)
        ));
        assert!(matches!(
            load_design_bytes(b"nonsense"),
            Err(DbError::Truncated)
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(load_design_bytes(&bad), Err(DbError::BadMagic)));
        let mut bad = bytes.clone();
        bad[8] = 99; // version
        assert!(matches!(
            load_design_bytes(&bad),
            Err(DbError::BadVersion(99))
        ));
    }

    #[test]
    fn payload_flips_fail_the_section_digest() {
        let bytes = save_to_vec(&sample_design());
        // flip one byte in the middle of the payload
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x40;
        match load_design_bytes(&bad) {
            Err(DbError::SectionDigest { .. }) | Err(DbError::Truncated) => {}
            other => panic!("expected digest failure, got {other:?}"),
        }
    }
}
