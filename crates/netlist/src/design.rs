//! Chip-level design: blocks plus inter-block connectivity.

use crate::block::Block;
use crate::ids::{BlockId, PortId};
use crate::netlist::ClockDomain;

/// An inter-block bus at chip level.
///
/// A chip net connects boundary ports of two or more blocks. `bits` carries
/// the bus width so the generator does not need to materialize thousands of
/// identical scalar nets; wirelength and capacitance accounting multiply by
/// it.
#[derive(Debug, Clone)]
pub struct ChipNet {
    /// Bus name.
    pub name: String,
    /// Connected `(block, port)` endpoints; the first is the driver side.
    pub endpoints: Vec<(BlockId, PortId)>,
    /// Bus width.
    pub bits: u32,
    /// Clock domain of the bus.
    pub domain: ClockDomain,
}

impl ChipNet {
    /// Number of endpoints.
    pub fn arity(&self) -> usize {
        self.endpoints.len()
    }
}

/// A complete chip: blocks and the nets between them.
#[derive(Debug, Clone)]
pub struct Design {
    /// Design name.
    pub name: String,
    blocks: Vec<Block>,
    chip_nets: Vec<ChipNet>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            blocks: Vec::new(),
            chip_nets: Vec::new(),
        }
    }

    /// Adds a block and returns its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId::from(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// Adds an inter-block net.
    pub fn add_chip_net(&mut self, net: ChipNet) {
        self.chip_nets.push(net);
    }

    /// The block behind `id`.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to the block behind `id`.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over `(id, block)` pairs.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from(i), b))
    }

    /// Iterates over blocks mutably.
    pub fn blocks_mut(&mut self) -> impl Iterator<Item = (BlockId, &mut Block)> {
        self.blocks
            .iter_mut()
            .enumerate()
            .map(|(i, b)| (BlockId::from(i), b))
    }

    /// All block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::from)
    }

    /// The inter-block nets.
    pub fn chip_nets(&self) -> &[ChipNet] {
        &self.chip_nets
    }

    /// Finds a block by name.
    pub fn find_block(&self, name: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.name == name)
            .map(BlockId::from)
    }

    /// Total instance count across all blocks.
    pub fn total_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.netlist.num_insts()).sum()
    }

    /// Total intra-block net count across all blocks.
    pub fn total_nets(&self) -> usize {
        self.blocks.iter().map(|b| b.netlist.num_nets()).sum()
    }

    /// Heap bytes resident across all block netlists plus the chip-level
    /// structures (the scaling bench's bytes/cell numerator).
    pub fn heap_bytes(&self) -> u64 {
        let block_heap: u64 = self
            .blocks
            .iter()
            .map(|b| b.name.capacity() as u64 + b.netlist.heap_bytes())
            .sum();
        let net_heap: u64 = self
            .chip_nets
            .iter()
            .map(|n| {
                (n.name.capacity()
                    + n.endpoints.capacity() * std::mem::size_of::<(BlockId, PortId)>())
                    as u64
            })
            .sum();
        self.name.capacity() as u64
            + (self.blocks.capacity() * std::mem::size_of::<Block>()) as u64
            + (self.chip_nets.capacity() * std::mem::size_of::<ChipNet>()) as u64
            + block_heap
            + net_heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;
    use crate::netlist::Netlist;
    use foldic_geom::Rect;

    #[test]
    fn add_and_find_blocks() {
        let mut d = Design::new("chip");
        let b0 = d.add_block(Block::new(
            "spc0",
            BlockKind::Spc,
            Netlist::new("spc"),
            Rect::new(0.0, 0.0, 10.0, 10.0),
        ));
        let b1 = d.add_block(Block::new(
            "ccx",
            BlockKind::Ccx,
            Netlist::new("ccx"),
            Rect::new(0.0, 0.0, 5.0, 5.0),
        ));
        assert_eq!(d.num_blocks(), 2);
        assert_eq!(d.find_block("ccx"), Some(b1));
        assert_eq!(d.find_block("nope"), None);
        assert_eq!(d.block(b0).kind, BlockKind::Spc);
    }

    #[test]
    fn chip_net_arity() {
        let net = ChipNet {
            name: "bus".into(),
            endpoints: vec![(BlockId(0), PortId(0)), (BlockId(1), PortId(3))],
            bits: 64,
            domain: ClockDomain::Cpu,
        };
        assert_eq!(net.arity(), 2);
        assert_eq!(net.bits, 64);
    }
}
