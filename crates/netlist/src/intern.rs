//! Name interning: `Symbol(u32)` handles in place of per-entity `String`s.
//!
//! A million-cell netlist cannot afford a heap `String` per instance and
//! net (24 bytes of header plus the heap block each). Names in generated
//! designs are overwhelmingly *derived*: a shared pattern with one
//! decimal index (`spc0_u{i}`, `n_ccx_{i}`). The interner therefore
//! stores two kinds of symbol in one `u32`:
//!
//! * **plain** (bit 31 clear): an index into a span table over one shared
//!   string buffer. Used for one-off names (`"clk"`, block roots, names
//!   arriving from outside a generator).
//! * **derived** (bit 31 set): a 7-bit template id plus a 24-bit decimal
//!   index. A template is a `(prefix, suffix)` pair registered once per
//!   netlist; the full text is produced only at formatting time, exactly
//!   as `format!("{prefix}{index}{suffix}")` would have.
//!
//! Symbols are **identities of creation**, not content hashes: interning
//! the same text twice may yield two different symbols, and a derived
//! name never compares equal to a plain interning of the same text.
//! Nothing in the workspace compares names through symbols — lookups go
//! through typed ids — so this is a deliberate trade that keeps interning
//! allocation-free on the hot path (no dedup map).
//!
//! **Determinism:** symbols are assigned in insertion order by a single
//! construction thread, so the same construction sequence produces the
//! same symbol values, and resolving them reproduces the exact bytes the
//! old `String` fields held. Report digests are therefore unchanged.

use std::fmt;

/// `(start, len)` span of a plain name inside the shared string buffer.
pub(crate) type NameSpan = (u32, u32);
/// `(prefix_start, prefix_len, suffix_start, suffix_len)` of a template.
pub(crate) type TmplSpan = (u32, u32, u32, u32);

/// Interned name handle. See the module docs for the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

const DERIVED_BIT: u32 = 1 << 31;
const TMPL_SHIFT: u32 = 24;
const INDEX_MASK: u32 = (1 << TMPL_SHIFT) - 1;

impl Symbol {
    /// Raw encoded value (stable across save/load; used by snapshots).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a symbol from its raw encoding (snapshot load path).
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Symbol(raw)
    }
}

/// Template handle returned by [`Interner::template`]; combine with an
/// index via [`Tmpl::at`] to name an entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tmpl(u8);

impl Tmpl {
    /// The derived name `{prefix}{index}{suffix}` for this template.
    /// Indices that do not fit the 24-bit payload are handled by the
    /// netlist's name-construction path (which falls back to a plain
    /// interning of the formatted text), not here.
    #[inline]
    pub fn at(self, index: usize) -> DerivedName {
        DerivedName { tmpl: self, index }
    }
}

/// A not-yet-interned derived name; see [`Tmpl::at`].
#[derive(Debug, Clone, Copy)]
pub struct DerivedName {
    pub(crate) tmpl: Tmpl,
    pub(crate) index: usize,
}

/// Per-netlist symbol table: one shared buffer, a span table for plain
/// symbols, and a `(prefix, suffix)` table for templates.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// All plain strings and template halves, concatenated.
    buf: String,
    /// Plain symbol spans: `(start, len)` into `buf`.
    spans: Vec<(u32, u32)>,
    /// Template spans: `(prefix_start, prefix_len, suffix_start,
    /// suffix_len)` into `buf`.
    templates: Vec<(u32, u32, u32, u32)>,
}

impl Interner {
    fn push_span(&mut self, text: &str) -> (u32, u32) {
        let start = self.buf.len() as u32;
        self.buf.push_str(text);
        (start, text.len() as u32)
    }

    /// Interns `text` as a plain symbol. No deduplication: callers that
    /// intern in a loop should hold on to the symbol (or use a template).
    pub fn intern(&mut self, text: &str) -> Symbol {
        let span = self.push_span(text);
        let idx = self.spans.len() as u32;
        assert!(idx < DERIVED_BIT, "interner span table overflow");
        self.spans.push(span);
        Symbol(idx)
    }

    /// Registers a `{prefix}{index}{suffix}` template. A netlist supports
    /// up to 128 templates; generators register a handful per block.
    pub fn template(&mut self, prefix: &str, suffix: &str) -> Tmpl {
        let id = self.templates.len();
        assert!(id < (1 << 7), "interner template table overflow");
        let p = self.push_span(prefix);
        let s = self.push_span(suffix);
        self.templates.push((p.0, p.1, s.0, s.1));
        Tmpl(id as u8)
    }

    /// Encodes a derived name, falling back to a plain interning of the
    /// formatted text when the index exceeds the 24-bit payload.
    pub fn derived(&mut self, name: DerivedName) -> Symbol {
        if name.index as u64 > u64::from(INDEX_MASK) {
            let (p, s) = self.template_parts(name.tmpl);
            let text = format!("{p}{}{s}", name.index);
            return self.intern(&text);
        }
        Symbol(DERIVED_BIT | (u32::from(name.tmpl.0) << TMPL_SHIFT) | name.index as u32)
    }

    fn span_str(&self, (start, len): (u32, u32)) -> &str {
        &self.buf[start as usize..(start + len) as usize]
    }

    fn template_parts(&self, tmpl: Tmpl) -> (&str, &str) {
        let (ps, pl, ss, sl) = self.templates[tmpl.0 as usize];
        (self.span_str((ps, pl)), self.span_str((ss, sl)))
    }

    /// Resolves a symbol to a zero-allocation displayable name.
    pub fn name(&self, sym: Symbol) -> NameRef<'_> {
        NameRef {
            interner: self,
            sym,
        }
    }

    /// Appends the resolved text of `sym` to `out` (formatting-time
    /// resolution for report and Verilog writers).
    pub fn write_name(&self, out: &mut String, sym: Symbol) {
        use fmt::Write;
        let _ = write!(out, "{}", self.name(sym));
    }

    /// Heap bytes held by the symbol table (scaling-bench accounting).
    pub fn heap_bytes(&self) -> u64 {
        (self.buf.capacity()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.templates.capacity() * std::mem::size_of::<(u32, u32, u32, u32)>())
            as u64
    }

    /// Serialization accessors for the snapshot writer.
    pub(crate) fn parts(&self) -> (&str, &[NameSpan], &[TmplSpan]) {
        (&self.buf, &self.spans, &self.templates)
    }

    /// Rebuilds an interner from snapshot sections, validating that every
    /// span lies inside the buffer on a UTF-8 boundary.
    pub(crate) fn from_parts(
        buf: String,
        spans: Vec<(u32, u32)>,
        templates: Vec<(u32, u32, u32, u32)>,
    ) -> Result<Self, String> {
        let check = |start: u32, len: u32| -> Result<(), String> {
            let end = u64::from(start) + u64::from(len);
            if end > buf.len() as u64 {
                return Err(format!("name span {start}+{len} outside buffer"));
            }
            if !buf.is_char_boundary(start as usize) || !buf.is_char_boundary(end as usize) {
                return Err(format!("name span {start}+{len} splits a UTF-8 sequence"));
            }
            Ok(())
        };
        for &(s, l) in &spans {
            check(s, l)?;
        }
        for &(ps, pl, ss, sl) in &templates {
            check(ps, pl)?;
            check(ss, sl)?;
        }
        Ok(Self {
            buf,
            spans,
            templates,
        })
    }

    /// The text of a plain symbol, or `None` for derived symbols (group
    /// names are always plain, so `Netlist::group_name` can return
    /// `&str`).
    pub(crate) fn as_plain(&self, sym: Symbol) -> Option<&str> {
        if sym.0 & DERIVED_BIT == 0 {
            Some(self.span_str(self.spans[sym.0 as usize]))
        } else {
            None
        }
    }

    /// `true` when `sym` resolves inside this table (snapshot validation).
    pub(crate) fn contains(&self, sym: Symbol) -> bool {
        if sym.0 & DERIVED_BIT == 0 {
            (sym.0 as usize) < self.spans.len()
        } else {
            let tmpl = ((sym.0 & !DERIVED_BIT) >> TMPL_SHIFT) as usize;
            tmpl < self.templates.len()
        }
    }
}

/// A resolved name: displays as the exact text the entity was named
/// with, without allocating. Obtain via `Netlist::name_of`.
#[derive(Clone, Copy)]
pub struct NameRef<'a> {
    interner: &'a Interner,
    sym: Symbol,
}

impl fmt::Display for NameRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sym = self.sym;
        if sym.0 & DERIVED_BIT == 0 {
            f.write_str(self.interner.span_str(self.interner.spans[sym.0 as usize]))
        } else {
            let tmpl = Tmpl(((sym.0 & !DERIVED_BIT) >> TMPL_SHIFT) as u8);
            let (prefix, suffix) = self.interner.template_parts(tmpl);
            write!(f, "{prefix}{}{suffix}", sym.0 & INDEX_MASK)
        }
    }
}

impl fmt::Debug for NameRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_symbols_resolve_to_their_text() {
        let mut it = Interner::default();
        let clk = it.intern("clk");
        let root = it.intern("spc0_ckroot");
        assert_eq!(it.name(clk).to_string(), "clk");
        assert_eq!(it.name(root).to_string(), "spc0_ckroot");
    }

    #[test]
    fn derived_symbols_format_like_the_original_format_string() {
        let mut it = Interner::default();
        let cells = it.template("spc0_u", "");
        let mpins = it.template("n_spc0_m7_", "");
        for i in [0usize, 1, 9, 10, 123_456] {
            let sym = it.derived(cells.at(i));
            assert_eq!(it.name(sym).to_string(), format!("spc0_u{i}"));
        }
        let sym = it.derived(mpins.at(3));
        assert_eq!(it.name(sym).to_string(), "n_spc0_m7_3");
    }

    #[test]
    fn oversized_indices_fall_back_to_plain_interning() {
        let mut it = Interner::default();
        let t = it.template("u", "");
        let sym = it.derived(t.at(1 << 24));
        assert_eq!(it.name(sym).to_string(), format!("u{}", 1 << 24));
        assert_eq!(sym.raw() & super::DERIVED_BIT, 0, "fallback is plain");
    }

    #[test]
    fn symbols_are_creation_identities_not_content_hashes() {
        let mut it = Interner::default();
        let a = it.intern("clk");
        let b = it.intern("clk");
        assert_ne!(a, b, "no dedup by design");
        assert_eq!(it.name(a).to_string(), it.name(b).to_string());
    }

    #[test]
    fn write_name_appends_without_clearing() {
        let mut it = Interner::default();
        let t = it.template("n_ccx_", "");
        let sym = it.derived(t.at(42));
        let mut out = String::from(".");
        it.write_name(&mut out, sym);
        assert_eq!(out, ".n_ccx_42");
    }

    #[test]
    fn from_parts_rejects_out_of_range_spans() {
        let bad = Interner::from_parts("ab".to_owned(), vec![(1, 5)], Vec::new());
        assert!(bad.is_err());
        let bad = Interner::from_parts(
            "ab".to_owned(),
            Vec::new(),
            vec![(0, 1), (9, 1)]
                .into_iter()
                .flat_map(|(a, b)| [(a, b, 0, 0)])
                .collect(),
        );
        assert!(bad.is_err());
        let ok = Interner::from_parts("ab".to_owned(), vec![(0, 2)], vec![(0, 1, 1, 1)]);
        assert!(ok.is_ok());
    }
}
