//! Netlist statistics: the raw counts the paper's tables report.

use crate::netlist::{InstMaster, Netlist};
use foldic_tech::{CellKind, Technology};

/// Aggregate statistics of a netlist.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetlistStats {
    /// Total instance count (cells + macros).
    pub num_insts: usize,
    /// Standard-cell instance count.
    pub num_cells: usize,
    /// Hard-macro instance count.
    pub num_macros: usize,
    /// Repeater count — `BUF` and `CLKBUF` cells (what Table 2's
    /// "# buffers" tracks).
    pub num_buffers: usize,
    /// Flip-flop count.
    pub num_flops: usize,
    /// Total standard-cell area in µm².
    pub cell_area_um2: f64,
    /// Total macro area in µm².
    pub macro_area_um2: f64,
    /// Net count.
    pub num_nets: usize,
    /// Total pin count over all nets (drivers + sinks).
    pub num_pins: usize,
    /// Boundary port count.
    pub num_ports: usize,
}

impl NetlistStats {
    /// Collects statistics from `netlist` under `tech`.
    pub fn collect(netlist: &Netlist, tech: &Technology) -> Self {
        let mut s = NetlistStats {
            num_nets: netlist.num_nets(),
            num_ports: netlist.num_ports(),
            ..Default::default()
        };
        for (_, inst) in netlist.insts() {
            s.num_insts += 1;
            match inst.master {
                InstMaster::Cell(id) => {
                    let m = tech.cells.master(id);
                    s.num_cells += 1;
                    s.cell_area_um2 += m.area_um2;
                    match m.kind {
                        CellKind::Buf | CellKind::ClkBuf => s.num_buffers += 1,
                        CellKind::Dff => s.num_flops += 1,
                        _ => {}
                    }
                }
                InstMaster::Macro(kind) => {
                    s.num_macros += 1;
                    s.macro_area_um2 += tech.macros.get(kind).area_um2();
                }
            }
        }
        for (_, net) in netlist.nets() {
            s.num_pins += net.pins().count();
        }
        s
    }

    /// Total placed area (cells + macros) in µm².
    pub fn total_area_um2(&self) -> f64 {
        self.cell_area_um2 + self.macro_area_um2
    }

    /// Average net fanout (pins per net minus the driver).
    pub fn avg_fanout(&self) -> f64 {
        if self.num_nets == 0 {
            0.0
        } else {
            (self.num_pins - self.num_nets) as f64 / self.num_nets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::PinRef;
    use foldic_tech::{CellLibrary, Drive, MacroKind, VthClass};

    #[test]
    fn counts_by_category() {
        let tech = Technology::cmos28();
        let lib = CellLibrary::cmos28();
        let mut nl = Netlist::new("t");
        let inv = nl.add_inst(
            "i",
            InstMaster::Cell(lib.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt)),
        );
        let buf = nl.add_inst(
            "b",
            InstMaster::Cell(lib.id_of(CellKind::Buf, Drive::X2, VthClass::Rvt)),
        );
        let ff = nl.add_inst(
            "f",
            InstMaster::Cell(lib.id_of(CellKind::Dff, Drive::X1, VthClass::Rvt)),
        );
        let _m = nl.add_inst("m", InstMaster::Macro(MacroKind::Sram16k));
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(inv));
        nl.connect_sink(n, PinRef::input(buf, 0));
        nl.connect_sink(n, PinRef::input(ff, 0));

        let s = NetlistStats::collect(&nl, &tech);
        assert_eq!(s.num_insts, 4);
        assert_eq!(s.num_cells, 3);
        assert_eq!(s.num_macros, 1);
        assert_eq!(s.num_buffers, 1);
        assert_eq!(s.num_flops, 1);
        assert_eq!(s.num_pins, 3);
        assert!(s.macro_area_um2 > s.cell_area_um2);
        assert!((s.avg_fanout() - 2.0).abs() < 1e-12);
        assert!(s.total_area_um2() > 0.0);
    }

    #[test]
    fn empty_netlist_stats() {
        let tech = Technology::cmos28();
        let s = NetlistStats::collect(&Netlist::new("e"), &tech);
        assert_eq!(s.num_insts, 0);
        assert_eq!(s.avg_fanout(), 0.0);
    }
}
