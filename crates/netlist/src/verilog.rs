//! Structural Verilog export.
//!
//! Writes a block's gate-level netlist as a synthesizable structural
//! Verilog module: one `wire` per net, one instantiation per cell/macro
//! with positional-free named port connections. The output is meant for
//! interoperability (waveform-less equivalence checks, external tools)
//! and for eyeballing generated designs; it is not re-imported.

use crate::block::PortDir;
use crate::netlist::{InstMaster, Netlist, PinRef};
use foldic_tech::Technology;
use std::fmt::Write as _;

/// Sanitizes an identifier for Verilog (escapes anything exotic).
fn ident(name: &str) -> String {
    if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
    {
        name.to_owned()
    } else {
        format!("\\{name} ")
    }
}

/// Writes `netlist` as a structural Verilog module named after it.
///
/// Driver pins connect through the net's wire; instance input pins are
/// named `in0`, `in1`, … and the output pin `out`, matching the database's
/// single-output cell model. Macro pins follow the same convention.
pub fn write_verilog(netlist: &Netlist, tech: &Technology) -> String {
    let mut out = String::new();
    // names are interned symbols; resolve to text here, at format time
    let name = |s| netlist.name_of(s).to_string();
    let module = ident(&netlist.name);
    // ports
    let mut port_decls = Vec::new();
    for (_, port) in netlist.ports() {
        let dir = match port.dir {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        port_decls.push((dir, ident(&name(port.name))));
    }
    let _ = writeln!(
        out,
        "module {module} ({});",
        port_decls
            .iter()
            .map(|(_, n)| n.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (dir, name) in &port_decls {
        let _ = writeln!(out, "  {dir} {name};");
    }
    // wires: one per net not directly a port passthrough
    for (_, net) in netlist.nets() {
        let _ = writeln!(out, "  wire {};", ident(&name(net.name)));
    }
    // port-to-net aliases
    for (pid, port) in netlist.ports() {
        // find the net touching this port
        for (_, net) in netlist.nets() {
            let on_net = net.pins().any(|p| matches!(p, PinRef::Port(q) if q == pid));
            if !on_net {
                continue;
            }
            match port.dir {
                PortDir::Input => {
                    let _ = writeln!(
                        out,
                        "  assign {} = {};",
                        ident(&name(net.name)),
                        ident(&name(port.name))
                    );
                }
                PortDir::Output => {
                    let _ = writeln!(
                        out,
                        "  assign {} = {};",
                        ident(&name(port.name)),
                        ident(&name(net.name))
                    );
                }
            }
        }
    }
    // instances: collect per-pin wires
    let mut conns: Vec<Vec<(String, String)>> = vec![Vec::new(); netlist.num_insts()];
    for (_, net) in netlist.nets() {
        let wire = ident(&name(net.name));
        for (k, pin) in net.pins().enumerate() {
            match pin {
                PinRef::InstOut(i) => {
                    debug_assert_eq!(k, 0, "outputs only drive");
                    conns[i.index()].push(("out".to_owned(), wire.clone()));
                }
                PinRef::InstIn(i, p) => {
                    conns[i.index()].push((format!("in{p}"), wire.clone()));
                }
                PinRef::Port(_) => {}
            }
        }
    }
    for (id, inst) in netlist.insts() {
        let master = match inst.master {
            InstMaster::Cell(m) => tech.cells.master(m).name.clone(),
            InstMaster::Macro(k) => k.to_string(),
        };
        let mut pins = conns[id.index()].clone();
        pins.sort();
        pins.dedup();
        let body = pins
            .iter()
            .map(|(p, w)| format!(".{p}({w})"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "  {} {} ({body});",
            ident(&master),
            ident(&name(inst.name))
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::ClockDomain;
    use foldic_tech::{CellKind, Drive, VthClass};

    fn tiny_netlist() -> (Netlist, Technology) {
        let tech = Technology::cmos28();
        let inv = InstMaster::Cell(tech.cells.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("tiny_top");
        let a = nl.add_port("a", PortDir::Input, ClockDomain::Cpu);
        let y = nl.add_port("y", PortDir::Output, ClockDomain::Cpu);
        let u1 = nl.add_inst("u1", inv);
        let u2 = nl.add_inst("u2", inv);
        let n0 = nl.add_net("n0");
        nl.connect_driver(n0, PinRef::port(a));
        nl.connect_sink(n0, PinRef::input(u1, 0));
        let n1 = nl.add_net("n1");
        nl.connect_driver(n1, PinRef::output(u1));
        nl.connect_sink(n1, PinRef::input(u2, 0));
        let n2 = nl.add_net("n2");
        nl.connect_driver(n2, PinRef::output(u2));
        nl.connect_sink(n2, PinRef::port(y));
        (nl, tech)
    }

    #[test]
    fn verilog_has_module_ports_wires_and_instances() {
        let (nl, tech) = tiny_netlist();
        let v = write_verilog(&nl, &tech);
        assert!(v.starts_with("module tiny_top (a, y);"));
        assert!(v.contains("input a;"));
        assert!(v.contains("output y;"));
        assert!(v.contains("wire n1;"));
        assert!(v.contains("INVX1_RVT u1 (.in0(n0), .out(n1));"));
        assert!(v.contains("assign n0 = a;"));
        assert!(v.contains("assign y = n2;"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn exotic_names_get_escaped() {
        assert_eq!(ident("u1"), "u1");
        assert_eq!(ident("n[3]"), "\\n[3] ");
        assert_eq!(ident("2bad"), "\\2bad ");
    }
}
