//! Typed arena indices.
//!
//! All database entities are stored in flat vectors and referenced by
//! typed `u32` newtypes, which keeps the hot physical-design loops free of
//! pointer chasing while preventing index mix-ups at compile time.

macro_rules! arena_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The wrapped index as `usize`.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $name(i as u32)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

arena_id!(
    /// Index of an instance inside a [`crate::Netlist`].
    InstId
);
arena_id!(
    /// Index of a net inside a [`crate::Netlist`].
    NetId
);
arena_id!(
    /// Index of a boundary port inside a [`crate::Netlist`].
    PortId
);
arena_id!(
    /// Index of a block inside a [`crate::Design`].
    BlockId
);
arena_id!(
    /// Index of an instance group (FUB, sub-crossbar) inside a
    /// [`crate::Netlist`].
    GroupId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let id = InstId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "InstId(42)");
        assert_ne!(InstId(1), InstId(2));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NetId(3) < NetId(10));
    }
}
