//! Flat gate-level netlist: instances, nets, ports.

use crate::block::{Port, PortDir};
use crate::{GroupId, InstId, NetId, PortId};
use foldic_geom::{Point, Tier};
use foldic_tech::cells::MasterId;
use foldic_tech::{MacroKind, Technology};

/// Clock domain of a net, port or block.
///
/// The T2 has two domains relevant to the study: the CPU clock (500 MHz
/// target) driving cores, caches and the crossbar, and the I/O clock
/// (250 MHz) driving the network interface unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockDomain {
    /// CPU clock domain (500 MHz in the study).
    Cpu,
    /// I/O clock domain (250 MHz in the study).
    Io,
}

impl ClockDomain {
    /// Clock frequency in GHz under `tech`.
    pub fn frequency_ghz(self, tech: &Technology) -> f64 {
        match self {
            ClockDomain::Cpu => tech.cpu_clock_ghz,
            ClockDomain::Io => tech.io_clock_ghz,
        }
    }

    /// Clock period in ps under `tech`.
    pub fn period_ps(self, tech: &Technology) -> f64 {
        1000.0 / self.frequency_ghz(tech)
    }
}

/// What an instance instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstMaster {
    /// A standard cell from the cell library.
    Cell(MasterId),
    /// A hard macro from the macro library.
    Macro(MacroKind),
}

impl InstMaster {
    /// `true` for hard macros.
    pub fn is_macro(self) -> bool {
        matches!(self, InstMaster::Macro(_))
    }
}

/// A placed instance of a cell or macro.
#[derive(Debug, Clone)]
pub struct Inst {
    /// Instance name.
    pub name: String,
    /// What is instantiated.
    pub master: InstMaster,
    /// Placement location (centre of the footprint) in block-local µm.
    pub pos: Point,
    /// Die assignment when the owning block is folded; `Tier::Bottom` for
    /// unfolded blocks.
    pub tier: Tier,
    /// `true` when the placer must not move the instance (pre-placed
    /// macros, pads).
    pub fixed: bool,
    /// Optional group membership (FUB inside SPC, PCX/CPX inside CCX).
    pub group: Option<GroupId>,
}

impl Inst {
    /// Footprint area in µm² under `tech`.
    pub fn area_um2(&self, tech: &Technology) -> f64 {
        match self.master {
            InstMaster::Cell(id) => tech.cells.master(id).area_um2,
            InstMaster::Macro(kind) => tech.macros.get(kind).area_um2(),
        }
    }

    /// Footprint width and height in µm under `tech`.
    pub fn dims_um(&self, tech: &Technology) -> (f64, f64) {
        match self.master {
            InstMaster::Cell(id) => {
                let m = tech.cells.master(id);
                (m.width_um, tech.row_height)
            }
            InstMaster::Macro(kind) => {
                let m = tech.macros.get(kind);
                (m.width_um, m.height_um)
            }
        }
    }

    /// Footprint rectangle centred on `pos` under `tech`.
    pub fn rect(&self, tech: &Technology) -> foldic_geom::Rect {
        let (w, h) = self.dims_um(tech);
        foldic_geom::Rect::centered(self.pos, w, h)
    }
}

/// A reference to one pin: an instance output, an instance input, or a
/// block boundary port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinRef {
    /// The (single) output pin of an instance.
    InstOut(InstId),
    /// The `pin`-th input pin of an instance.
    InstIn(InstId, u16),
    /// A boundary port of the owning block.
    Port(PortId),
}

impl PinRef {
    /// Reference to the output pin of `inst`.
    pub fn output(inst: InstId) -> Self {
        PinRef::InstOut(inst)
    }

    /// Reference to input pin `pin` of `inst`.
    pub fn input(inst: InstId, pin: u16) -> Self {
        PinRef::InstIn(inst, pin)
    }

    /// Reference to a boundary port.
    pub fn port(port: PortId) -> Self {
        PinRef::Port(port)
    }

    /// The instance this pin belongs to, if any.
    pub fn inst(self) -> Option<InstId> {
        match self {
            PinRef::InstOut(i) | PinRef::InstIn(i, _) => Some(i),
            PinRef::Port(_) => None,
        }
    }
}

/// A signal net with a single driver and zero or more sinks.
#[derive(Debug, Clone)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// The driving pin; `None` only transiently during construction.
    pub driver: Option<PinRef>,
    /// Fan-out pins.
    pub sinks: Vec<PinRef>,
    /// Clock domain the net toggles in.
    pub domain: ClockDomain,
    /// `true` for clock-distribution nets.
    pub is_clock: bool,
}

impl Net {
    /// Fan-out (sink count).
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }

    /// Iterates over every pin on the net, driver first.
    pub fn pins(&self) -> impl Iterator<Item = PinRef> + '_ {
        self.driver.into_iter().chain(self.sinks.iter().copied())
    }
}

/// A flat gate-level netlist.
#[derive(Debug, Clone)]
pub struct Netlist {
    /// Netlist (module) name.
    pub name: String,
    insts: Vec<Inst>,
    nets: Vec<Net>,
    ports: Vec<Port>,
    groups: Vec<String>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            insts: Vec::new(),
            nets: Vec::new(),
            ports: Vec::new(),
            groups: Vec::new(),
        }
    }

    // ---- construction -----------------------------------------------------

    /// Adds an unplaced, movable instance and returns its id.
    pub fn add_inst(&mut self, name: impl Into<String>, master: InstMaster) -> InstId {
        let id = InstId::from(self.insts.len());
        self.insts.push(Inst {
            name: name.into(),
            master,
            pos: Point::ORIGIN,
            tier: Tier::Bottom,
            fixed: false,
            group: None,
        });
        id
    }

    /// Adds an empty net and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId::from(self.nets.len());
        self.nets.push(Net {
            name: name.into(),
            driver: None,
            sinks: Vec::new(),
            domain: ClockDomain::Cpu,
            is_clock: false,
        });
        id
    }

    /// Adds a boundary port and returns its id.
    pub fn add_port(
        &mut self,
        name: impl Into<String>,
        dir: PortDir,
        domain: ClockDomain,
    ) -> PortId {
        let id = PortId::from(self.ports.len());
        self.ports.push(Port {
            name: name.into(),
            dir,
            domain,
            pos: Point::ORIGIN,
            tier: Tier::Bottom,
        });
        id
    }

    /// Registers a named instance group (FUB, sub-crossbar) and returns its
    /// id.
    pub fn add_group(&mut self, name: impl Into<String>) -> GroupId {
        let id = GroupId::from(self.groups.len());
        self.groups.push(name.into());
        id
    }

    /// Sets the driver pin of `net`.
    ///
    /// # Panics
    ///
    /// Panics if the net already has a driver.
    pub fn connect_driver(&mut self, net: NetId, pin: PinRef) {
        let n = &mut self.nets[net.index()];
        assert!(
            n.driver.is_none(),
            "net {} already driven by {:?}",
            n.name,
            n.driver
        );
        n.driver = Some(pin);
    }

    /// Appends a sink pin to `net`.
    pub fn connect_sink(&mut self, net: NetId, pin: PinRef) {
        self.nets[net.index()].sinks.push(pin);
    }

    /// Moves the sinks of `from` selected by `take` onto `to`.
    ///
    /// This is the primitive buffer insertion builds on: create a buffer,
    /// drive `to` with its output, move the far sinks over, and add the
    /// buffer input as a sink of `from`.
    pub fn move_sinks(&mut self, from: NetId, to: NetId, mut take: impl FnMut(PinRef) -> bool) {
        debug_assert_ne!(from, to);
        let mut moved = Vec::new();
        self.nets[from.index()].sinks.retain(|&s| {
            if take(s) {
                moved.push(s);
                false
            } else {
                true
            }
        });
        self.nets[to.index()].sinks.extend(moved);
    }

    // ---- access -----------------------------------------------------------

    /// The instance behind `id`.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutable access to the instance behind `id`.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// The net behind `id`.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Mutable access to the net behind `id`.
    pub fn net_mut(&mut self, id: NetId) -> &mut Net {
        &mut self.nets[id.index()]
    }

    /// The port behind `id`.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Mutable access to the port behind `id`.
    pub fn port_mut(&mut self, id: PortId) -> &mut Port {
        &mut self.ports[id.index()]
    }

    /// Name of group `id`.
    pub fn group_name(&self, id: GroupId) -> &str {
        &self.groups[id.index()]
    }

    /// Number of instances.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of boundary ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Number of registered groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Iterates over `(id, inst)` pairs.
    pub fn insts(&self) -> impl Iterator<Item = (InstId, &Inst)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, x)| (InstId::from(i), x))
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, x)| (NetId::from(i), x))
    }

    /// Iterates over `(id, port)` pairs.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .map(|(i, x)| (PortId::from(i), x))
    }

    /// All instance ids.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.insts.len()).map(InstId::from)
    }

    /// All net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len()).map(NetId::from)
    }

    // ---- geometry ---------------------------------------------------------

    /// Physical location of a pin: the owning instance's centre or the
    /// port's boundary location.
    pub fn pin_pos(&self, pin: PinRef) -> Point {
        match pin {
            PinRef::InstOut(i) | PinRef::InstIn(i, _) => self.inst(i).pos,
            PinRef::Port(p) => self.port(p).pos,
        }
    }

    /// Die (tier) of a pin.
    pub fn pin_tier(&self, pin: PinRef) -> Tier {
        match pin {
            PinRef::InstOut(i) | PinRef::InstIn(i, _) => self.inst(i).tier,
            PinRef::Port(p) => self.port(p).tier,
        }
    }

    /// `true` when the net spans both tiers (a 3D net needing a TSV or F2F
    /// via once the block is folded).
    pub fn net_is_3d(&self, id: NetId) -> bool {
        let mut tiers = self.net(id).pins().map(|p| self.pin_tier(p));
        match tiers.next() {
            None => false,
            Some(first) => tiers.any(|t| t != first),
        }
    }

    /// Builds the instance → nets incidence map (recomputed on demand
    /// because the netlist is freely mutable).
    pub fn inst_net_incidence(&self) -> Vec<Vec<NetId>> {
        let mut inc = vec![Vec::new(); self.insts.len()];
        for (nid, net) in self.nets() {
            for pin in net.pins() {
                if let Some(i) = pin.inst() {
                    let v: &mut Vec<NetId> = &mut inc[i.index()];
                    if v.last() != Some(&nid) {
                        v.push(nid);
                    }
                }
            }
        }
        inc
    }

    /// Total movable (non-fixed, non-macro) cell area in µm².
    pub fn movable_cell_area(&self, tech: &Technology) -> f64 {
        self.insts
            .iter()
            .filter(|i| !i.fixed && !i.master.is_macro())
            .map(|i| i.area_um2(tech))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_tech::{CellKind, Drive, VthClass};

    fn lib() -> foldic_tech::CellLibrary {
        foldic_tech::CellLibrary::cmos28()
    }

    fn inv(nl: &mut Netlist, name: &str) -> InstId {
        let id = lib().id_of(CellKind::Inv, Drive::X1, VthClass::Rvt);
        nl.add_inst(name, InstMaster::Cell(id))
    }

    #[test]
    fn build_and_query() {
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        let b = inv(&mut nl, "b");
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_sink(n, PinRef::input(b, 0));
        assert_eq!(nl.num_insts(), 2);
        assert_eq!(nl.net(n).fanout(), 1);
        assert_eq!(nl.net(n).pins().count(), 2);
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_driver_panics() {
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        let b = inv(&mut nl, "b");
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_driver(n, PinRef::output(b));
    }

    #[test]
    fn move_sinks_partitions_fanout() {
        let mut nl = Netlist::new("t");
        let d = inv(&mut nl, "d");
        let sinks: Vec<_> = (0..4).map(|i| inv(&mut nl, &format!("s{i}"))).collect();
        let n1 = nl.add_net("n1");
        nl.connect_driver(n1, PinRef::output(d));
        for &s in &sinks {
            nl.connect_sink(n1, PinRef::input(s, 0));
        }
        let n2 = nl.add_net("n2");
        let far: std::collections::HashSet<_> = sinks[2..].iter().copied().collect();
        nl.move_sinks(n1, n2, |p| p.inst().is_some_and(|i| far.contains(&i)));
        assert_eq!(nl.net(n1).fanout(), 2);
        assert_eq!(nl.net(n2).fanout(), 2);
    }

    #[test]
    fn tier_spanning_detection() {
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        let b = inv(&mut nl, "b");
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_sink(n, PinRef::input(b, 0));
        assert!(!nl.net_is_3d(n));
        nl.inst_mut(b).tier = Tier::Top;
        assert!(nl.net_is_3d(n));
    }

    #[test]
    fn incidence_map_dedups_per_net() {
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        let b = inv(&mut nl, "b");
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        // b appears twice on the same net (two input pins)
        nl.connect_sink(n, PinRef::input(b, 0));
        nl.connect_sink(n, PinRef::input(b, 1));
        let inc = nl.inst_net_incidence();
        assert_eq!(inc[b.index()], vec![n]);
    }

    #[test]
    fn inst_geometry_from_tech() {
        let tech = foldic_tech::Technology::cmos28();
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        nl.inst_mut(a).pos = Point::new(10.0, 10.0);
        let r = nl.inst(a).rect(&tech);
        assert!((r.area() - nl.inst(a).area_um2(&tech)).abs() < 1e-9);
        assert_eq!(r.center(), Point::new(10.0, 10.0));
    }

    #[test]
    fn clock_domain_periods() {
        let tech = foldic_tech::Technology::cmos28();
        assert_eq!(ClockDomain::Cpu.period_ps(&tech), 2000.0);
        assert_eq!(ClockDomain::Io.period_ps(&tech), 4000.0);
    }
}
