//! Flat gate-level netlist: instances, nets, ports.
//!
//! # Storage model
//!
//! The netlist is stored struct-of-arrays: one flat, exactly-indexed
//! array per field (names, masters, positions, …) instead of one struct
//! per entity, and net → pin fan-out lives in a CSR-style shared pin
//! pool (`pin_keys`/`pin_aux`) addressed by per-net `(offset, len,
//! capacity)` triples instead of a `Vec<PinRef>` per net. Names are
//! interned [`Symbol`]s (see [`crate::intern`]), resolved to text only at
//! formatting time. Rarely-used per-entity attributes (tier/fixed flags,
//! group membership, clock/domain flags, relocation capacities) are
//! **pay-for-use**: their arrays stay empty — meaning "all default" —
//! until the first non-default write materializes them.
//!
//! Two invariants make this refactor output-bit-preserving:
//!
//! * **Fill order is construction order.** `connect_sink` appends to the
//!   net's CSR span in call order; every accessor (`sinks`, `pins`,
//!   iteration) yields pins in exactly the order the old per-net `Vec`
//!   held them, so any order-sensitive accumulation downstream (HPWL
//!   sums, SA move sequences, report rows) sees identical sequences.
//! * **Relocation is invisible.** When a net's span cannot grow in place
//!   it is copied to the pool tail with doubled capacity (old slots
//!   become garbage). Only `offset` changes — never the per-net pin
//!   sequence — so interleaved construction (the clock-trunk pattern in
//!   `foldic-t2`) costs O(n log n) pool traffic, bounded slack, and zero
//!   behavioral difference.
//!
//! Accessors return small by-value views ([`Inst`], [`Net`]) or
//! write-back guards ([`InstMut`], [`NetMut`]) so call sites keep the
//! field-access style of the old struct-per-entity API.

use crate::block::{Port, PortDir};
use crate::intern::{DerivedName, Interner, NameRef, Symbol, Tmpl};
use crate::{GroupId, InstId, NetId, PortId};
use foldic_geom::{Point, Tier};
use foldic_tech::cells::MasterId;
use foldic_tech::{MacroKind, Technology};
use std::ops::{Deref, DerefMut};

/// Clock domain of a net, port or block.
///
/// The T2 has two domains relevant to the study: the CPU clock (500 MHz
/// target) driving cores, caches and the crossbar, and the I/O clock
/// (250 MHz) driving the network interface unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockDomain {
    /// CPU clock domain (500 MHz in the study).
    Cpu,
    /// I/O clock domain (250 MHz in the study).
    Io,
}

impl ClockDomain {
    /// Clock frequency in GHz under `tech`.
    pub fn frequency_ghz(self, tech: &Technology) -> f64 {
        match self {
            ClockDomain::Cpu => tech.cpu_clock_ghz,
            ClockDomain::Io => tech.io_clock_ghz,
        }
    }

    /// Clock period in ps under `tech`.
    pub fn period_ps(self, tech: &Technology) -> f64 {
        1000.0 / self.frequency_ghz(tech)
    }
}

/// What an instance instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstMaster {
    /// A standard cell from the cell library.
    Cell(MasterId),
    /// A hard macro from the macro library.
    Macro(MacroKind),
}

impl InstMaster {
    /// `true` for hard macros.
    pub fn is_macro(self) -> bool {
        matches!(self, InstMaster::Macro(_))
    }
}

/// Packed master encoding: bit 31 selects macro (index into
/// [`MacroKind::ALL`]) vs standard cell ([`MasterId`] payload).
const MASTER_MACRO_BIT: u32 = 1 << 31;

pub(crate) fn encode_master(m: InstMaster) -> u32 {
    match m {
        InstMaster::Cell(id) => {
            debug_assert!(id.0 < MASTER_MACRO_BIT);
            id.0
        }
        InstMaster::Macro(kind) => {
            let idx = MacroKind::ALL
                .iter()
                .position(|k| *k == kind)
                .expect("MacroKind::ALL covers every kind") as u32;
            MASTER_MACRO_BIT | idx
        }
    }
}

pub(crate) fn decode_master(raw: u32) -> InstMaster {
    if raw & MASTER_MACRO_BIT != 0 {
        InstMaster::Macro(MacroKind::ALL[(raw & !MASTER_MACRO_BIT) as usize])
    } else {
        InstMaster::Cell(MasterId(raw))
    }
}

/// `true` when `raw` decodes to a structurally valid master (snapshot
/// validation; cell ids are checked against the library elsewhere).
pub(crate) fn master_raw_valid(raw: u32) -> bool {
    raw & MASTER_MACRO_BIT == 0 || ((raw & !MASTER_MACRO_BIT) as usize) < MacroKind::ALL.len()
}

/// A reference to one pin: an instance output, an instance input, or a
/// block boundary port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinRef {
    /// The (single) output pin of an instance.
    InstOut(InstId),
    /// The `pin`-th input pin of an instance.
    InstIn(InstId, u16),
    /// A boundary port of the owning block.
    Port(PortId),
}

impl PinRef {
    /// Reference to the output pin of `inst`.
    pub fn output(inst: InstId) -> Self {
        PinRef::InstOut(inst)
    }

    /// Reference to input pin `pin` of `inst`.
    pub fn input(inst: InstId, pin: u16) -> Self {
        PinRef::InstIn(inst, pin)
    }

    /// Reference to a boundary port.
    pub fn port(port: PortId) -> Self {
        PinRef::Port(port)
    }

    /// The instance this pin belongs to, if any.
    pub fn inst(self) -> Option<InstId> {
        match self {
            PinRef::InstOut(i) | PinRef::InstIn(i, _) => Some(i),
            PinRef::Port(_) => None,
        }
    }
}

/// Packed pin encoding: 2-bit tag in the key's top bits, 30-bit entity
/// id below, input-pin number in a parallel `u16` array. 6 bytes per
/// pin instead of a 8-byte `PinRef` plus `Vec` headers.
const PIN_TAG_SHIFT: u32 = 30;
const PIN_ID_MASK: u32 = (1 << PIN_TAG_SHIFT) - 1;
const PIN_TAG_OUT: u32 = 0;
const PIN_TAG_IN: u32 = 1;
const PIN_TAG_PORT: u32 = 2;
/// Driver slot value for "no driver" (an all-ones key is tag 3, which
/// no valid pin uses).
const PIN_NONE: u32 = u32::MAX;

pub(crate) fn encode_pin(pin: PinRef) -> (u32, u16) {
    let (tag, id, aux) = match pin {
        PinRef::InstOut(i) => (PIN_TAG_OUT, i.0, 0),
        PinRef::InstIn(i, pin) => (PIN_TAG_IN, i.0, pin),
        PinRef::Port(p) => (PIN_TAG_PORT, p.0, 0),
    };
    debug_assert!(id <= PIN_ID_MASK);
    ((tag << PIN_TAG_SHIFT) | id, aux)
}

pub(crate) fn decode_pin(key: u32, aux: u16) -> PinRef {
    let id = key & PIN_ID_MASK;
    match key >> PIN_TAG_SHIFT {
        PIN_TAG_OUT => PinRef::InstOut(InstId(id)),
        PIN_TAG_IN => PinRef::InstIn(InstId(id), aux),
        PIN_TAG_PORT => PinRef::Port(PortId(id)),
        _ => unreachable!("invalid pin tag"),
    }
}

/// `true` when `(key, aux)` decodes to a structurally valid pin with the
/// entity id in range (snapshot validation).
pub(crate) fn pin_raw_valid(key: u32, aux: u16, n_insts: u32, n_ports: u32) -> bool {
    let id = key & PIN_ID_MASK;
    match key >> PIN_TAG_SHIFT {
        PIN_TAG_OUT => id < n_insts && aux == 0,
        PIN_TAG_IN => id < n_insts,
        PIN_TAG_PORT => id < n_ports && aux == 0,
        _ => false,
    }
}

/// Instance flag bits (pay-for-use `inst_flags` array).
const FLAG_TOP: u8 = 1;
const FLAG_FIXED: u8 = 1 << 1;
/// Net flag bits (pay-for-use `net_flags` array).
const FLAG_IO: u8 = 1;
const FLAG_CLOCK: u8 = 1 << 1;
/// `inst_groups` value for "no group".
const GROUP_NONE: u32 = u32::MAX;

/// By-value view of one placed instance (a decode of the SoA columns;
/// mutate through [`Netlist::inst_mut`]).
#[derive(Debug, Clone, Copy)]
pub struct Inst {
    /// Instance name (resolve via [`Netlist::name_of`]).
    pub name: Symbol,
    /// What is instantiated.
    pub master: InstMaster,
    /// Placement location (centre of the footprint) in block-local µm.
    pub pos: Point,
    /// Die assignment when the owning block is folded; `Tier::Bottom` for
    /// unfolded blocks.
    pub tier: Tier,
    /// `true` when the placer must not move the instance (pre-placed
    /// macros, pads).
    pub fixed: bool,
    /// Optional group membership (FUB inside SPC, PCX/CPX inside CCX).
    pub group: Option<GroupId>,
}

impl Inst {
    /// Footprint area in µm² under `tech`.
    pub fn area_um2(&self, tech: &Technology) -> f64 {
        match self.master {
            InstMaster::Cell(id) => tech.cells.master(id).area_um2,
            InstMaster::Macro(kind) => tech.macros.get(kind).area_um2(),
        }
    }

    /// Footprint width and height in µm under `tech`.
    pub fn dims_um(&self, tech: &Technology) -> (f64, f64) {
        match self.master {
            InstMaster::Cell(id) => {
                let m = tech.cells.master(id);
                (m.width_um, tech.row_height)
            }
            InstMaster::Macro(kind) => {
                let m = tech.macros.get(kind);
                (m.width_um, m.height_um)
            }
        }
    }

    /// Footprint rectangle centred on `pos` under `tech`.
    pub fn rect(&self, tech: &Technology) -> foldic_geom::Rect {
        let (w, h) = self.dims_um(tech);
        foldic_geom::Rect::centered(self.pos, w, h)
    }
}

/// Write-back guard for one instance: dereferences to [`Inst`], and the
/// edited view is encoded back into the SoA columns on drop, so
/// `nl.inst_mut(id).pos = p;` keeps working.
pub struct InstMut<'a> {
    nl: &'a mut Netlist,
    id: InstId,
    view: Inst,
}

impl Deref for InstMut<'_> {
    type Target = Inst;
    fn deref(&self) -> &Inst {
        &self.view
    }
}

impl DerefMut for InstMut<'_> {
    fn deref_mut(&mut self) -> &mut Inst {
        &mut self.view
    }
}

impl Drop for InstMut<'_> {
    fn drop(&mut self) {
        self.nl.write_inst(self.id, self.view);
    }
}

/// Mutable core of a net (everything except the CSR-backed sink list,
/// which is edited through [`Netlist::connect_sink`] and friends).
#[derive(Debug, Clone, Copy)]
pub struct NetData {
    /// Net name (resolve via [`Netlist::name_of`]).
    pub name: Symbol,
    /// The driving pin; `None` only transiently during construction.
    pub driver: Option<PinRef>,
    /// Clock domain the net toggles in.
    pub domain: ClockDomain,
    /// `true` for clock-distribution nets.
    pub is_clock: bool,
}

/// By-value view of one net. Carries a borrow of the netlist so sink and
/// pin iteration work directly on the view.
#[derive(Clone, Copy)]
pub struct Net<'a> {
    nl: &'a Netlist,
    id: NetId,
    /// Net name (resolve via [`Netlist::name_of`]).
    pub name: Symbol,
    /// The driving pin; `None` only transiently during construction.
    pub driver: Option<PinRef>,
    /// Clock domain the net toggles in.
    pub domain: ClockDomain,
    /// `true` for clock-distribution nets.
    pub is_clock: bool,
}

impl<'a> Net<'a> {
    /// Fan-out (sink count).
    pub fn fanout(&self) -> usize {
        self.nl.net_len[self.id.index()] as usize
    }

    /// The `k`-th sink pin, in `connect_sink` order.
    pub fn sink(&self, k: usize) -> PinRef {
        let (keys, aux) = self.nl.net_span(self.id);
        decode_pin(keys[k], aux[k])
    }

    /// Iterates over the sink pins in `connect_sink` order.
    pub fn sinks(self) -> impl ExactSizeIterator<Item = PinRef> + Clone + 'a {
        let (keys, aux) = self.nl.net_span(self.id);
        keys.iter().zip(aux).map(|(&k, &a)| decode_pin(k, a))
    }

    /// Iterates over every pin on the net, driver first.
    pub fn pins(self) -> impl Iterator<Item = PinRef> + Clone + 'a {
        self.driver.into_iter().chain(self.sinks())
    }
}

impl std::fmt::Debug for Net<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Net")
            .field("name", &self.nl.name_of(self.name))
            .field("driver", &self.driver)
            .field("fanout", &self.fanout())
            .field("domain", &self.domain)
            .field("is_clock", &self.is_clock)
            .finish()
    }
}

/// Write-back guard for one net's core fields: dereferences to
/// [`NetData`], written back into the SoA columns on drop, so
/// `nl.net_mut(id).is_clock = true;` keeps working.
pub struct NetMut<'a> {
    nl: &'a mut Netlist,
    id: NetId,
    view: NetData,
}

impl Deref for NetMut<'_> {
    type Target = NetData;
    fn deref(&self) -> &NetData {
        &self.view
    }
}

impl DerefMut for NetMut<'_> {
    fn deref_mut(&mut self) -> &mut NetData {
        &mut self.view
    }
}

impl Drop for NetMut<'_> {
    fn drop(&mut self) {
        self.nl.write_net(self.id, self.view);
    }
}

/// A name acceptable to the construction API: plain text (interned), a
/// pre-interned [`Symbol`] of this netlist, or a [`Tmpl::at`] derived
/// name (the million-cell path: no per-entity string is ever built).
pub trait IntoName {
    /// Resolves to a symbol in `interner`.
    fn into_symbol(self, interner: &mut Interner) -> Symbol;
}

impl IntoName for &str {
    fn into_symbol(self, interner: &mut Interner) -> Symbol {
        interner.intern(self)
    }
}

impl IntoName for &String {
    fn into_symbol(self, interner: &mut Interner) -> Symbol {
        interner.intern(self)
    }
}

impl IntoName for String {
    fn into_symbol(self, interner: &mut Interner) -> Symbol {
        interner.intern(&self)
    }
}

impl IntoName for Symbol {
    fn into_symbol(self, _: &mut Interner) -> Symbol {
        self
    }
}

impl IntoName for DerivedName {
    fn into_symbol(self, interner: &mut Interner) -> Symbol {
        interner.derived(self)
    }
}

/// Instance → nets incidence in CSR form (offsets + one flat id array),
/// the replacement for the old `Vec<Vec<NetId>>` map.
#[derive(Debug, Clone)]
pub struct Adjacency {
    offsets: Vec<u32>,
    data: Vec<NetId>,
}

impl Adjacency {
    /// The nets incident to `inst`, each listed once, in net-id order of
    /// first touch (identical to the old per-inst `Vec` contents).
    pub fn row(&self, inst: InstId) -> &[NetId] {
        let i = inst.index();
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of rows (instances).
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A flat gate-level netlist.
#[derive(Debug, Clone)]
pub struct Netlist {
    /// Netlist (module) name.
    pub name: String,
    pub(crate) interner: Interner,
    // Instance columns (exact length = instance count).
    pub(crate) inst_names: Vec<Symbol>,
    pub(crate) inst_masters: Vec<u32>,
    pub(crate) inst_pos: Vec<Point>,
    /// Pay-for-use: empty ⇒ every instance is Bottom-tier and movable.
    pub(crate) inst_flags: Vec<u8>,
    /// Pay-for-use: empty ⇒ no instance has a group.
    pub(crate) inst_groups: Vec<u32>,
    // Net columns.
    pub(crate) net_names: Vec<Symbol>,
    pub(crate) net_driver_key: Vec<u32>,
    pub(crate) net_driver_aux: Vec<u16>,
    pub(crate) net_off: Vec<u32>,
    pub(crate) net_len: Vec<u32>,
    /// Pay-for-use: empty ⇒ every net's capacity equals its length
    /// (true until the first post-construction relocation).
    pub(crate) net_caps: Vec<u32>,
    /// Pay-for-use: empty ⇒ every net is Cpu-domain, non-clock.
    pub(crate) net_flags: Vec<u8>,
    // Shared CSR pin pool (sinks only; drivers live in their columns).
    pub(crate) pin_keys: Vec<u32>,
    pub(crate) pin_aux: Vec<u16>,
    pub(crate) ports: Vec<Port>,
    pub(crate) groups: Vec<Symbol>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            interner: Interner::default(),
            inst_names: Vec::new(),
            inst_masters: Vec::new(),
            inst_pos: Vec::new(),
            inst_flags: Vec::new(),
            inst_groups: Vec::new(),
            net_names: Vec::new(),
            net_driver_key: Vec::new(),
            net_driver_aux: Vec::new(),
            net_off: Vec::new(),
            net_len: Vec::new(),
            net_caps: Vec::new(),
            net_flags: Vec::new(),
            pin_keys: Vec::new(),
            pin_aux: Vec::new(),
            ports: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// Creates an empty netlist with exact-capacity columns for a known
    /// entity census (the streaming-construction path: no growth
    /// reallocations, no slack).
    pub fn with_capacity(name: impl Into<String>, insts: usize, nets: usize, pins: usize) -> Self {
        let mut nl = Self::new(name);
        nl.inst_names.reserve_exact(insts);
        nl.inst_masters.reserve_exact(insts);
        nl.inst_pos.reserve_exact(insts);
        nl.net_names.reserve_exact(nets);
        nl.net_driver_key.reserve_exact(nets);
        nl.net_driver_aux.reserve_exact(nets);
        nl.net_off.reserve_exact(nets);
        nl.net_len.reserve_exact(nets);
        nl.pin_keys.reserve_exact(pins);
        nl.pin_aux.reserve_exact(pins);
        nl
    }

    // ---- naming -----------------------------------------------------------

    /// Registers a `{prefix}{index}{suffix}` derived-name template; name
    /// entities with `tmpl.at(i)` without building any string.
    pub fn name_template(&mut self, prefix: &str, suffix: &str) -> Tmpl {
        self.interner.template(prefix, suffix)
    }

    /// Interns a one-off name.
    pub fn intern(&mut self, text: &str) -> Symbol {
        self.interner.intern(text)
    }

    /// Resolves a symbol to its displayable text (formatting-time only;
    /// the hot paths never resolve names).
    pub fn name_of(&self, sym: Symbol) -> NameRef<'_> {
        self.interner.name(sym)
    }

    // ---- construction -----------------------------------------------------

    /// Adds an unplaced, movable instance and returns its id.
    pub fn add_inst(&mut self, name: impl IntoName, master: InstMaster) -> InstId {
        let id = InstId::from(self.inst_names.len());
        let sym = name.into_symbol(&mut self.interner);
        self.inst_names.push(sym);
        self.inst_masters.push(encode_master(master));
        self.inst_pos.push(Point::ORIGIN);
        if !self.inst_flags.is_empty() {
            self.inst_flags.push(0);
        }
        if !self.inst_groups.is_empty() {
            self.inst_groups.push(GROUP_NONE);
        }
        id
    }

    /// Adds an empty net and returns its id.
    pub fn add_net(&mut self, name: impl IntoName) -> NetId {
        let id = NetId::from(self.net_names.len());
        let sym = name.into_symbol(&mut self.interner);
        self.net_names.push(sym);
        self.net_driver_key.push(PIN_NONE);
        self.net_driver_aux.push(0);
        self.net_off.push(self.pin_keys.len() as u32);
        self.net_len.push(0);
        if !self.net_caps.is_empty() {
            self.net_caps.push(0);
        }
        if !self.net_flags.is_empty() {
            self.net_flags.push(0);
        }
        id
    }

    /// Adds a boundary port and returns its id.
    pub fn add_port(&mut self, name: impl IntoName, dir: PortDir, domain: ClockDomain) -> PortId {
        let id = PortId::from(self.ports.len());
        let sym = name.into_symbol(&mut self.interner);
        self.ports.push(Port {
            name: sym,
            dir,
            domain,
            pos: Point::ORIGIN,
            tier: Tier::Bottom,
        });
        id
    }

    /// Registers a named instance group (FUB, sub-crossbar) and returns its
    /// id.
    pub fn add_group(&mut self, name: &str) -> GroupId {
        let id = GroupId::from(self.groups.len());
        let sym = self.interner.intern(name);
        self.groups.push(sym);
        id
    }

    /// Sets the driver pin of `net`.
    ///
    /// # Panics
    ///
    /// Panics if the net already has a driver.
    pub fn connect_driver(&mut self, net: NetId, pin: PinRef) {
        let i = net.index();
        assert!(
            self.net_driver_key[i] == PIN_NONE,
            "net {} already driven by {:?}",
            self.interner.name(self.net_names[i]),
            decode_pin(self.net_driver_key[i], self.net_driver_aux[i])
        );
        let (key, aux) = encode_pin(pin);
        self.net_driver_key[i] = key;
        self.net_driver_aux[i] = aux;
    }

    /// Capacity of net `i`'s CSR span.
    fn cap_of(&self, i: usize) -> u32 {
        if self.net_caps.is_empty() {
            self.net_len[i]
        } else {
            self.net_caps[i]
        }
    }

    fn materialize_caps(&mut self) {
        if self.net_caps.is_empty() {
            self.net_caps = self.net_len.clone();
        }
    }

    /// Appends a sink pin to `net`.
    ///
    /// Tail nets extend in place; a net that can no longer grow in place
    /// relocates its span to the pool tail with doubled capacity (old
    /// slots become garbage — bounded by the doubling, reclaimed only by
    /// rebuilding the netlist). Per-net pin order is always preserved.
    pub fn connect_sink(&mut self, net: NetId, pin: PinRef) {
        let (key, aux) = encode_pin(pin);
        let i = net.index();
        let len = self.net_len[i] as usize;
        let cap = self.cap_of(i) as usize;
        let off = self.net_off[i] as usize;
        let tail = self.pin_keys.len();
        if len == 0 && cap == 0 {
            // first sink: claim the pool tail
            self.net_off[i] = tail as u32;
            self.pin_keys.push(key);
            self.pin_aux.push(aux);
            self.net_len[i] = 1;
            if !self.net_caps.is_empty() {
                self.net_caps[i] = 1;
            }
        } else if len < cap {
            // spare capacity from an earlier relocation or clear
            self.pin_keys[off + len] = key;
            self.pin_aux[off + len] = aux;
            self.net_len[i] += 1;
        } else if off + len == tail {
            // the net owns the pool tail: extend in place
            self.pin_keys.push(key);
            self.pin_aux.push(aux);
            self.net_len[i] += 1;
            if !self.net_caps.is_empty() {
                self.net_caps[i] = self.net_len[i];
            }
        } else {
            // relocate to the tail with doubled capacity
            let new_cap = (len + 1).next_power_of_two().max(4);
            self.materialize_caps();
            self.pin_keys.extend_from_within(off..off + len);
            self.pin_aux.extend_from_within(off..off + len);
            self.pin_keys.push(key);
            self.pin_aux.push(aux);
            self.pin_keys.resize(tail + new_cap, 0);
            self.pin_aux.resize(tail + new_cap, 0);
            self.net_off[i] = tail as u32;
            self.net_len[i] = (len + 1) as u32;
            self.net_caps[i] = new_cap as u32;
        }
    }

    /// Drops every sink of `net` (capacity, if any, is retained for
    /// reuse; the driver is untouched).
    pub fn clear_sinks(&mut self, net: NetId) {
        let i = net.index();
        if self.net_caps.is_empty() && self.net_len[i] > 0 {
            // keep the span reusable instead of leaking it as garbage
            self.materialize_caps();
        }
        self.net_len[i] = 0;
    }

    /// Replaces the sinks of `net` with `sinks`, in the given order
    /// (in place when the span has room, else relocated to the tail).
    pub fn set_sinks(&mut self, net: NetId, sinks: &[PinRef]) {
        let i = net.index();
        let cap = self.cap_of(i) as usize;
        if sinks.len() > cap {
            self.materialize_caps();
            self.net_off[i] = self.pin_keys.len() as u32;
            self.net_caps[i] = sinks.len() as u32;
            for &pin in sinks {
                let (key, aux) = encode_pin(pin);
                self.pin_keys.push(key);
                self.pin_aux.push(aux);
            }
        } else {
            if !self.net_caps.is_empty() {
                // capacity is already tracked; reuse the span
            } else if sinks.len() < self.net_len[i] as usize {
                // shrinking under lazy caps would forget the span's true
                // size; start tracking capacities first
                self.materialize_caps();
            }
            let off = self.net_off[i] as usize;
            for (k, &pin) in sinks.iter().enumerate() {
                let (key, aux) = encode_pin(pin);
                self.pin_keys[off + k] = key;
                self.pin_aux[off + k] = aux;
            }
        }
        self.net_len[i] = sinks.len() as u32;
    }

    /// Moves the sinks of `from` selected by `take` onto `to`.
    ///
    /// This is the primitive buffer insertion builds on: create a buffer,
    /// drive `to` with its output, move the far sinks over, and add the
    /// buffer input as a sink of `from`. Relative order is preserved on
    /// both nets.
    pub fn move_sinks(&mut self, from: NetId, to: NetId, mut take: impl FnMut(PinRef) -> bool) {
        debug_assert_ne!(from, to);
        let mut moved = Vec::new();
        let mut kept = Vec::new();
        for pin in self.net(from).sinks() {
            if take(pin) {
                moved.push(pin);
            } else {
                kept.push(pin);
            }
        }
        self.set_sinks(from, &kept);
        for pin in moved {
            self.connect_sink(to, pin);
        }
    }

    // ---- access -----------------------------------------------------------

    /// The sink span of `net` in the pin pool.
    fn net_span(&self, net: NetId) -> (&[u32], &[u16]) {
        let i = net.index();
        let off = self.net_off[i] as usize;
        let len = self.net_len[i] as usize;
        if len == 0 {
            (&[], &[])
        } else {
            (
                &self.pin_keys[off..off + len],
                &self.pin_aux[off..off + len],
            )
        }
    }

    fn inst_flag(&self, i: usize) -> u8 {
        self.inst_flags.get(i).copied().unwrap_or(0)
    }

    fn net_flag(&self, i: usize) -> u8 {
        self.net_flags.get(i).copied().unwrap_or(0)
    }

    /// The instance behind `id`, as a by-value view.
    pub fn inst(&self, id: InstId) -> Inst {
        let i = id.index();
        let flags = self.inst_flag(i);
        let group = self
            .inst_groups
            .get(i)
            .copied()
            .filter(|&g| g != GROUP_NONE)
            .map(GroupId);
        Inst {
            name: self.inst_names[i],
            master: decode_master(self.inst_masters[i]),
            pos: self.inst_pos[i],
            tier: if flags & FLAG_TOP != 0 {
                Tier::Top
            } else {
                Tier::Bottom
            },
            fixed: flags & FLAG_FIXED != 0,
            group,
        }
    }

    fn write_inst(&mut self, id: InstId, v: Inst) {
        let i = id.index();
        self.inst_names[i] = v.name;
        self.inst_masters[i] = encode_master(v.master);
        self.inst_pos[i] = v.pos;
        let mut flags = 0u8;
        if v.tier == Tier::Top {
            flags |= FLAG_TOP;
        }
        if v.fixed {
            flags |= FLAG_FIXED;
        }
        if flags != 0 || !self.inst_flags.is_empty() {
            if self.inst_flags.is_empty() {
                self.inst_flags = vec![0; self.inst_names.len()];
            }
            self.inst_flags[i] = flags;
        }
        let group = v.group.map_or(GROUP_NONE, |g| g.0);
        if group != GROUP_NONE || !self.inst_groups.is_empty() {
            if self.inst_groups.is_empty() {
                self.inst_groups = vec![GROUP_NONE; self.inst_names.len()];
            }
            self.inst_groups[i] = group;
        }
    }

    /// Write-back guard for the instance behind `id`.
    pub fn inst_mut(&mut self, id: InstId) -> InstMut<'_> {
        let view = self.inst(id);
        InstMut { nl: self, id, view }
    }

    /// The net behind `id`, as a by-value view.
    pub fn net(&self, id: NetId) -> Net<'_> {
        let i = id.index();
        let key = self.net_driver_key[i];
        let flags = self.net_flag(i);
        Net {
            nl: self,
            id,
            name: self.net_names[i],
            driver: (key != PIN_NONE).then(|| decode_pin(key, self.net_driver_aux[i])),
            domain: if flags & FLAG_IO != 0 {
                ClockDomain::Io
            } else {
                ClockDomain::Cpu
            },
            is_clock: flags & FLAG_CLOCK != 0,
        }
    }

    fn write_net(&mut self, id: NetId, v: NetData) {
        let i = id.index();
        self.net_names[i] = v.name;
        match v.driver {
            Some(pin) => {
                let (key, aux) = encode_pin(pin);
                self.net_driver_key[i] = key;
                self.net_driver_aux[i] = aux;
            }
            None => {
                self.net_driver_key[i] = PIN_NONE;
                self.net_driver_aux[i] = 0;
            }
        }
        let mut flags = 0u8;
        if v.domain == ClockDomain::Io {
            flags |= FLAG_IO;
        }
        if v.is_clock {
            flags |= FLAG_CLOCK;
        }
        if flags != 0 || !self.net_flags.is_empty() {
            if self.net_flags.is_empty() {
                self.net_flags = vec![0; self.net_names.len()];
            }
            self.net_flags[i] = flags;
        }
    }

    /// Write-back guard for the core fields of the net behind `id`.
    pub fn net_mut(&mut self, id: NetId) -> NetMut<'_> {
        let n = self.net(id);
        let view = NetData {
            name: n.name,
            driver: n.driver,
            domain: n.domain,
            is_clock: n.is_clock,
        };
        NetMut { nl: self, id, view }
    }

    /// The port behind `id`.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Mutable access to the port behind `id`.
    pub fn port_mut(&mut self, id: PortId) -> &mut Port {
        &mut self.ports[id.index()]
    }

    /// Name of group `id`.
    pub fn group_name(&self, id: GroupId) -> &str {
        self.interner
            .as_plain(self.groups[id.index()])
            .expect("group names are plain symbols")
    }

    /// Number of instances.
    pub fn num_insts(&self) -> usize {
        self.inst_names.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of boundary ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Number of registered groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Iterates over `(id, inst)` pairs.
    pub fn insts(&self) -> impl Iterator<Item = (InstId, Inst)> + '_ {
        (0..self.inst_names.len()).map(|i| (InstId::from(i), self.inst(InstId::from(i))))
    }

    /// Iterates over `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, Net<'_>)> {
        (0..self.net_names.len()).map(|i| (NetId::from(i), self.net(NetId::from(i))))
    }

    /// Iterates over `(id, port)` pairs.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .map(|(i, x)| (PortId::from(i), x))
    }

    /// All instance ids.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.inst_names.len()).map(InstId::from)
    }

    /// All net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.net_names.len()).map(NetId::from)
    }

    // ---- geometry ---------------------------------------------------------

    /// Physical location of a pin: the owning instance's centre or the
    /// port's boundary location.
    pub fn pin_pos(&self, pin: PinRef) -> Point {
        match pin {
            PinRef::InstOut(i) | PinRef::InstIn(i, _) => self.inst_pos[i.index()],
            PinRef::Port(p) => self.port(p).pos,
        }
    }

    /// Die (tier) of a pin.
    pub fn pin_tier(&self, pin: PinRef) -> Tier {
        match pin {
            PinRef::InstOut(i) | PinRef::InstIn(i, _) => {
                if self.inst_flag(i.index()) & FLAG_TOP != 0 {
                    Tier::Top
                } else {
                    Tier::Bottom
                }
            }
            PinRef::Port(p) => self.port(p).tier,
        }
    }

    /// `true` when the net spans both tiers (a 3D net needing a TSV or F2F
    /// via once the block is folded).
    pub fn net_is_3d(&self, id: NetId) -> bool {
        let mut tiers = self.net(id).pins().map(|p| self.pin_tier(p));
        match tiers.next() {
            None => false,
            Some(first) => tiers.any(|t| t != first),
        }
    }

    /// Builds the instance → nets incidence map in CSR form (recomputed
    /// on demand because the netlist is freely mutable). Each net appears
    /// at most once per instance, in the same order the old
    /// `Vec<Vec<NetId>>` map listed them.
    pub fn inst_net_incidence(&self) -> Adjacency {
        let n = self.inst_names.len();
        // stamp[i] = last net counted for inst i (two passes, two stamps)
        let mut stamp = vec![u32::MAX; n];
        let mut counts = vec![0u32; n];
        for (nid, net) in self.nets() {
            for pin in net.pins() {
                if let Some(i) = pin.inst() {
                    if stamp[i.index()] != nid.0 {
                        stamp[i.index()] = nid.0;
                        counts[i.index()] += 1;
                    }
                }
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut data = vec![NetId(0); total as usize];
        stamp.fill(u32::MAX);
        for (nid, net) in self.nets() {
            for pin in net.pins() {
                if let Some(i) = pin.inst() {
                    if stamp[i.index()] != nid.0 {
                        stamp[i.index()] = nid.0;
                        data[cursor[i.index()] as usize] = nid;
                        cursor[i.index()] += 1;
                    }
                }
            }
        }
        Adjacency { offsets, data }
    }

    /// Total movable (non-fixed, non-macro) cell area in µm².
    pub fn movable_cell_area(&self, tech: &Technology) -> f64 {
        (0..self.inst_names.len())
            .filter(|&i| {
                self.inst_flag(i) & FLAG_FIXED == 0 && self.inst_masters[i] & MASTER_MACRO_BIT == 0
            })
            .map(|i| tech.cells.master(MasterId(self.inst_masters[i])).area_um2)
            .sum()
    }

    /// Heap bytes resident in this netlist's arrays and symbol table
    /// (exact capacities; the scaling bench's bytes/cell numerator).
    pub fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        let vecs = (self.inst_names.capacity() * size_of::<Symbol>()
            + self.inst_masters.capacity() * size_of::<u32>()
            + self.inst_pos.capacity() * size_of::<Point>()
            + self.inst_flags.capacity()
            + self.inst_groups.capacity() * size_of::<u32>()
            + self.net_names.capacity() * size_of::<Symbol>()
            + self.net_driver_key.capacity() * size_of::<u32>()
            + self.net_driver_aux.capacity() * size_of::<u16>()
            + self.net_off.capacity() * size_of::<u32>()
            + self.net_len.capacity() * size_of::<u32>()
            + self.net_caps.capacity() * size_of::<u32>()
            + self.net_flags.capacity()
            + self.pin_keys.capacity() * size_of::<u32>()
            + self.pin_aux.capacity() * size_of::<u16>()
            + self.ports.capacity() * size_of::<Port>()
            + self.groups.capacity() * size_of::<Symbol>()) as u64;
        self.name.capacity() as u64 + self.interner.heap_bytes() + vecs
    }
}

/// Streaming construction helper: a netlist with exact-capacity columns
/// reserved from an up-front entity census.
///
/// Generators that know their counts (every `foldic-t2` block does)
/// build through this so construction never reallocates: peak memory is
/// exactly the finished block, and a design streams block-by-block with
/// peak O(current block), not O(design). [`finish`](Self::finish)
/// debug-asserts the census was honest.
pub struct NetlistBuilder {
    nl: Netlist,
    insts: usize,
    nets: usize,
    pins: usize,
}

impl NetlistBuilder {
    /// Starts a netlist sized for exactly `insts`/`nets`/`pins` entities.
    pub fn new(name: impl Into<String>, insts: usize, nets: usize, pins: usize) -> Self {
        Self {
            nl: Netlist::with_capacity(name, insts, nets, pins),
            insts,
            nets,
            pins,
        }
    }

    /// The netlist under construction, exposing the full mutation API.
    pub fn finish(self) -> Netlist {
        debug_assert!(
            self.nl.num_insts() <= self.insts
                && self.nl.num_nets() <= self.nets
                && self.nl.pin_keys.len() <= self.pins,
            "census underestimated: {}/{} insts, {}/{} nets, {}/{} pins",
            self.nl.num_insts(),
            self.insts,
            self.nl.num_nets(),
            self.nets,
            self.nl.pin_keys.len(),
            self.pins,
        );
        self.nl
    }
}

impl Deref for NetlistBuilder {
    type Target = Netlist;
    fn deref(&self) -> &Netlist {
        &self.nl
    }
}

impl DerefMut for NetlistBuilder {
    fn deref_mut(&mut self) -> &mut Netlist {
        &mut self.nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_tech::{CellKind, Drive, VthClass};

    fn lib() -> foldic_tech::CellLibrary {
        foldic_tech::CellLibrary::cmos28()
    }

    fn inv(nl: &mut Netlist, name: &str) -> InstId {
        let id = lib().id_of(CellKind::Inv, Drive::X1, VthClass::Rvt);
        nl.add_inst(name, InstMaster::Cell(id))
    }

    #[test]
    fn build_and_query() {
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        let b = inv(&mut nl, "b");
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_sink(n, PinRef::input(b, 0));
        assert_eq!(nl.num_insts(), 2);
        assert_eq!(nl.net(n).fanout(), 1);
        assert_eq!(nl.net(n).pins().count(), 2);
        assert_eq!(nl.name_of(nl.inst(a).name).to_string(), "a");
        assert_eq!(nl.name_of(nl.net(n).name).to_string(), "n");
    }

    #[test]
    fn derived_names_resolve_like_format() {
        let mut nl = Netlist::new("t");
        let cells = nl.name_template("spc0_u", "");
        let nets = nl.name_template("n_spc0_", "");
        let id = lib().id_of(CellKind::Inv, Drive::X1, VthClass::Rvt);
        let a = nl.add_inst(cells.at(17), InstMaster::Cell(id));
        let n = nl.add_net(nets.at(3));
        assert_eq!(nl.name_of(nl.inst(a).name).to_string(), "spc0_u17");
        assert_eq!(nl.name_of(nl.net(n).name).to_string(), "n_spc0_3");
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_driver_panics() {
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        let b = inv(&mut nl, "b");
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_driver(n, PinRef::output(b));
    }

    #[test]
    fn move_sinks_partitions_fanout() {
        let mut nl = Netlist::new("t");
        let d = inv(&mut nl, "d");
        let sinks: Vec<_> = (0..4).map(|i| inv(&mut nl, &format!("s{i}"))).collect();
        let n1 = nl.add_net("n1");
        nl.connect_driver(n1, PinRef::output(d));
        for &s in &sinks {
            nl.connect_sink(n1, PinRef::input(s, 0));
        }
        let n2 = nl.add_net("n2");
        let far: std::collections::HashSet<_> = sinks[2..].iter().copied().collect();
        nl.move_sinks(n1, n2, |p| p.inst().is_some_and(|i| far.contains(&i)));
        assert_eq!(nl.net(n1).fanout(), 2);
        assert_eq!(nl.net(n2).fanout(), 2);
        // relative order preserved on both halves
        assert_eq!(nl.net(n1).sink(0), PinRef::input(sinks[0], 0));
        assert_eq!(nl.net(n2).sink(0), PinRef::input(sinks[2], 0));
    }

    #[test]
    fn interleaved_appends_relocate_but_preserve_order() {
        // the clock-trunk pattern: two nets take turns appending, forcing
        // the non-tail net to relocate; per-net order must never change
        let mut nl = Netlist::new("t");
        let d = inv(&mut nl, "d");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.connect_driver(a, PinRef::output(d));
        nl.connect_driver(b, PinRef::output(d));
        let mut cells = Vec::new();
        for i in 0..50 {
            let c = inv(&mut nl, &format!("c{i}"));
            cells.push(c);
            let net = if i % 2 == 0 { a } else { b };
            nl.connect_sink(net, PinRef::input(c, 0));
        }
        let on_a: Vec<_> = nl.net(a).sinks().collect();
        let on_b: Vec<_> = nl.net(b).sinks().collect();
        assert_eq!(on_a.len(), 25);
        assert_eq!(on_b.len(), 25);
        for (k, pin) in on_a.iter().enumerate() {
            assert_eq!(*pin, PinRef::input(cells[2 * k], 0));
        }
        for (k, pin) in on_b.iter().enumerate() {
            assert_eq!(*pin, PinRef::input(cells[2 * k + 1], 0));
        }
    }

    #[test]
    fn clear_and_set_sinks_rebuild_fanout() {
        let mut nl = Netlist::new("t");
        let d = inv(&mut nl, "d");
        let s: Vec<_> = (0..3).map(|i| inv(&mut nl, &format!("s{i}"))).collect();
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(d));
        for &x in &s {
            nl.connect_sink(n, PinRef::input(x, 0));
        }
        nl.clear_sinks(n);
        assert_eq!(nl.net(n).fanout(), 0);
        nl.set_sinks(n, &[PinRef::input(s[2], 0), PinRef::input(s[0], 0)]);
        assert_eq!(nl.net(n).fanout(), 2);
        assert_eq!(nl.net(n).sink(0), PinRef::input(s[2], 0));
        assert_eq!(nl.net(n).sink(1), PinRef::input(s[0], 0));
    }

    #[test]
    fn tier_spanning_detection() {
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        let b = inv(&mut nl, "b");
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_sink(n, PinRef::input(b, 0));
        assert!(!nl.net_is_3d(n));
        nl.inst_mut(b).tier = Tier::Top;
        assert!(nl.net_is_3d(n));
    }

    #[test]
    fn lazy_columns_stay_empty_until_first_nondefault_write() {
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        let n = nl.add_net("n");
        assert!(nl.inst_flags.is_empty() && nl.inst_groups.is_empty());
        assert!(nl.net_flags.is_empty() && nl.net_caps.is_empty());
        // default writes leave the columns lazy
        nl.inst_mut(a).pos = Point::new(1.0, 2.0);
        nl.net_mut(n).domain = ClockDomain::Cpu;
        assert!(nl.inst_flags.is_empty() && nl.net_flags.is_empty());
        // a non-default write materializes exactly that column
        nl.inst_mut(a).fixed = true;
        assert_eq!(nl.inst_flags.len(), nl.num_insts());
        assert!(nl.inst(a).fixed);
        nl.net_mut(n).is_clock = true;
        assert!(nl.net(n).is_clock);
        // later entities keep their defaults
        let b = inv(&mut nl, "b");
        assert!(!nl.inst(b).fixed);
        assert_eq!(nl.inst(b).tier, Tier::Bottom);
    }

    #[test]
    fn group_assignment_roundtrips() {
        let mut nl = Netlist::new("t");
        let g = nl.add_group("alu");
        let a = inv(&mut nl, "a");
        assert_eq!(nl.inst(a).group, None);
        nl.inst_mut(a).group = Some(g);
        assert_eq!(nl.inst(a).group, Some(g));
        assert_eq!(nl.group_name(g), "alu");
    }

    #[test]
    fn incidence_map_dedups_per_net() {
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        let b = inv(&mut nl, "b");
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(a));
        // b appears twice on the same net (two input pins)
        nl.connect_sink(n, PinRef::input(b, 0));
        nl.connect_sink(n, PinRef::input(b, 1));
        let inc = nl.inst_net_incidence();
        assert_eq!(inc.row(b), &[n]);
        assert_eq!(inc.row(a), &[n]);
        assert_eq!(inc.len(), 2);
    }

    #[test]
    fn inst_geometry_from_tech() {
        let tech = foldic_tech::Technology::cmos28();
        let mut nl = Netlist::new("t");
        let a = inv(&mut nl, "a");
        nl.inst_mut(a).pos = Point::new(10.0, 10.0);
        let r = nl.inst(a).rect(&tech);
        assert!((r.area() - nl.inst(a).area_um2(&tech)).abs() < 1e-9);
        assert_eq!(r.center(), Point::new(10.0, 10.0));
    }

    #[test]
    fn clock_domain_periods() {
        let tech = foldic_tech::Technology::cmos28();
        assert_eq!(ClockDomain::Cpu.period_ps(&tech), 2000.0);
        assert_eq!(ClockDomain::Io.period_ps(&tech), 4000.0);
    }

    #[test]
    fn heap_bytes_counts_the_flat_columns() {
        let mut nl = Netlist::with_capacity("t", 100, 100, 300);
        let cells = nl.name_template("u", "");
        let nets = nl.name_template("n", "");
        let id = lib().id_of(CellKind::Inv, Drive::X1, VthClass::Rvt);
        for i in 0..100 {
            nl.add_inst(cells.at(i), InstMaster::Cell(id));
        }
        for i in 0..100 {
            let n = nl.add_net(nets.at(i));
            nl.connect_driver(n, PinRef::output(InstId(i as u32)));
            for k in 0..3u32 {
                let s = (i as u32 + k + 1) % 100;
                nl.connect_sink(n, PinRef::input(InstId(s), 0));
            }
        }
        let bytes = nl.heap_bytes();
        // 100 cells at ~60 B/cell with exact capacities; far under the
        // ~240 B/cell of the struct-per-entity layout
        assert!(bytes > 1_000, "{bytes}");
        assert!(bytes < 100 * 120, "{bytes}");
    }
}
