//! Adversarial property tests for the `foldic-db/1` snapshot reader:
//! `load_design_bytes` consumes whatever bytes land on disk, so arbitrary
//! input must yield a loaded design or a typed [`DbError`], **never** a
//! panic — and every form of file damage (truncation, bit flips, header
//! corruption) must surface as the matching error variant. A final
//! round-trip property checks that randomly-shaped valid designs survive
//! save → load → save byte-identically.
//!
//! Seeding matches `crates/serve/tests/cost_fuzz.rs`: `FOLDIC_FUZZ_SEED`
//! (decimal u64) when set, a fixed default otherwise.

use foldic_geom::{Rect, Tier};
use foldic_netlist::db::{load_design_bytes, save_design, DbError};
use foldic_netlist::{
    Block, BlockKind, ChipNet, ClockDomain, Design, InstMaster, Netlist, PinRef, PortDir, PortId,
};
use foldic_tech::{CellKind, CellLibrary, Drive, MacroKind, VthClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SOUP_ITERS: usize = 10_000;

fn fuzz_seed() -> u64 {
    std::env::var("FOLDIC_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDBF0_0D14)
}

/// Saves a design through the real writer and hands back the file bytes
/// (the reader's bytes entry point skips no validation, so fuzzing the
/// in-memory path covers the file path too).
fn save_to_vec(d: &Design, salt: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("foldic-db-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{salt}.fdb"));
    save_design(d, &[("generator", "db_fuzz"), ("salt", salt)], &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

/// A structurally valid design with randomized shape: 1–3 blocks, a
/// random mix of chains and fan-out nets, optional ports, groups, tiers,
/// macros, clock nets and chip nets — everything the format serializes.
fn random_design(rng: &mut StdRng) -> Design {
    let lib = CellLibrary::cmos28();
    let inv = InstMaster::Cell(lib.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
    let nand = InstMaster::Cell(lib.id_of(CellKind::Nand2, Drive::X2, VthClass::Hvt));
    let mut d = Design::new("fuzz-chip");
    let blocks = rng.gen_range(1..4usize);
    let mut first_ports = 0usize;
    for b in 0..blocks {
        let mut nl = Netlist::new(format!("b{b}"));
        let t = nl.name_template("u", "");
        let nt = nl.name_template("n", "");
        let group = rng.gen_bool(0.5).then(|| nl.add_group("g"));
        let ports = rng.gen_range(0..4usize);
        if b == 0 {
            first_ports = ports;
        }
        for p in 0..ports {
            let dir = if p % 2 == 0 {
                PortDir::Input
            } else {
                PortDir::Output
            };
            nl.add_port(format!("p{p}"), dir, ClockDomain::Io);
        }
        let n = rng.gen_range(1..40usize);
        let mut prev = None;
        for i in 0..n {
            let master = if rng.gen_bool(0.1) {
                InstMaster::Macro(MacroKind::Sram4k)
            } else if rng.gen_bool(0.5) {
                inv
            } else {
                nand
            };
            let u = nl.add_inst(t.at(i), master);
            if rng.gen_bool(0.3) {
                nl.inst_mut(u).tier = Tier::Top;
            }
            if let Some(g) = group {
                if rng.gen_bool(0.3) {
                    nl.inst_mut(u).group = Some(g);
                }
            }
            let net = nl.add_net(nt.at(i));
            match prev {
                None => {}
                Some(q) => nl.connect_driver(net, PinRef::output(q)),
            }
            if prev.is_some() {
                nl.connect_sink(net, PinRef::input(u, 0));
                if rng.gen_bool(0.3) {
                    nl.connect_sink(net, PinRef::input(u, 1));
                }
            }
            prev = Some(u);
        }
        if rng.gen_bool(0.5) {
            let clk = nl.add_net("clk");
            nl.connect_driver(clk, PinRef::output(prev.unwrap()));
            nl.net_mut(clk).is_clock = true;
        }
        d.add_block(Block::new(
            format!("b{b}"),
            if b == 0 {
                BlockKind::Misc
            } else {
                BlockKind::Ccx
            },
            nl,
            Rect::new(0.0, 0.0, 50.0, 50.0),
        ));
    }
    if first_ports > 0 && rng.gen_bool(0.5) {
        d.add_chip_net(ChipNet {
            name: "bus".into(),
            endpoints: vec![(foldic_netlist::BlockId(0), PortId(0))],
            bits: rng.gen_range(1..65u32),
            domain: ClockDomain::Cpu,
        });
    }
    d
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed());
    for i in 0..SOUP_ITERS {
        let len = rng.gen_range(0..600usize);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u64>() as u8).collect();
        // half the time, lead with valid magic (and often a valid
        // version) so the fuzz reaches past the header checks
        if rng.gen_bool(0.5) && bytes.len() >= 12 {
            bytes[..8].copy_from_slice(b"FOLDICDB");
            if rng.gen_bool(0.5) {
                bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
            }
        }
        let result = std::panic::catch_unwind(|| load_design_bytes(&bytes).is_ok());
        match result {
            Ok(loaded) => assert!(
                !loaded,
                "iteration {i} (seed {}): random soup loaded as a design",
                fuzz_seed()
            ),
            Err(_) => panic!("iteration {i} (seed {}): reader panicked", fuzz_seed()),
        }
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x7472_756E);
    let bytes = save_to_vec(&random_design(&mut rng), "trunc");
    for cut in 0..bytes.len() {
        match load_design_bytes(&bytes[..cut]) {
            Ok(_) => panic!("prefix of {cut}/{} bytes loaded as a design", bytes.len()),
            Err(DbError::Truncated | DbError::Corrupt(_) | DbError::SectionDigest { .. }) => {}
            Err(other) => panic!("truncation at {cut} gave unexpected error: {other}"),
        }
    }
    assert!(
        load_design_bytes(&bytes).is_ok(),
        "the untruncated file loads"
    );
}

#[test]
fn every_single_byte_flip_is_rejected_without_panic() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x666C_6970);
    let bytes = save_to_vec(&random_design(&mut rng), "flip");
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << (pos % 8);
        let result = std::panic::catch_unwind(|| load_design_bytes(&bad).is_ok());
        match result {
            Ok(loaded) => assert!(
                !loaded,
                "flip at byte {pos}/{} loaded anyway (seed {})",
                bytes.len(),
                fuzz_seed()
            ),
            Err(_) => panic!("flip at byte {pos} panicked (seed {})", fuzz_seed()),
        }
    }
}

#[test]
fn section_body_damage_fails_the_section_digest() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x6469_6765);
    let bytes = save_to_vec(&random_design(&mut rng), "digest");
    // Header: magic[0..8] version[8..12] count[12..16] table_off[16..24].
    // Everything in [24, table_off) is section bodies, each digested.
    let table_off = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    assert!(table_off > 24 && table_off <= bytes.len());
    for _ in 0..200 {
        let pos = rng.gen_range(24..table_off);
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        assert!(
            matches!(load_design_bytes(&bad), Err(DbError::SectionDigest { .. })),
            "body flip at {pos} (table at {table_off}) missed the digest check"
        );
    }
}

#[test]
fn random_designs_round_trip_byte_identically() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x7274_7270);
    for i in 0..100 {
        let d = random_design(&mut rng);
        let bytes = save_to_vec(&d, "rt");
        let (d2, info) = match load_design_bytes(&bytes) {
            Ok(ok) => ok,
            Err(e) => panic!(
                "iteration {i} (seed {}): valid design rejected: {e}",
                fuzz_seed()
            ),
        };
        assert_eq!(info.cells, d.total_insts() as u64, "iteration {i}");
        assert_eq!(info.nets, d.total_nets() as u64, "iteration {i}");
        assert_eq!(d2.num_blocks(), d.num_blocks(), "iteration {i}");
        for (id, a) in d.blocks() {
            let b = d2.block(id);
            assert_eq!(a.netlist.num_insts(), b.netlist.num_insts());
            assert_eq!(a.netlist.num_nets(), b.netlist.num_nets());
            for (nid, net) in a.netlist.nets() {
                let other = b.netlist.net(nid);
                assert_eq!(net.driver, other.driver, "iteration {i}");
                assert!(net.sinks().eq(other.sinks()), "iteration {i}");
            }
        }
        assert_eq!(
            save_to_vec(&d2, "rt"),
            bytes,
            "iteration {i} (seed {}): re-save is not byte-identical",
            fuzz_seed()
        );
    }
}
