//! Criterion micro-benchmarks of the tool-chain kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use foldic_geom::{Point, Rect};
use foldic_partition::{bipartition, PartitionConfig};
use foldic_place::{place_block, PlacerConfig, QuadraticSystem};
use foldic_route::{place_vias, BlockWiring, GlobalRouter, SteinerTree};
use foldic_t2::T2Config;
use foldic_tech::BondingStyle;
use foldic_timing::{analyze, StaConfig, TimingBudgets};

fn bench_kernels(c: &mut Criterion) {
    let (design, tech) = T2Config::tiny().generate();
    let l2t = design.block(design.find_block("l2t0").unwrap()).clone();
    let outline = l2t.outline;

    c.bench_function("steiner_tree_16pin", |b| {
        let driver = Point::new(0.0, 0.0);
        let sinks: Vec<Point> = (0..16)
            .map(|i| Point::new((i * 37 % 100) as f64, (i * 53 % 100) as f64))
            .collect();
        b.iter(|| SteinerTree::build(driver, &sinks).total_length());
    });

    c.bench_function("fm_bipartition_l2t", |b| {
        b.iter(|| bipartition(&l2t.netlist, &tech, &PartitionConfig::default()).cut);
    });

    c.bench_function("quadratic_system_build_l2t", |b| {
        b.iter(|| QuadraticSystem::build(&l2t.netlist, outline).num_movable());
    });

    c.bench_function("placer_full_l2t", |b| {
        b.iter_batched(
            || l2t.netlist.clone(),
            |mut nl| place_block(&mut nl, &tech, outline, &PlacerConfig::fast()),
            BatchSize::LargeInput,
        );
    });

    c.bench_function("wiring_analysis_l2t", |b| {
        b.iter(|| BlockWiring::analyze(&l2t.netlist, &tech, 1.1, None).total_um);
    });

    c.bench_function("sta_l2t", |b| {
        let wiring = BlockWiring::analyze(&l2t.netlist, &tech, 1.1, None);
        let budgets = TimingBudgets::relaxed(&l2t.netlist, &tech);
        b.iter(|| analyze(&l2t.netlist, &tech, &wiring, &budgets, &StaConfig::default()).tns_ps);
    });

    c.bench_function("via_placement_f2f", |b| {
        // fold crudely so tier-crossing nets exist
        let mut nl = l2t.netlist.clone();
        let ids: Vec<_> = nl.inst_ids().collect();
        for (k, id) in ids.into_iter().enumerate() {
            if k % 2 == 0 {
                nl.inst_mut(id).tier = foldic_geom::Tier::Top;
            }
        }
        b.iter(|| place_vias(&nl, &tech, outline, BondingStyle::FaceToFace).len());
    });

    c.bench_function("cts_rebuild_l2t", |b| {
        b.iter_batched(
            || l2t.netlist.clone(),
            |mut nl| foldic_opt::cts::synthesize_clock_tree(&mut nl, &tech).buffers,
            BatchSize::LargeInput,
        );
    });

    c.bench_function("thermal_solve_64x64x2", |b| {
        let map = foldic_thermal::PowerMap::uniform(64, 64, 0.125, 5.0e6);
        let cfg = foldic_thermal::StackConfig::f2f();
        b.iter(|| foldic_thermal::solve_stack(&[map.clone(), map.clone()], &cfg).max_c);
    });

    c.bench_function("power_census_l2t", |b| {
        let wiring = BlockWiring::analyze(&l2t.netlist, &tech, 1.1, None);
        let cfg = foldic_power::PowerConfig::for_block(&l2t);
        b.iter(|| foldic_power::power_census(&l2t.netlist, &tech, &wiring, &cfg).total_uw());
    });

    c.bench_function("global_router_500nets", |b| {
        b.iter(|| {
            let mut r = GlobalRouter::new(Rect::new(0.0, 0.0, 5000.0, 5000.0), 100.0, 1.5);
            let mut total = 0.0;
            for i in 0..500u64 {
                let a = Point::new((i * 97 % 5000) as f64, (i * 31 % 5000) as f64);
                let bpt = Point::new((i * 53 % 5000) as f64, (i * 71 % 5000) as f64);
                total += r.route(a, bpt, 1.0);
            }
            total
        });
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(kernels);
