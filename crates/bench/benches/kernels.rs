//! Micro-benchmarks of the tool-chain kernels.
//!
//! Offline-first: a small built-in timing harness (median over a fixed
//! sample count) instead of Criterion, which is a registry dependency.
//! Run with `cargo bench --bench kernels [FILTER]`.

use std::hint::black_box;
use std::time::Instant;

use foldic_floorplan::seqpair::{anneal_floorplan, FpBlock, Packer, SaConfig, SeqPair};
use foldic_geom::{Point, Rect};
use foldic_partition::{bipartition, PartitionConfig};
use foldic_place::{place_block, PlacerConfig, QuadraticSystem};
use foldic_route::{place_vias, BlockWiring, GlobalRouter, SteinerTree};
use foldic_t2::T2Config;
use foldic_tech::BondingStyle;
use foldic_timing::{analyze, StaConfig, TimingBudgets};

const SAMPLES: usize = 10;

fn bench(filter: &Option<String>, name: &str, mut f: impl FnMut()) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    f(); // warm-up
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{name:<32} median {:>10.3} ms   min {:>10.3} ms   max {:>10.3} ms",
        times[times.len() / 2],
        times[0],
        times[times.len() - 1]
    );
}

fn main() {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let (design, tech) = T2Config::tiny().generate();
    let l2t = design.block(design.find_block("l2t0").unwrap()).clone();
    let outline = l2t.outline;

    {
        // the SA inner-loop kernel: one FAST-SP pack at the paper's block
        // count, scratch reused across calls like the annealer does
        let blocks: Vec<FpBlock> = (0..46)
            .map(|i| FpBlock {
                w: 5.0 + (i * 37 % 120) as f64,
                h: 5.0 + (i * 53 % 120) as f64,
            })
            .collect();
        let sp = SeqPair {
            pos: (0..46).map(|i| (i * 29) % 46).collect(),
            neg: (0..46).map(|i| (i * 17) % 46).collect(),
        };
        let mut packer = Packer::new();
        bench(&filter, "seqpair_pack_n46_x100", || {
            for _ in 0..100 {
                black_box(packer.pack(&sp, &blocks));
            }
        });
        bench(&filter, "floorplan_sa_n46", || {
            black_box(anneal_floorplan(
                &blocks,
                &Vec::new(),
                Some((300.0, 300.0)),
                &SaConfig::default(),
            ));
        });
    }

    bench(&filter, "steiner_tree_16pin", || {
        let driver = Point::new(0.0, 0.0);
        let sinks: Vec<Point> = (0..16)
            .map(|i| Point::new((i * 37 % 100) as f64, (i * 53 % 100) as f64))
            .collect();
        black_box(SteinerTree::build(driver, &sinks).total_length());
    });

    bench(&filter, "fm_bipartition_l2t", || {
        black_box(bipartition(&l2t.netlist, &tech, &PartitionConfig::default()).cut);
    });

    bench(&filter, "quadratic_system_build_l2t", || {
        black_box(QuadraticSystem::build(&l2t.netlist, outline).num_movable());
    });

    bench(&filter, "placer_full_l2t", || {
        let mut nl = l2t.netlist.clone();
        place_block(&mut nl, &tech, outline, &PlacerConfig::fast()).unwrap();
        black_box(&nl);
    });

    bench(&filter, "wiring_analysis_l2t", || {
        black_box(
            BlockWiring::analyze(&l2t.netlist, &tech, 1.1, None)
                .unwrap()
                .total_um,
        );
    });

    {
        let wiring = BlockWiring::analyze(&l2t.netlist, &tech, 1.1, None).unwrap();
        let budgets = TimingBudgets::relaxed(&l2t.netlist, &tech);
        bench(&filter, "sta_l2t", || {
            black_box(
                analyze(
                    &l2t.netlist,
                    &tech,
                    &wiring,
                    &budgets,
                    &StaConfig::default(),
                )
                .unwrap()
                .tns_ps,
            );
        });
    }

    {
        // fold crudely so tier-crossing nets exist
        let mut nl = l2t.netlist.clone();
        let ids: Vec<_> = nl.inst_ids().collect();
        for (k, id) in ids.into_iter().enumerate() {
            if k % 2 == 0 {
                nl.inst_mut(id).tier = foldic_geom::Tier::Top;
            }
        }
        bench(&filter, "via_placement_f2f", || {
            black_box(
                place_vias(&nl, &tech, outline, BondingStyle::FaceToFace)
                    .unwrap()
                    .len(),
            );
        });
    }

    bench(&filter, "cts_rebuild_l2t", || {
        let mut nl = l2t.netlist.clone();
        black_box(foldic_opt::cts::synthesize_clock_tree(&mut nl, &tech).buffers);
    });

    bench(&filter, "thermal_solve_64x64x2", || {
        let map = foldic_thermal::PowerMap::uniform(64, 64, 0.125, 5.0e6);
        let cfg = foldic_thermal::StackConfig::f2f();
        black_box(foldic_thermal::solve_stack(&[map.clone(), map.clone()], &cfg).max_c);
    });

    {
        let wiring = BlockWiring::analyze(&l2t.netlist, &tech, 1.1, None).unwrap();
        let cfg = foldic_power::PowerConfig::for_block(&l2t);
        bench(&filter, "power_census_l2t", || {
            black_box(foldic_power::power_census(&l2t.netlist, &tech, &wiring, &cfg).total_uw());
        });
    }

    bench(&filter, "global_router_500nets", || {
        let mut r = GlobalRouter::new(Rect::new(0.0, 0.0, 5000.0, 5000.0), 100.0, 1.5);
        let mut total = 0.0;
        for i in 0..500u64 {
            let a = Point::new((i * 97 % 5000) as f64, (i * 31 % 5000) as f64);
            let bpt = Point::new((i * 53 % 5000) as f64, (i * 71 % 5000) as f64);
            total += r.route(a, bpt, 1.0);
        }
        black_box(total);
    });
}
