//! Criterion benchmarks of the end-to-end flows behind each experiment.
//!
//! One bench per paper artifact class: the block-level flow (Tables 2/3),
//! the folding flow under both bonding styles (Tables 4, Figs 2/6/7), the
//! second-level SPC fold (Fig 3) and a full-chip assembly (Table 5 /
//! Fig 8). All run on the reduced `tiny` design so `cargo bench` stays
//! minutes-scale; the `repro` binary runs the full-size reproduction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use foldic::prelude::*;
use foldic_timing::TimingBudgets;

fn bench_flows(c: &mut Criterion) {
    let (design, tech) = T2Config::tiny().generate();

    c.bench_function("block_flow_l2t_2d", |b| {
        b.iter_batched(
            || design.clone(),
            |mut d| {
                let id = d.find_block("l2t0").unwrap();
                let block = d.block_mut(id);
                let budgets = TimingBudgets::relaxed(&block.netlist, &tech);
                run_block_flow(block, &tech, &budgets, &FlowConfig::fast())
                    .metrics
                    .power
                    .total_uw()
            },
            BatchSize::LargeInput,
        );
    });

    for bonding in [BondingStyle::FaceToBack, BondingStyle::FaceToFace] {
        c.bench_function(&format!("fold_l2t_{bonding}"), |b| {
            b.iter_batched(
                || design.clone(),
                |mut d| {
                    let id = d.find_block("l2t0").unwrap();
                    let cfg = FoldConfig {
                        bonding,
                        placer: foldic_place::PlacerConfig::fast(),
                        ..FoldConfig::default()
                    };
                    fold_block(d.block_mut(id), &tech, &cfg).metrics.power.total_uw()
                },
                BatchSize::LargeInput,
            );
        });
    }

    c.bench_function("fold_ccx_natural", |b| {
        b.iter_batched(
            || design.clone(),
            |mut d| {
                let id = d.find_block("ccx").unwrap();
                let cfg = FoldConfig {
                    strategy: FoldStrategy::NaturalGroups(vec!["pcx".into()]),
                    aspect: FoldAspect::Square,
                    bonding: BondingStyle::FaceToBack,
                    placer: foldic_place::PlacerConfig::fast(),
                    ..FoldConfig::default()
                };
                fold_block(d.block_mut(id), &tech, &cfg).cut
            },
            BatchSize::LargeInput,
        );
    });

    c.bench_function("fold_spc_second_level", |b| {
        b.iter_batched(
            || design.clone(),
            |mut d| {
                let id = d.find_block("spc0").unwrap();
                let cfg = FoldConfig {
                    bonding: BondingStyle::FaceToFace,
                    placer: foldic_place::PlacerConfig::fast(),
                    ..FoldConfig::default()
                };
                fold_spc_second_level(d.block_mut(id), &tech, &cfg)
                    .metrics
                    .num_3d_connections
            },
            BatchSize::LargeInput,
        );
    });

    c.bench_function("fullchip_2d_tiny", |b| {
        b.iter_batched(
            || design.clone(),
            |mut d| {
                run_fullchip(&mut d, &tech, DesignStyle::Flat2d, &FullChipConfig::fast())
                    .chip
                    .power
                    .total_uw()
            },
            BatchSize::LargeInput,
        );
    });

    c.bench_function("fullchip_core_cache_tiny", |b| {
        b.iter_batched(
            || design.clone(),
            |mut d| {
                run_fullchip(&mut d, &tech, DesignStyle::CoreCache, &FullChipConfig::fast())
                    .chip
                    .power
                    .total_uw()
            },
            BatchSize::LargeInput,
        );
    });
}

criterion_group! {
    name = flows;
    config = Criterion::default().sample_size(10);
    targets = bench_flows
}
criterion_main!(flows);
