//! Benchmarks of the end-to-end flows behind each experiment.
//!
//! One bench per paper artifact class: the block-level flow (Tables 2/3),
//! the folding flow under both bonding styles (Tables 4, Figs 2/6/7), the
//! second-level SPC fold (Fig 3) and a full-chip assembly (Table 5 /
//! Fig 8). All run on the reduced `tiny` design so `cargo bench` stays
//! minutes-scale; the `repro` binary runs the full-size reproduction.
//!
//! Offline-first: a small built-in timing harness (median over a fixed
//! sample count) instead of Criterion, which is a registry dependency.
//! The full-chip benches also report the engine's parallel speedup.

use std::hint::black_box;
use std::time::Instant;

use foldic::prelude::*;
use foldic_timing::TimingBudgets;

const SAMPLES: usize = 10;

fn bench(filter: &Option<String>, name: &str, mut f: impl FnMut()) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    f(); // warm-up
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{name:<32} median {:>10.3} ms   min {:>10.3} ms   max {:>10.3} ms",
        times[times.len() / 2],
        times[0],
        times[times.len() - 1]
    );
}

fn main() {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let (design, tech) = T2Config::tiny().generate();

    bench(&filter, "block_flow_l2t_2d", || {
        let mut d = design.clone();
        let id = d.find_block("l2t0").unwrap();
        let block = d.block_mut(id);
        let budgets = TimingBudgets::relaxed(&block.netlist, &tech);
        black_box(
            run_block_flow(block, &tech, &budgets, &FlowConfig::fast())
                .unwrap()
                .metrics
                .power
                .total_uw(),
        );
    });

    for bonding in [BondingStyle::FaceToBack, BondingStyle::FaceToFace] {
        bench(&filter, &format!("fold_l2t_{bonding}"), || {
            let mut d = design.clone();
            let id = d.find_block("l2t0").unwrap();
            let cfg = FoldConfig {
                bonding,
                placer: foldic_place::PlacerConfig::fast(),
                ..FoldConfig::default()
            };
            black_box(
                fold_block(d.block_mut(id), &tech, &cfg)
                    .unwrap()
                    .metrics
                    .power
                    .total_uw(),
            );
        });
    }

    bench(&filter, "fold_ccx_natural", || {
        let mut d = design.clone();
        let id = d.find_block("ccx").unwrap();
        let cfg = FoldConfig {
            strategy: FoldStrategy::NaturalGroups(vec!["pcx".into()]),
            aspect: FoldAspect::Square,
            bonding: BondingStyle::FaceToBack,
            placer: foldic_place::PlacerConfig::fast(),
            ..FoldConfig::default()
        };
        black_box(fold_block(d.block_mut(id), &tech, &cfg).unwrap().cut);
    });

    bench(&filter, "fold_spc_second_level", || {
        let mut d = design.clone();
        let id = d.find_block("spc0").unwrap();
        let cfg = FoldConfig {
            bonding: BondingStyle::FaceToFace,
            placer: foldic_place::PlacerConfig::fast(),
            ..FoldConfig::default()
        };
        black_box(
            fold_spc_second_level(d.block_mut(id), &tech, &cfg)
                .unwrap()
                .metrics
                .num_3d_connections,
        );
    });

    // full-chip assembly at 1 thread and at the machine's parallelism —
    // the headline numbers for the parallel execution engine
    for threads in [1, foldic_exec::resolve_threads(None)] {
        let cfg = FullChipConfig {
            threads,
            ..FullChipConfig::fast()
        };
        bench(&filter, &format!("fullchip_2d_tiny_t{threads}"), || {
            let mut d = design.clone();
            black_box(
                run_fullchip(&mut d, &tech, DesignStyle::Flat2d, &cfg)
                    .unwrap()
                    .chip
                    .power
                    .total_uw(),
            );
        });
        bench(
            &filter,
            &format!("fullchip_core_cache_tiny_t{threads}"),
            || {
                let mut d = design.clone();
                black_box(
                    run_fullchip(&mut d, &tech, DesignStyle::CoreCache, &cfg)
                        .unwrap()
                        .chip
                        .power
                        .total_uw(),
                );
            },
        );
    }
}
