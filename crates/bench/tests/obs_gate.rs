//! End-to-end observability gates on the `repro` binary: manifest
//! determinism across thread counts, Chrome-trace validity, and the
//! `repro compare` exit-code contract.

use foldic_obs::json::Json;
use foldic_obs::manifest::RunManifest;
use foldic_obs::metrics::Metric;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foldic-obs-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_ok(args: &[&str]) {
    let out = repro().args(args).output().expect("repro runs");
    assert!(
        out.status.success(),
        "repro {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn stripped(path: &Path) -> String {
    let mut m = RunManifest::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    m.strip_timing();
    m.to_json_text()
}

/// The acceptance gate of the PR: `table2 --size tiny` manifests are
/// byte-identical across `--threads 1` and `--threads 4` once the
/// `timing` section (wall clocks, steal counts, thread count) is
/// stripped, the Chrome trace is balanced and monotonic, and `repro
/// compare` exits 0 on the pair. One test so the two expensive runs
/// happen exactly once.
#[test]
fn manifests_are_thread_count_invariant_and_trace_is_valid() {
    let m1 = tmp("table2-t1.json");
    let m4 = tmp("table2-t4.json");
    let trace = tmp("table2-t1-trace.json");
    run_ok(&[
        "table2",
        "--size",
        "tiny",
        "--threads",
        "1",
        "--manifest",
        m1.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    run_ok(&[
        "table2",
        "--size",
        "tiny",
        "--threads",
        "4",
        "--manifest",
        m4.to_str().unwrap(),
    ]);

    // --- determinism guard: non-timing content is byte-identical ---
    let s1 = stripped(&m1);
    let s4 = stripped(&m4);
    assert_eq!(s1, s4, "manifest content must not depend on --threads");
    // sanity: the manifests carry real content, not empty sections
    let m = RunManifest::parse(&s1).unwrap();
    assert!(m.results.contains_key("table2"));
    assert!(m.metrics.counter("sta.runs") > 0);
    assert!(m.metrics.counter("place.runs") > 0);
    assert!(m.metrics.counter("opt.rounds") > 0);
    assert!(m.metrics.histogram("route.net_length_um").is_some());

    // --- compare contract: 0 across thread counts, 1 on perturbation ---
    let status = repro()
        .args(["compare", m1.to_str().unwrap(), m4.to_str().unwrap()])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "cross-thread self-compare is clean");

    let mut bad = RunManifest::parse(&std::fs::read_to_string(&m1).unwrap()).unwrap();
    let (name, old) = bad
        .metrics
        .metrics
        .iter()
        .find_map(|(k, v)| match v {
            Metric::Gauge(g) => Some((k.clone(), *g)),
            _ => None,
        })
        .expect("manifest has a gauge to perturb");
    bad.metrics.metrics.insert(name, Metric::Gauge(old * 1.1));
    let bad_path = tmp("table2-perturbed.json");
    std::fs::write(&bad_path, bad.to_json_text()).unwrap();
    let status = repro()
        .args(["compare", m1.to_str().unwrap(), bad_path.to_str().unwrap()])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1), "10% gauge drift must fail the gate");

    // --- Chrome-trace validity: parses, balanced B/E, monotonic ts ---
    let doc = Json::parse(&std::fs::read_to_string(&trace).unwrap()).expect("trace parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty(), "table2 must emit trace events");
    let mut depth = 0i64;
    let mut last_ts = f64::NEG_INFINITY;
    for e in events {
        match e.get("ph").unwrap().as_str().unwrap() {
            "B" => depth += 1,
            "E" => depth -= 1,
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
        assert!(depth >= 0, "E before matching B");
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        assert!(ts >= last_ts, "timestamps must be monotonic");
        last_ts = ts;
    }
    assert_eq!(depth, 0, "unbalanced B/E pairs");
    // flow spans actually made it into the trace
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for expected in [
        "fullchip",
        "block_flows",
        "block_flow",
        "place",
        "opt",
        "sta",
        "job",
    ] {
        assert!(names.contains(&expected), "trace misses span {expected:?}");
    }
}

#[test]
fn duplicate_and_conflicting_output_flags_are_usage_errors() {
    let out = repro()
        .args(["table1", "--trace", "a.json", "--trace", "b.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("duplicate --trace"));

    let out = repro()
        .args(["table1", "--trace", "same.json", "--manifest", "same.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("same path"));
}

#[test]
fn compare_usage_errors_exit_2() {
    let out = repro().args(["compare", "only-one.json"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let missing = tmp("does-not-exist.json");
    let out = repro()
        .args([
            "compare",
            missing.to_str().unwrap(),
            missing.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
