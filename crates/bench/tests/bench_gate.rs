//! CI gate for `repro bench`: the run must exit 0 and emit a well-formed
//! `foldic-kernel-bench/1` document with every expected kernel. Wall-time
//! thresholds are deliberately absent — the CI container has one shared
//! core, so only *completing with valid output* is gated; the absolute
//! numbers live in `BENCH_kernels.json` as a trajectory record.

use foldic_obs::json::Json;
use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("foldic-bench-gate-{}-{name}", std::process::id()));
    p
}

#[test]
fn bench_json_is_well_formed_and_complete() {
    let out = tmp("kernels.json");
    let _ = std::fs::remove_file(&out);
    let status = repro()
        .args(["bench", "--json"])
        .arg(&out)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro bench exited {status}");
    let text = std::fs::read_to_string(&out).expect("bench JSON written");
    let json = Json::parse(&text).expect("bench JSON parses");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("foldic-kernel-bench/1")
    );
    let kernels = json
        .get("kernels")
        .and_then(Json::as_obj)
        .expect("kernels object");
    for name in [
        "pack_n14",
        "pack_n46",
        "pack_n128",
        "sa_temp_step_n46",
        "quadratic_solve_l2t",
    ] {
        let k = kernels
            .get(name)
            .unwrap_or_else(|| panic!("{name} missing"));
        for field in ["median_ms", "min_ms", "max_ms"] {
            let v = k
                .get(field)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{name}.{field} missing"));
            assert!(v > 0.0 && v.is_finite(), "{name}.{field} = {v}");
        }
        let iters = k.get("iters").and_then(Json::as_f64).unwrap_or(0.0);
        assert!(iters >= 1.0, "{name}.iters = {iters}");
        let samples = k.get("samples").and_then(Json::as_f64).unwrap_or(0.0);
        assert!(samples >= 1.0, "{name}.samples = {samples}");
    }
    let _ = std::fs::remove_file(&out);
}

#[test]
fn bench_filter_narrows_and_unknown_filter_is_not_an_error() {
    let out = tmp("filtered.json");
    let _ = std::fs::remove_file(&out);
    // a filter selecting only the packing kernels
    let status = repro()
        .args(["bench", "pack_n", "--json"])
        .arg(&out)
        .status()
        .expect("spawn repro");
    assert!(status.success());
    let json = Json::parse(&std::fs::read_to_string(&out).expect("written")).expect("parses");
    let kernels = json.get("kernels").and_then(Json::as_obj).expect("kernels");
    assert_eq!(kernels.len(), 3, "pack_n matches exactly the pack kernels");
    assert!(kernels.keys().all(|k| k.starts_with("pack_n")));
    // a filter matching nothing still succeeds with an empty map
    let status = repro()
        .args(["bench", "no-such-kernel", "--json"])
        .arg(&out)
        .status()
        .expect("spawn repro");
    assert!(status.success());
    let json = Json::parse(&std::fs::read_to_string(&out).expect("written")).expect("parses");
    assert_eq!(
        json.get("kernels").and_then(Json::as_obj).map(|m| m.len()),
        Some(0)
    );
    let _ = std::fs::remove_file(&out);
}

#[test]
fn bench_usage_errors_exit_2() {
    for bad in [
        vec!["bench", "--json"],
        vec!["bench", "a", "b"],
        vec!["bench", "--nope"],
    ] {
        let out = repro().args(&bad).output().expect("spawn repro");
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
    }
}
