//! End-to-end gate for the serve stack: a real daemon on an ephemeral
//! port, concurrent HTTP submissions, and the interop contract — a served
//! result is byte-for-byte the manifest the one-shot `repro` CLI writes
//! for the same study (modulo the timing/metrics observations that are
//! excluded from comparison), an identical resubmit is a cache hit with
//! an identical body, a one-field config delta is a miss, and a
//! deadline-bounded job degrades with `timed_out` provenance instead of
//! being served stale from the cache.

use foldic_bench::serve::BenchRunner;
use foldic_obs::json::Json;
use foldic_obs::manifest::RunManifest;
use foldic_serve::client;
use foldic_serve::{JobSpec, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foldic-serve-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn boot() -> Server {
    Server::bind(
        "127.0.0.1:0",
        Arc::new(BenchRunner),
        ServerConfig::default(),
    )
    .expect("ephemeral bind")
}

const TIMEOUT: Duration = Duration::from_secs(30);
/// Debug-build experiment runs are slow; polls get a generous ceiling.
const POLL: Duration = Duration::from_secs(600);

fn spec(experiments: &[&str]) -> JobSpec {
    JobSpec {
        experiments: experiments.iter().map(|s| (*s).to_owned()).collect(),
        size: "tiny".to_owned(),
        ..JobSpec::default()
    }
}

/// Submits over HTTP and returns `(status, response document)`.
fn submit(addr: SocketAddr, spec: &JobSpec) -> (u16, Json) {
    let response = client::post_json(addr, "/jobs", &spec.to_json(), TIMEOUT).expect("submit");
    let doc = response.body_json().expect("submit response is JSON");
    (response.status, doc)
}

/// Polls a job to `done` and returns its result body.
fn await_result(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + POLL;
    loop {
        let doc = client::get(addr, &format!("/jobs/{id}"), TIMEOUT)
            .expect("status")
            .body_json()
            .expect("status is JSON");
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") | Some("cancelled") => {
                panic!("job {id} ended {:?}", doc.get("state"))
            }
            _ => {}
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
    let result = client::get(addr, &format!("/jobs/{id}/result"), TIMEOUT).expect("result");
    assert_eq!(result.status, 200);
    String::from_utf8(result.body).expect("manifest is UTF-8")
}

#[test]
fn served_manifest_matches_the_one_shot_cli_run() {
    let server = boot();
    let addr = server.local_addr();

    let (status, doc) = submit(addr, &spec(&["table1"]));
    assert_eq!(status, 202, "first submission computes: {doc:?}");
    let id = doc.get("job").and_then(Json::as_f64).unwrap() as u64;
    let served_text = await_result(addr, id);
    let served = RunManifest::parse(&served_text).expect("served body is a manifest");

    // One-shot CLI run of the same study.
    let manifest_path = tmp("oneshot-table1.json");
    let out = repro()
        .args([
            "table1",
            "--size",
            "tiny",
            "--manifest",
            manifest_path.to_str().unwrap(),
        ])
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let oneshot = RunManifest::parse(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();

    // The identity part of the manifests is equal: config and digests.
    assert_eq!(served.config, oneshot.config, "canonical config differs");
    assert_eq!(served.results, oneshot.results, "result digests differ");

    // And `repro compare` agrees: the one-shot run (extra metrics are
    // mere changes) compares clean against the served baseline.
    let served_path = tmp("served-table1.json");
    std::fs::write(&served_path, &served_text).unwrap();
    let out = repro()
        .args([
            "compare",
            served_path.to_str().unwrap(),
            manifest_path.to_str().unwrap(),
        ])
        .output()
        .expect("compare runs");
    assert!(
        out.status.success(),
        "compare regressed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    server.shutdown();
}

#[test]
fn identical_resubmit_hits_and_delta_misses() {
    let server = boot();
    let addr = server.local_addr();

    let study = spec(&["table1"]);
    let (status, doc) = submit(addr, &study);
    assert_eq!(status, 202);
    let first = await_result(addr, doc.get("job").and_then(Json::as_f64).unwrap() as u64);

    // Identical resubmit: answered instantly from the cache.
    let (status, doc) = submit(addr, &study);
    assert_eq!(status, 200, "resubmit must hit: {doc:?}");
    assert_eq!(doc.get("cache").and_then(Json::as_str), Some("hit"));
    let id = doc.get("job").and_then(Json::as_f64).unwrap() as u64;
    let cached = await_result(addr, id);
    assert_eq!(cached, first, "cache hit body must be byte-identical");

    // The job status records the hit and carries the cache key…
    let status_doc = client::get(addr, &format!("/jobs/{id}"), TIMEOUT)
        .unwrap()
        .body_json()
        .unwrap();
    let key = status_doc
        .get("cache_key")
        .and_then(Json::as_str)
        .expect("cacheable job exposes its key")
        .to_owned();
    // …and the cache endpoint serves the entry's provenance.
    let prov = client::get(addr, &format!("/cache/{key}"), TIMEOUT)
        .unwrap()
        .body_json()
        .unwrap();
    assert_eq!(
        prov.get("config")
            .and_then(|c| c.get("experiments"))
            .and_then(Json::as_str),
        Some("table1")
    );
    assert!(prov.get("hits").and_then(Json::as_f64).unwrap() >= 1.0);

    // /stats sees exactly one insertion and at least one hit.
    let stats = client::get(addr, "/stats", TIMEOUT)
        .unwrap()
        .body_json()
        .unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("insertions").and_then(Json::as_f64), Some(1.0));
    assert!(cache.get("hits").and_then(Json::as_f64).unwrap() >= 1.0);

    // A one-field delta (seed override) is a miss and recomputes.
    let mut delta = study;
    delta.seed = Some(0xD_E17A);
    let (status, doc) = submit(addr, &delta);
    assert_eq!(status, 202, "delta must miss: {doc:?}");
    let other = await_result(addr, doc.get("job").and_then(Json::as_f64).unwrap() as u64);
    assert_ne!(other, first, "different seed, different manifest");
    server.shutdown();
}

#[test]
fn concurrent_submissions_converge_on_one_cached_body() {
    let server = boot();
    let addr = server.local_addr();

    // Several client threads race the same study plus a few distinct
    // ones; every same-study body must come out byte-identical.
    let bodies: Vec<(bool, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    let mut study = spec(&["table1"]);
                    let same = i % 2 == 0;
                    if !same {
                        study.seed = Some(0x5EED_0000 + i as u64);
                    }
                    let (status, doc) = submit(addr, &study);
                    assert!(status == 200 || status == 202, "submit {i}: {doc:?}");
                    let id = doc.get("job").and_then(Json::as_f64).unwrap() as u64;
                    (same, await_result(addr, id))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let same_bodies: Vec<&String> = bodies
        .iter()
        .filter(|(same, _)| *same)
        .map(|(_, b)| b)
        .collect();
    assert!(same_bodies.len() >= 2);
    for body in &same_bodies[1..] {
        assert_eq!(*body, same_bodies[0], "same study, same bytes");
    }
    for (_, body) in &bodies {
        RunManifest::parse(body).expect("every body is a manifest");
    }
    server.shutdown();
}

#[test]
fn deadline_job_degrades_with_timed_out_provenance_and_skips_the_cache() {
    let server = boot();
    let addr = server.local_addr();

    // A budget far smaller than a tiny table2 run: the watchdog trips,
    // blocks degrade cooperatively, and the job still completes `done`.
    let mut study = spec(&["table2"]);
    study.deadline_secs = Some(0.15);
    let (status, doc) = submit(addr, &study);
    assert_eq!(status, 202, "deadline jobs always compute: {doc:?}");
    let id = doc.get("job").and_then(Json::as_f64).unwrap() as u64;
    let body = await_result(addr, id);
    let manifest = RunManifest::parse(&body).unwrap();
    assert_eq!(
        manifest.config.get("deadline").map(String::as_str),
        Some("0.15")
    );
    assert!(
        !manifest.timeouts.is_empty(),
        "expired budget must surface as timed-out provenance"
    );

    // The degraded job's status payload carries the worker's flight
    // recorder, and the dump names the stage that timed out.
    let status_doc = client::get(addr, &format!("/jobs/{id}"), TIMEOUT)
        .unwrap()
        .body_json()
        .unwrap();
    let flight = status_doc
        .get("flight_recorder")
        .and_then(Json::as_arr)
        .expect("degraded job attaches a flight-recorder dump");
    assert!(!flight.is_empty(), "flight dump must not be empty");
    let timed_out = flight
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some("stage.timeout"))
        .expect("dump records the timed-out stage");
    assert!(
        timed_out
            .get("fields")
            .and_then(|f| f.get("stage"))
            .and_then(Json::as_str)
            .is_some(),
        "stage.timeout record names its stage: {timed_out:?}"
    );

    // Resubmitting the identical deadline job computes again — deadline
    // results are wall-clock-dependent and must never be cached.
    let (status, _) = submit(addr, &study);
    assert_eq!(status, 202, "deadline jobs never hit the cache");
    server.shutdown();
}

#[test]
fn loadgen_report_parses_and_gates_against_a_live_daemon() {
    let server = boot();
    let addr = server.local_addr();

    let mut cfg = foldic_serve::loadgen::LoadConfig::new(addr);
    cfg.jobs = 8;
    cfg.clients = 2;
    cfg.poll_timeout = POLL;
    let report = foldic_serve::loadgen::run(&cfg).expect("loadgen runs");
    let text = report.to_json().to_pretty();
    let parsed = foldic_serve::loadgen::LoadReport::parse(&text).expect("report round-trips");
    assert_eq!(parsed, report);
    parsed.gate().expect("loadgen gate");
    assert!(parsed.hits >= parsed.planned.get("hit").copied().unwrap_or(0));
    server.shutdown();
}

#[test]
fn http_error_paths_are_typed() {
    let server = boot();
    let addr = server.local_addr();

    let cases = [
        ("GET", "/jobs/999", None, 404),
        ("GET", "/jobs/notanumber", None, 400),
        ("GET", "/nope", None, 404),
        ("DELETE", "/jobs", None, 405),
        ("POST", "/jobs", Some("this is not json"), 400),
        ("POST", "/jobs", Some(r#"{"size": "tiny"}"#), 400),
        (
            "POST",
            "/jobs",
            Some(r#"{"experiments": ["layouts"], "size": "tiny"}"#),
            400,
        ),
        ("GET", "/cache/fnv64:0000000000000000", None, 404),
    ];
    for (method, path, body, expect) in cases {
        let response = client::request(addr, method, path, body, TIMEOUT).unwrap();
        assert_eq!(
            response.status,
            expect,
            "{method} {path}: {:?}",
            response.body_text()
        );
        // every error body is a JSON document with an `error` field
        if expect >= 400 {
            let doc = response.body_json().unwrap();
            assert!(doc.get("error").is_some(), "{method} {path}");
        }
    }
    // a queued-then-unfinished job's result is a 409 conflict
    let (status, doc) = submit(addr, &spec(&["fig2"]));
    assert_eq!(status, 202);
    let id = doc.get("job").and_then(Json::as_f64).unwrap() as u64;
    let result = client::get(addr, &format!("/jobs/{id}/result"), TIMEOUT).unwrap();
    assert!(
        result.status == 409 || result.status == 200,
        "pending result must be 409 (or 200 if it already finished)"
    );
    let _ = await_result(addr, id);
    server.shutdown();
}

#[test]
fn metrics_are_deterministic_across_worker_counts() {
    // Counter series must not depend on scheduling: the same seeded
    // traffic replayed against a 1-worker and a 4-worker daemon yields
    // byte-identical expositions once the documented volatile families
    // are filtered out. The mix is cancel-free (a cancel legitimately
    // races its own completion, splitting done/cancelled differently
    // run to run) and single-client (concurrent clients race the
    // hit/miss split).
    let run = |workers: usize| -> String {
        let cfg = ServerConfig {
            workers,
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", Arc::new(BenchRunner), cfg).expect("bind");
        let addr = server.local_addr();
        let mut lc = foldic_serve::loadgen::LoadConfig::new(addr);
        lc.jobs = 8;
        lc.clients = 1;
        lc.mix = foldic_serve::loadgen::MixWeights {
            hit: 5.0,
            miss: 2.0,
            cancel: 0.0,
            deadline: 1.0,
        };
        lc.poll_timeout = POLL;
        let report = foldic_serve::loadgen::run(&lc).expect("loadgen runs");
        report.gate().expect("gate cross-checks server counters");
        assert!(
            report.server.is_some(),
            "bench/2 reports embed the final scrape"
        );
        let scrape = client::get(addr, "/metrics", TIMEOUT)
            .expect("metrics scrape")
            .body_text()
            .expect("exposition is text")
            .to_owned();
        server.shutdown();
        foldic_serve::telemetry::deterministic_subset(&scrape)
    };
    let narrow = run(1);
    let wide = run(4);
    assert_eq!(
        narrow, wide,
        "worker count leaked into the deterministic metric subset"
    );
}

/// Kills the daemon subprocess if the test panics before shutdown.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn daemon_serves_traces_metrics_logs_and_health() {
    use std::collections::BTreeMap;

    // A dedicated daemon process: trace assertions need sole ownership
    // of the process-global trace buffer (in-process servers in this
    // test binary would absorb each other's events on ingest and drop
    // them as strays).
    let port_file = tmp("telemetry.port");
    let log_file = tmp("telemetry.log.jsonl");
    let _ = std::fs::remove_file(&port_file);
    let _ = std::fs::remove_file(&log_file);
    let child = repro()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--port-file",
            port_file.to_str().unwrap(),
            "--log",
            log_file.to_str().unwrap(),
            "--log-level",
            "debug",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut child = KillOnDrop(child);
    let deadline = Instant::now() + TIMEOUT;
    let addr: SocketAddr = loop {
        match std::fs::read_to_string(&port_file)
            .ok()
            .and_then(|t| t.trim().parse().ok())
        {
            Some(addr) => break addr,
            None => {
                assert!(
                    Instant::now() < deadline,
                    "daemon never wrote its port file"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };

    // /healthz: liveness plus version, uptime and build profile.
    let health = client::get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    let doc = health.body_json().unwrap();
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        doc.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(doc.get("uptime_seconds").and_then(Json::as_f64).is_some());
    assert!(matches!(
        doc.get("profile").and_then(Json::as_str),
        Some("debug" | "release")
    ));

    // A client-provided `x-request-id` is honored and echoed back.
    let spec_json = spec(&["fig2"]).to_json().to_compact();
    let submit = client::request_with_headers(
        addr,
        "POST",
        "/jobs",
        &[("x-request-id", "req-gate-1")],
        Some(&spec_json),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(submit.status, 202, "{:?}", submit.body_text());
    assert_eq!(submit.header("x-request-id"), Some("req-gate-1"));
    let id = submit
        .body_json()
        .unwrap()
        .get("job")
        .and_then(Json::as_f64)
        .unwrap() as u64;

    // Error bodies embed the (allocated) request id that the header
    // carries.
    let err = client::get(addr, "/nope", TIMEOUT).unwrap();
    assert_eq!(err.status, 404);
    let err_id = err
        .body_json()
        .unwrap()
        .get("request_id")
        .and_then(Json::as_str)
        .expect("error body embeds its request id")
        .to_owned();
    assert_eq!(err.header("x-request-id"), Some(err_id.as_str()));

    let _ = await_result(addr, id);

    // /jobs/<id>/trace: Chrome-trace JSON with the submit request's
    // HTTP span at the root, the synthesized queue wait beneath it, the
    // job execution beneath that, and flow spans nested further down.
    let trace = client::get(addr, &format!("/jobs/{id}/trace"), TIMEOUT).unwrap();
    assert_eq!(trace.status, 200, "{:?}", trace.body_text());
    let trace_doc = Json::parse(trace.body_text().unwrap()).expect("trace is JSON");
    let events = trace_doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("trace has a traceEvents array");
    let mut spans: BTreeMap<u64, (String, Option<u64>)> = BTreeMap::new();
    for event in events {
        if event.get("ph").and_then(Json::as_str) != Some("B") {
            continue;
        }
        let name = event.get("name").and_then(Json::as_str).unwrap().to_owned();
        let args = event.get("args").expect("begin events carry args");
        let span = args.get("span").and_then(Json::as_f64).unwrap() as u64;
        let parent = args.get("parent").and_then(Json::as_f64).map(|p| p as u64);
        spans.insert(span, (name, parent));
    }
    let find = |want: &str| -> (u64, Option<u64>) {
        spans
            .iter()
            .find(|(_, (name, _))| name == want)
            .map(|(span, (_, parent))| (*span, *parent))
            .unwrap_or_else(|| panic!("span `{want}` missing from trace:\n{spans:?}"))
    };
    let (http_span, http_parent) = find("http.request");
    assert_eq!(http_parent, None, "the submit request is the trace root");
    let (qwait_span, qwait_parent) = find("queue.wait");
    assert_eq!(qwait_parent, Some(http_span));
    let (run_span, run_parent) = find("job.run");
    assert_eq!(run_parent, Some(qwait_span));
    let nested_under_run = spans.iter().any(|(_, (_, parent))| {
        let mut cursor = *parent;
        while let Some(p) = cursor {
            if p == run_span {
                return true;
            }
            cursor = spans.get(&p).and_then(|(_, grandparent)| *grandparent);
        }
        false
    });
    assert!(
        nested_under_run,
        "no flow spans nest under job.run:\n{spans:?}"
    );

    // /metrics: the contract series parse and carry this traffic.
    use foldic_serve::telemetry;
    let scrape = client::get(addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(scrape.status, 200);
    let samples =
        foldic_obs::expo::parse_exposition(scrape.body_text().unwrap()).expect("exposition parses");
    assert_eq!(
        samples.get(&telemetry::requests_series("submit", "POST", 202)),
        Some(&1.0)
    );
    assert_eq!(
        samples.get(&telemetry::jobs_state_series("done")),
        Some(&1.0)
    );
    assert_eq!(samples.get(telemetry::SERIES_CACHE_MISSES), Some(&1.0));
    assert_eq!(samples.get("foldic_serve_workers"), Some(&1.0));

    // Clean shutdown, then the structured log: every line parses, the
    // access log carries the caller's request id, and the job lifecycle
    // events reference it too.
    let down = client::post(addr, "/shutdown", TIMEOUT).unwrap();
    assert_eq!(down.status, 200);
    let status = child.0.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit: {status:?}");
    let log_text = std::fs::read_to_string(&log_file).expect("log file exists");
    let mut events_seen = Vec::new();
    for line in log_text.lines() {
        let (_, event, fields) = foldic_obs::log::parse_line(line)
            .unwrap_or_else(|e| panic!("bad log line: {e}\n{line}"));
        events_seen.push((event, fields));
    }
    let with_our_id = |event: &str| {
        events_seen.iter().any(|(e, fields)| {
            e == event && fields.get("request_id").and_then(Json::as_str) == Some("req-gate-1")
        })
    };
    assert!(with_our_id("request"), "access log line for the submit");
    assert!(
        with_our_id("job.queued"),
        "job.queued carries the request id"
    );
    assert!(with_our_id("job.done"), "job.done carries the request id");
    assert!(
        events_seen.iter().any(|(e, _)| e == "scheduler.drained"),
        "shutdown drain is logged"
    );
}
