//! End-to-end crash-safety gates for the serve stack, driven through the
//! real `repro` binary:
//!
//! * a hand-rolled crash-recovery smoke — boot with `--journal` and
//!   `--cache-dir`, compute a job, SIGKILL the daemon, restart on the
//!   same state, and require the recovered result byte-identical plus
//!   the restored lifetime counters in `/stats`;
//! * the deterministic chaos harness itself ([`foldic_serve::chaos`]) —
//!   seeded load with slow-loris headers and mid-request disconnects, a
//!   mid-flight SIGKILL, and the no-acked-job-lost / byte-identical /
//!   idempotent-replay gate.

use foldic_obs::json::Json;
use foldic_serve::client;
use foldic_serve::JobSpec;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);
/// Debug-build experiment runs are slow; completion polls get a
/// generous ceiling.
const POLL: Duration = Duration::from_secs(600);

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foldic-chaos-gate-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Kills the daemon subprocess if the test panics before shutdown.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Boots `repro serve --journal --cache-dir` against `dir` and waits for
/// its port file.
fn boot(dir: &Path, boot_index: u32) -> (KillOnDrop, SocketAddr) {
    let port_file = dir.join(format!("addr-{boot_index}.txt"));
    let _ = std::fs::remove_file(&port_file);
    let child = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--journal",
            dir.join("journal.jsonl").to_str().unwrap(),
            "--cache-dir",
            dir.join("cache").to_str().unwrap(),
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut child = KillOnDrop(child);
    let deadline = Instant::now() + TIMEOUT;
    let addr = loop {
        if let Some(addr) = std::fs::read_to_string(&port_file)
            .ok()
            .and_then(|t| t.trim().parse().ok())
        {
            break addr;
        }
        assert!(
            child.0.try_wait().expect("wait").is_none(),
            "daemon exited before writing its port file"
        );
        assert!(
            Instant::now() < deadline,
            "daemon never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

fn await_result(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + POLL;
    loop {
        let doc = client::get(addr, &format!("/jobs/{id}"), TIMEOUT)
            .expect("status")
            .body_json()
            .expect("status is JSON");
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("failed") | Some("cancelled") => panic!("job {id} ended {:?}", doc.get("state")),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
    let result = client::get(addr, &format!("/jobs/{id}/result"), TIMEOUT).expect("result");
    assert_eq!(result.status, 200);
    String::from_utf8(result.body).expect("manifest is UTF-8")
}

#[test]
fn sigkilled_daemon_restarts_with_identical_bytes_and_restored_counters() {
    let dir = tmp_dir("smoke");
    let (child, addr) = boot(&dir, 1);

    let spec = JobSpec {
        experiments: vec!["fig2".to_owned()],
        size: "tiny".to_owned(),
        ..JobSpec::default()
    };
    let response = client::post_json(addr, "/jobs", &spec.to_json(), TIMEOUT).expect("submit");
    assert_eq!(response.status, 202, "{:?}", response.body_text());
    let id = response
        .body_json()
        .unwrap()
        .get("job")
        .and_then(Json::as_f64)
        .unwrap() as u64;
    let body = await_result(addr, id);

    // SIGKILL: no drain, no flush beyond what the journal already
    // fsync'd before acks.
    drop(child);

    let (child, addr) = boot(&dir, 2);
    // The finished job survives with byte-identical bytes…
    assert_eq!(
        client::get(addr, &format!("/jobs/{id}"), TIMEOUT)
            .unwrap()
            .body_json()
            .unwrap()
            .get("state")
            .and_then(Json::as_str),
        Some("done"),
        "terminal state must survive the crash"
    );
    assert_eq!(
        await_result(addr, id),
        body,
        "recovered result must be byte-identical"
    );
    // …an identical resubmit is a cache hit served from disk…
    let response = client::post_json(addr, "/jobs", &spec.to_json(), TIMEOUT).expect("resubmit");
    assert_eq!(response.status, 200, "{:?}", response.body_text());
    assert_eq!(
        response
            .body_json()
            .unwrap()
            .get("cache")
            .and_then(Json::as_str),
        Some("hit")
    );
    // …and /stats reports the replayed lifetime counters instead of
    // starting from zero.
    let stats = client::get(addr, "/stats", TIMEOUT)
        .unwrap()
        .body_json()
        .unwrap();
    let num = |path: &[&str]| -> f64 {
        let mut cursor = &stats;
        for key in path {
            cursor = cursor
                .get(key)
                .unwrap_or_else(|| panic!("stats missing {}", path.join(".")));
        }
        cursor.as_f64().unwrap()
    };
    assert!(num(&["counters", "submitted"]) >= 2.0);
    assert!(num(&["counters", "completed"]) >= 1.0);
    assert!(num(&["durability", "journal", "replayed_jobs"]) >= 1.0);
    assert_eq!(num(&["durability", "journal", "reenqueued"]), 0.0);
    assert!(num(&["cache", "insertions"]) >= 1.0, "insertions restored");

    let down = client::post(addr, "/shutdown", TIMEOUT).unwrap();
    assert_eq!(down.status, 200);
    let mut child = child;
    let status = child.0.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_harness_gate_holds_under_seeded_kill() {
    let dir = tmp_dir("harness");
    let cfg = foldic_serve::chaos::ChaosConfig {
        serve_cmd: vec![env!("CARGO_BIN_EXE_repro").to_owned(), "serve".to_owned()],
        seed: 42,
        jobs: 5,
        experiments: vec!["fig2".to_owned()],
        size: "tiny".to_owned(),
        dir: dir.clone(),
        timeout: POLL,
    };
    let report = foldic_serve::chaos::run(&cfg).expect("chaos harness runs");
    assert!(report.acked >= 5, "harness acked {} jobs", report.acked);
    if let Err(problems) = report.gate() {
        panic!("chaos gate failed: {}", problems.join("; "));
    }
    // The report document round-trips through the obs JSON layer.
    let doc = report.to_json();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(foldic_serve::chaos::CHAOS_REPORT_SCHEMA)
    );
    assert_eq!(doc.get("pass"), Some(&Json::Bool(true)));
    let _ = std::fs::remove_dir_all(&dir);
}
