//! End-to-end fault-tolerance gates on the `repro` binary: the
//! acceptance scenario (an injected route-stage panic in one block must
//! not kill the run, must degrade exactly that block, and must leave the
//! report byte-identical across thread counts), the `--retries` knob,
//! and checkpoint/resume equivalence after a simulated kill.

use foldic_obs::manifest::RunManifest;
use foldic_obs::metrics::Metric;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foldic-fault-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Runs repro, asserting success, and returns stdout.
fn run_ok(args: &[&str]) -> String {
    let out = repro().args(args).output().expect("repro runs");
    assert!(
        out.status.success(),
        "repro {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn stripped(path: &Path) -> String {
    let mut m = RunManifest::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    m.strip_timing();
    m.to_json_text()
}

/// The acceptance scenario: `route:ccx:panic` fires on every attempt, so
/// `ccx` exhausts its retries and degrades in each of table2's three
/// full-chip runs — and nothing else changes: exit code 0, every other
/// block intact, and the whole report (tables, footers, manifest)
/// byte-identical between `--threads 1` and `--threads 4`.
#[test]
fn injected_route_panic_degrades_one_block_and_stays_thread_invariant() {
    let m1 = tmp("faulted-t1.json");
    let m4 = tmp("faulted-t4.json");
    let base = ["table2", "--size", "tiny", "--faults", "route:ccx:panic"];
    let out1 = run_ok(
        &[
            &base[..],
            &["--threads", "1", "--manifest", m1.to_str().unwrap()],
        ]
        .concat(),
    );
    let out4 = run_ok(
        &[
            &base[..],
            &["--threads", "4", "--manifest", m4.to_str().unwrap()],
        ]
        .concat(),
    );

    // the report body carries the fault footer, once per run scope
    for out in [&out1, &out4] {
        assert!(out.contains("-- faults --"), "fault footer missing");
        assert_eq!(
            out.matches("ccx: route degraded after 3 attempts").count(),
            3,
            "ccx degrades in all three table2 runs"
        );
    }

    // non-timing manifest content is byte-identical across thread counts
    let s1 = stripped(&m1);
    assert_eq!(
        s1,
        stripped(&m4),
        "faulted manifests must not depend on --threads"
    );

    // the manifest records the provenance: scope, stage, attempts, outcome
    let m = RunManifest::parse(&s1).unwrap();
    assert_eq!(
        m.config.get("faults").map(String::as_str),
        Some("route:ccx:panic")
    );
    assert_eq!(m.faults.len(), 3);
    let mut scopes: Vec<&str> = m.faults.iter().map(|f| f.scope.as_str()).collect();
    scopes.sort_unstable();
    assert_eq!(scopes, ["2d", "core_cache", "core_core"]);
    for f in &m.faults {
        assert_eq!(f.block, "ccx");
        assert_eq!(f.stage, "route");
        assert_eq!(f.attempts, 3);
        assert_eq!(f.disposition, "degraded");
    }

    // and the compare gate agrees the two runs match
    let status = repro()
        .args(["compare", m1.to_str().unwrap(), m4.to_str().unwrap()])
        .status()
        .unwrap();
    assert_eq!(
        status.code(),
        Some(0),
        "cross-thread faulted compare is clean"
    );
}

/// `--retries 0` disables retrying: a transient fault that the first
/// retry would have recovered degrades the block instead, after exactly
/// one attempt.
#[test]
fn retries_zero_degrades_without_a_second_attempt() {
    let m = tmp("retries0.json");
    run_ok(&[
        "table3",
        "--size",
        "tiny",
        "--faults",
        "route:ccx:error:1",
        "--retries",
        "0",
        "--manifest",
        m.to_str().unwrap(),
    ]);
    let m = RunManifest::parse(&std::fs::read_to_string(&m).unwrap()).unwrap();
    assert_eq!(m.config.get("retries").map(String::as_str), Some("0"));
    assert_eq!(m.faults.len(), 1);
    assert_eq!(m.faults[0].block, "ccx");
    assert_eq!(m.faults[0].attempts, 1);
    assert_eq!(m.faults[0].disposition, "degraded");
}

/// Interrupt-and-resume: a run checkpoints every finished block; after a
/// simulated kill (torn tail chopped into the checkpoint), a resumed run
/// replays the intact blocks and produces a byte-identical manifest.
#[test]
fn resumed_run_after_torn_checkpoint_is_byte_identical() {
    let ckpt = tmp("resume.jsonl");
    let ma = tmp("resume-a.json");
    let mb = tmp("resume-b.json");
    run_ok(&[
        "table3",
        "--size",
        "tiny",
        "--resume",
        ckpt.to_str().unwrap(),
        "--manifest",
        ma.to_str().unwrap(),
    ]);

    // simulate a kill mid-append: chop into the checkpoint's last entry
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len() - 40]).unwrap();

    let out = run_ok(&[
        "table3",
        "--size",
        "tiny",
        "--threads",
        "2",
        "--resume",
        ckpt.to_str().unwrap(),
        "--manifest",
        mb.to_str().unwrap(),
    ]);
    assert!(
        out.contains("resume:"),
        "resumed run reports replayed blocks"
    );
    assert!(
        out.contains("checkpoint:"),
        "resumed run reports store stats"
    );

    // Result digests, gauges and fault records must match bit-exactly.
    // Work counters and histograms legitimately shrink on resume —
    // replayed blocks skip their flow stages — so they are not compared.
    let load = |p: &Path| RunManifest::parse(&std::fs::read_to_string(p).unwrap()).unwrap();
    let a = load(&ma);
    let b = load(&mb);
    assert_eq!(a.results, b.results, "resume must not change any result");
    assert_eq!(a.faults, b.faults, "resume must not change fault records");
    let gauges = |m: &RunManifest| -> Vec<(String, u64)> {
        m.metrics
            .metrics
            .iter()
            .filter_map(|(k, v)| match v {
                Metric::Gauge(g) => Some((k.clone(), g.to_bits())),
                _ => None,
            })
            .collect()
    };
    let ga = gauges(&a);
    assert!(!ga.is_empty(), "manifest carries fullchip gauges");
    assert_eq!(ga, gauges(&b), "resume must not move a gauge by one bit");
}
