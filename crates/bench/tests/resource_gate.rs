//! End-to-end gate for resource governance: per-job memory budgets
//! through [`BenchRunner::run_budgeted`] and cost-estimate admission
//! through the serve scheduler, against the real experiment flow.
//!
//! The resource layer is process-global (one installed policy, one
//! tracking allocator), so every test here serializes behind one mutex:
//! a budgeted run racing an unbudgeted sibling test would leak scopes
//! into it and void both results.

use foldic_bench::serve::BenchRunner;
use foldic_obs::json::Json;
use foldic_obs::manifest::RunManifest;
use foldic_serve::queue::{JobState, Scheduler, SchedulerConfig, StudyRunner, Submission};
use foldic_serve::JobSpec;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serializes the tests in this file (see module docs).
static SERIAL: Mutex<()> = Mutex::new(());

const WAIT: Duration = Duration::from_secs(120);

fn spec(names: &[&str], seed: u64) -> JobSpec {
    JobSpec {
        experiments: names.iter().map(|s| (*s).to_owned()).collect(),
        size: "tiny".to_owned(),
        seed: Some(seed),
        ..JobSpec::default()
    }
}

/// Manifest body with the `resources` section dropped — peak figures
/// sit outside the layer's determinism boundary (they depend on what
/// the thread freed during the window), so determinism assertions
/// compare everything else.
fn modulo_resources(body: &str) -> Json {
    let mut doc = Json::parse(body).expect("manifest body parses");
    if let Some(obj) = doc.as_obj_mut() {
        obj.remove("resources");
    }
    doc
}

#[test]
fn tight_budget_degrades_with_provenance_and_thread_invariance() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let runner = BenchRunner;
    // 64 KiB is far below every tiny block's working set even after the
    // retry ladder triples it, so every cluster block must degrade to
    // the analytical model — and the job must still succeed.
    let tight = Some(64 << 10);
    let body_t1 = runner
        .run_budgeted(&spec(&["table2"], 7), tight)
        .expect("tight budget degrades, never fails the job");
    let manifest = RunManifest::parse(&body_t1).expect("body is a manifest");
    assert!(
        !manifest.mem_exceeded.is_empty(),
        "a tight budget must surface mem_exceeded provenance"
    );
    assert!(
        manifest
            .mem_exceeded
            .iter()
            .any(|e| e.disposition == "degraded"),
        "64k cannot be recovered into; some block must degrade"
    );
    assert!(
        !manifest.resources.is_empty(),
        "budgeted runs record per-stage peak provenance"
    );
    assert!(
        manifest.results.contains_key("table2"),
        "degraded blocks still yield a result"
    );

    // Breach decisions are per-thread net deltas, so the same blocks
    // degrade whether the pool has 1 worker or 4 and the body matches
    // modulo the peak figures.
    let mut wide = spec(&["table2"], 7);
    wide.threads = 4;
    let body_t4 = runner
        .run_budgeted(&wide, tight)
        .expect("threads do not change the outcome");
    // config records only size/seed/cluster/experiments, so the two
    // bodies are comparable directly
    assert_eq!(
        modulo_resources(&body_t1),
        modulo_resources(&body_t4),
        "tight-budget degradation must be thread-invariant"
    );
}

#[test]
fn generous_budget_changes_nothing_but_adds_provenance() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let runner = BenchRunner;
    let plain = runner.run(&spec(&["table2"], 7)).expect("unbudgeted run");
    let budgeted = runner
        .run_budgeted(&spec(&["table2"], 7), Some(64 << 20))
        .expect("generous budget");
    let plain_manifest = RunManifest::parse(&plain).expect("plain manifest");
    let manifest = RunManifest::parse(&budgeted).expect("budgeted manifest");
    assert!(
        manifest.mem_exceeded.is_empty(),
        "64M covers every tiny block with two orders of magnitude to spare"
    );
    assert!(
        !manifest.resources.is_empty(),
        "peaks are recorded even when nothing breaches"
    );
    assert_eq!(
        plain_manifest.results, manifest.results,
        "an unbreached budget must not perturb results"
    );
    // pay-for-use in the other direction: the unbudgeted body carries
    // neither section
    assert!(plain_manifest.mem_exceeded.is_empty() && plain_manifest.resources.is_empty());
    assert!(!plain.contains("resources") && !plain.contains("mem_exceeded"));
}

#[test]
fn scheduler_admission_prices_sheds_and_budgets_real_jobs() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // 5 MiB admits one single-study tiny job (~4 MiB estimate) and
    // classifies a two-study spec oversized — the same geometry the
    // overload harness uses against the daemon.
    let limit = 5 << 20;
    let sched = Scheduler::new(
        Arc::new(BenchRunner),
        SchedulerConfig {
            queue_capacity: 8,
            workers: 2,
            retry_after_secs: 1,
            mem_limit: Some(limit),
        },
    );

    // The oversized job reserves the whole ledger at admission...
    let over = match sched.submit(spec(&["table2", "fig2"], 0xF01D)) {
        Submission::Queued { id } => id,
        other => panic!("oversized spec must be admitted, got {other:?}"),
    };
    // ...so a fitting job right behind it is shed with a usable hint.
    match sched.submit(spec(&["table2"], 1)) {
        Submission::Shed { retry_after_secs } => {
            assert!(retry_after_secs >= 1, "shed must carry a backoff hint");
        }
        other => panic!("expected Shed while the ledger is full, got {other:?}"),
    }

    assert_eq!(sched.wait_terminal(over, WAIT), Some(JobState::Done));
    let status = sched.status(over).expect("oversized job status");
    assert!(
        status.cache_key.is_none(),
        "budget-degraded bodies must stay out of the content cache"
    );
    let body = status.body.expect("oversized job body");
    let manifest = RunManifest::parse(&body).expect("oversized body is a manifest");
    assert!(
        !manifest.resources.is_empty(),
        "the derived budget must leave resources provenance in the body"
    );

    // With the ledger drained the same fitting spec is admitted, runs
    // unbudgeted, and its body carries no resource sections.
    let fit = match sched.submit(spec(&["table2"], 1)) {
        Submission::Queued { id } => id,
        other => panic!("fitting spec must be admitted after drain, got {other:?}"),
    };
    assert_eq!(sched.wait_terminal(fit, WAIT), Some(JobState::Done));
    let fit_body = sched
        .status(fit)
        .expect("fitting status")
        .body
        .expect("body");
    assert!(
        !fit_body.contains("resources") && !fit_body.contains("mem_exceeded"),
        "fitting jobs run unbudgeted and pay nothing"
    );

    // The ledger and counters line up with what we just observed.
    let stats = sched.stats_json();
    let resources = stats.get("resources").expect("stats resources section");
    let num = |key: &str| resources.get(key).and_then(Json::as_f64).map(|n| n as u64);
    assert_eq!(num("limit_bytes"), Some(limit));
    assert_eq!(num("oversized"), Some(1));
    assert_eq!(num("mem_shed"), Some(1));
    assert_eq!(num("reserved_bytes"), Some(0), "reservations must drain");
    assert!(num("reserved_peak_bytes") >= Some(limit));
    sched.shutdown();
}

#[test]
fn unlimited_scheduler_stats_stay_byte_identical() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Pay-for-use at the daemon surface: without --mem-limit, /stats
    // must not grow a resources section and /metrics must not emit the
    // mem families.
    let sched = Scheduler::new(
        Arc::new(BenchRunner),
        SchedulerConfig {
            queue_capacity: 8,
            workers: 1,
            retry_after_secs: 1,
            mem_limit: None,
        },
    );
    let id = match sched.submit(spec(&["table1"], 2)) {
        Submission::Queued { id } => id,
        other => panic!("expected Queued, got {other:?}"),
    };
    assert_eq!(sched.wait_terminal(id, WAIT), Some(JobState::Done));
    assert!(
        sched.stats_json().get("resources").is_none(),
        "no limit, no resources section"
    );
    let metrics = sched.metrics_text();
    assert!(
        !metrics.contains("foldic_serve_mem_") && !metrics.contains("foldic_serve_jobs_oversized"),
        "no limit, no mem metric families"
    );
    sched.shutdown();
}
