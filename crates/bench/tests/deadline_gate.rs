//! End-to-end deadline gates on the `repro` binary: the acceptance
//! scenario (a stage budget converts an injected stall into a
//! deterministic timed-out degrade, thread-invariantly), graceful
//! degradation under an overall `--deadline`, pay-for-use manifest
//! layout, and usage-error rejection of malformed deadline flags.

use foldic_obs::manifest::RunManifest;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foldic-deadline-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Runs repro, asserting success, and returns stdout.
fn run_ok(args: &[&str]) -> String {
    let out = repro().args(args).output().expect("repro runs");
    assert!(
        out.status.success(),
        "repro {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn stripped(path: &Path) -> String {
    let mut m = RunManifest::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    m.strip_timing();
    m.to_json_text()
}

/// The acceptance scenario: `route:ccx:slow` stalls ccx's route stage on
/// every attempt and `--stage-timeout route=0.1` bounds it, so ccx times
/// out, retries once, times out again and degrades — deterministically,
/// in each of table2's three full-chip runs — while every other block
/// (whose route finishes organically well inside the budget) is
/// untouched. The whole report must not depend on `--threads`.
#[test]
fn stage_timeout_degrades_stalled_block_and_stays_thread_invariant() {
    let m1 = tmp("timed-t1.json");
    let m4 = tmp("timed-t4.json");
    let base = [
        "table2",
        "--size",
        "tiny",
        "--faults",
        "route:ccx:slow",
        "--stage-timeout",
        "route=0.1",
        "--retries",
        "1",
    ];
    let out1 = run_ok(
        &[
            &base[..],
            &["--threads", "1", "--manifest", m1.to_str().unwrap()],
        ]
        .concat(),
    );
    let out4 = run_ok(
        &[
            &base[..],
            &["--threads", "4", "--manifest", m4.to_str().unwrap()],
        ]
        .concat(),
    );

    // the footer names the timeout, once per run scope
    for out in [&out1, &out4] {
        assert_eq!(
            out.matches("ccx: route degraded after 2 attempts (timed out)")
                .count(),
            3,
            "ccx times out in all three table2 runs:\n{out}"
        );
        assert!(
            out.contains("timeouts: 3 run(s) hit a wall-clock budget"),
            "summary line missing:\n{out}"
        );
    }

    // non-timing manifest content is byte-identical across thread counts
    let s1 = stripped(&m1);
    assert_eq!(
        s1,
        stripped(&m4),
        "timed-out manifests must not depend on --threads"
    );

    // provenance lands in `timeouts`, not `faults`, with the canonical
    // stage-budget spec in config
    let m = RunManifest::parse(&s1).unwrap();
    assert_eq!(
        m.config.get("stage_timeouts").map(String::as_str),
        Some("route=0.1")
    );
    assert!(
        m.faults.is_empty(),
        "injected slow is a timeout, not a fault"
    );
    assert_eq!(m.timeouts.len(), 3);
    let mut scopes: Vec<&str> = m.timeouts.iter().map(|f| f.scope.as_str()).collect();
    scopes.sort_unstable();
    assert_eq!(scopes, ["2d", "core_cache", "core_core"]);
    for f in &m.timeouts {
        assert_eq!(f.block, "ccx");
        assert_eq!(f.stage, "route");
        assert_eq!(f.attempts, 2);
        assert_eq!(f.disposition, "degraded");
    }

    // and the compare gate agrees the two runs match
    let status = repro()
        .args(["compare", m1.to_str().unwrap(), m4.to_str().unwrap()])
        .status()
        .unwrap();
    assert_eq!(
        status.code(),
        Some(0),
        "cross-thread timed-out compare is clean"
    );
}

/// An overall `--deadline` degrades instead of hanging: with every
/// block's route stage stalled, the run still exits 0 within a bounded
/// wall clock, records what it had to give up, and says so on stdout.
/// (Which blocks degrade in-flight vs. skipped depends on scheduling, so
/// this gate checks outcome shape, not byte identity.)
#[test]
fn overall_deadline_degrades_gracefully_instead_of_hanging() {
    let m = tmp("overall.json");
    let out = run_ok(&[
        "table3",
        "--size",
        "tiny",
        "--threads",
        "2",
        "--faults",
        "route:*:slow",
        "--retries",
        "0",
        "--deadline",
        "2",
        "--manifest",
        m.to_str().unwrap(),
    ]);
    assert!(
        out.contains("timeouts:"),
        "stalled run must report timeouts:\n{out}"
    );
    let m = RunManifest::parse(&std::fs::read_to_string(&m).unwrap()).unwrap();
    assert_eq!(m.config.get("deadline").map(String::as_str), Some("2"));
    assert!(
        !m.timeouts.is_empty(),
        "stalled blocks must land in the timeouts section"
    );
    for f in &m.timeouts {
        assert_eq!(f.disposition, "degraded");
    }
}

/// Pay-for-use: a run without deadline flags writes a manifest with no
/// `timeouts` key and no deadline config entries — byte-compatible with
/// manifests from before the deadline layer existed.
#[test]
fn deadline_free_manifest_has_no_timeout_keys() {
    let m = tmp("noflags.json");
    run_ok(&[
        "table3",
        "--size",
        "tiny",
        "--manifest",
        m.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&m).unwrap();
    assert!(
        !text.contains("\"timeouts\""),
        "timeouts key must be absent"
    );
    let m = RunManifest::parse(&text).unwrap();
    assert!(!m.config.contains_key("deadline"));
    assert!(!m.config.contains_key("stage_timeouts"));
}

/// Malformed deadline flags are usage errors (exit 2 with a message),
/// caught before any computation starts.
#[test]
fn malformed_deadline_flags_are_usage_errors() {
    let cases: &[&[&str]] = &[
        &["table3", "--deadline", "0"],
        &["table3", "--deadline", "-1"],
        &["table3", "--deadline", "soon"],
        &["table3", "--deadline", "inf"],
        &["table3", "--deadline", "1", "--deadline", "2"],
        &["table3", "--stage-timeout", "route"],
        &["table3", "--stage-timeout", "route=abc"],
        &["table3", "--stage-timeout", "warp=1"],
        &["table3", "--stage-timeout", "route=-0.5"],
        &["table3", "--stage-timeout", "route=1,route=2"],
        &["table3", "--stage-timeout", ","],
    ];
    for args in cases {
        let out = repro().args(*args).output().expect("repro runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must be a usage error, stdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("usage: repro"),
            "{args:?} must print usage, stderr:\n{err}"
        );
    }
}
