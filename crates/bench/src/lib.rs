#![warn(missing_docs)]
//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! The [`experiments`] module holds one runner per table/figure; each
//! returns a formatted report comparing the measured values against the
//! paper's published numbers ([`paper`]). The `repro` binary drives them
//! from the command line; the Criterion benches in `benches/` time the
//! underlying kernels.
//!
//! Absolute numbers are not expected to match the paper — the substrate
//! is a synthetic design and an open tool chain, not the OpenSPARC T2 RTL
//! under commercial sign-off tools. What must match is the *shape*: which
//! design wins, by roughly what factor, and where the crossovers fall.

pub mod experiments;
pub mod kernels;
pub mod paper;
pub mod scale;
pub mod serve;

use foldic::prelude::*;
use foldic::{CheckpointStore, FaultRecord, RetryPolicy};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Shared experiment context: one generated design plus cached full-chip
/// runs (several experiments read the same runs).
///
/// `threads` fans both the per-block loops inside a full-chip run and the
/// multi-configuration sweeps of the experiments out over the execution
/// engine. Every reported number is identical for any thread count: jobs
/// are independent, each seeds its own RNG stream, and the engine returns
/// results in submission order.
pub struct Ctx {
    /// The pristine generated design (cloned per run).
    pub design: Design,
    /// Matching technology.
    pub tech: Technology,
    /// Generation config used.
    pub cfg: T2Config,
    /// Worker threads for full-chip runs and experiment sweeps.
    pub threads: usize,
    /// Retry policy for faulted blocks inside full-chip runs.
    pub retry: RetryPolicy,
    /// Optional checkpoint store shared by every full-chip run: finished
    /// blocks are recorded and replayed on resume.
    pub checkpoint: Option<Arc<CheckpointStore>>,
    cache: HashMap<(DesignStyle, bool), FullChipResult>,
}

impl Ctx {
    /// Generates the design for `cfg` (serial execution).
    pub fn new(cfg: T2Config) -> Self {
        Self::with_threads(cfg, 1)
    }

    /// Generates the design for `cfg` with a worker-thread count.
    pub fn with_threads(cfg: T2Config, threads: usize) -> Self {
        let (design, tech) = cfg.generate();
        Self::with_design(cfg, design, tech, threads)
    }

    /// Wraps a pre-built design (e.g. loaded from a `foldic-db/1`
    /// snapshot) instead of generating one. `cfg` must be the config the
    /// design was generated from, so experiment headers and manifests
    /// stay truthful.
    pub fn with_design(cfg: T2Config, design: Design, tech: Technology, threads: usize) -> Self {
        Self {
            design,
            tech,
            cfg,
            threads,
            retry: RetryPolicy::default(),
            checkpoint: None,
            cache: HashMap::new(),
        }
    }

    /// Runs (or returns the cached) full-chip flow for a style.
    pub fn fullchip(&mut self, style: DesignStyle, dual_vth: bool) -> &FullChipResult {
        if !self.cache.contains_key(&(style, dual_vth)) {
            let mut design = self.design.clone();
            let cfg = FullChipConfig {
                dual_vth,
                threads: self.threads,
                retry: self.retry,
                checkpoint: self.checkpoint.clone(),
                ..FullChipConfig::default()
            };
            let result = run_fullchip(&mut design, &self.tech, style, &cfg)
                .unwrap_or_else(|e| panic!("full-chip {} failed: {e}", style.label()));
            self.cache.insert((style, dual_vth), result);
        }
        &self.cache[&(style, dual_vth)]
    }

    /// Fills the cache for several `(style, dual_vth)` configurations at
    /// once, one engine job per missing configuration (the sweep-level
    /// fan-out; each job runs its blocks serially). Results are identical
    /// to filling the cache through [`Ctx::fullchip`].
    pub fn warm(&mut self, runs: &[(DesignStyle, bool)]) {
        let missing: Vec<(DesignStyle, bool)> = runs
            .iter()
            .copied()
            .filter(|k| !self.cache.contains_key(k))
            .collect();
        if missing.is_empty() {
            return;
        }
        let design = &self.design;
        let tech = &self.tech;
        let retry = self.retry;
        let checkpoint = &self.checkpoint;
        let results = foldic_exec::par_map(self.threads, missing, |_, (style, dual_vth)| {
            let mut d = design.clone();
            let cfg = FullChipConfig {
                dual_vth,
                threads: 1,
                retry,
                checkpoint: checkpoint.clone(),
                ..FullChipConfig::default()
            };
            let result = run_fullchip(&mut d, tech, style, &cfg)
                .unwrap_or_else(|e| panic!("full-chip {} failed: {e}", style.label()));
            ((style, dual_vth), result)
        });
        self.cache.extend(results);
    }

    /// Returns a previously computed full-chip run (panics when the
    /// configuration has not been run; see [`Ctx::warm`]).
    pub fn cached(&self, style: DesignStyle, dual_vth: bool) -> &FullChipResult {
        self.cache
            .get(&(style, dual_vth))
            .expect("full-chip run cached via warm()/fullchip()")
    }

    /// Runs the plain 2D block flow on a clone of one block and returns
    /// its metrics.
    pub fn block_2d(&self, name: &str) -> DesignMetrics {
        let mut d = self.design.clone();
        let id = d.find_block(name).expect("known block");
        let b = d.block_mut(id);
        let budgets = foldic_timing::TimingBudgets::relaxed(&b.netlist, &self.tech);
        foldic::flow::run_block_flow(b, &self.tech, &budgets, &FlowConfig::default())
            .unwrap_or_else(|e| panic!("2D flow for {name} failed: {e}"))
            .metrics
    }
}

/// Formats the fault footer appended to reports whose full-chip runs
/// recovered or degraded blocks. Empty for clean runs, so fault-free
/// reports stay byte-identical to pre-fault-tolerance output. Records
/// are sorted and deduplicated (several experiments share cached runs),
/// so the footer is deterministic across thread counts.
pub fn fault_footer(runs: &[&FullChipResult]) -> String {
    let mut records: Vec<&FaultRecord> = runs.iter().flat_map(|r| r.faults.iter()).collect();
    records.sort();
    records.dedup();
    if records.is_empty() {
        return String::new();
    }
    let mut out = String::from("-- faults --\n");
    for r in records {
        let _ = writeln!(out, "!! {r}");
    }
    out
}

/// Percentage delta, `(new − base) / base × 100`.
pub fn pct(base: f64, new: f64) -> f64 {
    foldic::metrics::pct(base, new)
}

/// Formats a `measured vs paper` delta pair.
pub fn fmt_delta(measured: f64, paper: f64) -> String {
    format!("{measured:+7.1}% (paper {paper:+6.1}%)")
}
