//! Kernel microbenchmarks behind `repro bench`.
//!
//! Times the three hot kernels of the flow — sequence-pair packing (the
//! SA inner loop), one SA temperature step, and one quadratic-system
//! solve — with the same built-in harness the `cargo bench` targets use
//! (fixed sample count, median/min/max; Criterion is a registry
//! dependency and this workspace is offline-first). `--json` emits a
//! `foldic-kernel-bench/1` document so CI can gate on the run completing
//! with well-formed output; wall-time thresholds are deliberately not
//! enforced (the reference container has one core and shares it).

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use foldic_floorplan::seqpair::{anneal_floorplan, FpBlock, Packer, SaConfig, SeqPair};
use foldic_obs::json::Json;
use foldic_place::QuadraticSystem;
use foldic_t2::T2Config;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Timing samples per kernel.
const SAMPLES: usize = 10;

/// One timed kernel: wall times are per *sample*, each sample running the
/// kernel body `iters` times back to back (sub-µs kernels need batching
/// for a stable clock read).
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name (stable key in the JSON document).
    pub name: String,
    /// Median wall time of one sample, ms.
    pub median_ms: f64,
    /// Fastest sample, ms.
    pub min_ms: f64,
    /// Slowest sample, ms.
    pub max_ms: f64,
    /// Samples taken.
    pub samples: usize,
    /// Kernel executions per sample.
    pub iters: u64,
}

fn time_kernel(
    filter: &Option<String>,
    name: &str,
    iters: u64,
    mut f: impl FnMut(),
) -> Option<KernelResult> {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return None;
        }
    }
    let mut run = || {
        for _ in 0..iters {
            f();
        }
    };
    run(); // warm-up
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(KernelResult {
        name: name.to_owned(),
        median_ms: times[times.len() / 2],
        min_ms: times[0],
        max_ms: times[times.len() - 1],
        samples: SAMPLES,
        iters,
    })
}

/// Deterministic random blocks for the packing kernels (dims in the range
/// the study's floorplans see).
fn random_blocks(rng: &mut StdRng, n: usize) -> Vec<FpBlock> {
    (0..n)
        .map(|_| FpBlock {
            w: rng.gen::<f64>() * 120.0 + 5.0,
            h: rng.gen::<f64>() * 120.0 + 5.0,
        })
        .collect()
}

/// A deterministic random permutation pair over `n` blocks.
fn random_seq_pair(rng: &mut StdRng, n: usize) -> SeqPair {
    let mut sp = SeqPair::identity(n);
    for i in (1..n).rev() {
        sp.pos.swap(i, rng.gen_range(0..i + 1));
        sp.neg.swap(i, rng.gen_range(0..i + 1));
    }
    sp
}

/// Runs every kernel matching `filter` (substring; `None` = all) and
/// returns the results in execution order.
pub fn run_kernels(filter: &Option<String>) -> Vec<KernelResult> {
    let mut results = Vec::new();
    let mut push = |r: Option<KernelResult>| {
        if let Some(r) = r {
            println!(
                "{:<24} median {:>10.3} ms   min {:>10.3} ms   max {:>10.3} ms   ({} iters/sample)",
                r.name, r.median_ms, r.min_ms, r.max_ms, r.iters
            );
            results.push(r);
        }
    };

    // Sequence-pair packing at the paper-relevant sizes: 14 top-level
    // units, 46 blocks (the study's block count), 128 as the stress size.
    // Batched because a single pack is sub-µs after the FAST-SP rewrite.
    for (n, iters) in [(14usize, 400u64), (46, 200), (128, 100)] {
        let mut rng = StdRng::seed_from_u64(0xDAC2_0140 + n as u64);
        let blocks = random_blocks(&mut rng, n);
        let sp = random_seq_pair(&mut rng, n);
        let mut packer = Packer::new();
        push(time_kernel(filter, &format!("pack_n{n}"), iters, || {
            black_box(packer.pack(&sp, &blocks));
        }));
    }

    // One SA temperature step over 46 blocks inside a fixed outline: the
    // per-step cost the annealer pays `steps` times per floorplan.
    {
        let mut rng = StdRng::seed_from_u64(0xDAC2_0146);
        let blocks = random_blocks(&mut rng, 46);
        let cfg = SaConfig {
            steps: 1,
            ..Default::default()
        };
        push(time_kernel(filter, "sa_temp_step_n46", 1, || {
            black_box(anneal_floorplan(
                &blocks,
                &Vec::new(),
                Some((300.0, 300.0)),
                &cfg,
            ));
        }));
    }

    // One quadratic-system solve on the tiny T2's l2t0 block (the solve
    // the placer repeats `iterations` times per block).
    {
        let (design, _tech) = T2Config::tiny().generate();
        let l2t = design
            .find_block("l2t0")
            .map(|id| design.block(id))
            .unwrap_or_else(|| {
                eprintln!("tiny T2 design lost its l2t0 block");
                std::process::exit(2);
            });
        let outline = l2t.outline;
        let mut nl = l2t.netlist.clone();
        let mut sys = QuadraticSystem::build(&nl, outline);
        push(time_kernel(filter, "quadratic_solve_l2t", 10, || {
            sys.solve(&mut nl, outline, 60, 0.1);
            black_box(sys.num_movable());
        }));
    }

    results
}

/// Serializes results as a `foldic-kernel-bench/1` document.
pub fn to_json(results: &[KernelResult]) -> Json {
    let kernels: BTreeMap<String, Json> = results
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                Json::obj([
                    ("median_ms".to_owned(), Json::Num(r.median_ms)),
                    ("min_ms".to_owned(), Json::Num(r.min_ms)),
                    ("max_ms".to_owned(), Json::Num(r.max_ms)),
                    ("samples".to_owned(), Json::Num(r.samples as f64)),
                    ("iters".to_owned(), Json::Num(r.iters as f64)),
                ]),
            )
        })
        .collect();
    Json::obj([
        (
            "schema".to_owned(),
            Json::Str("foldic-kernel-bench/1".to_owned()),
        ),
        ("kernels".to_owned(), Json::Obj(kernels)),
    ])
}
