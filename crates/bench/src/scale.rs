//! Database scaling benchmark: 10 k → 1 M cells.
//!
//! Builds synthetic [`ScaleConfig`] designs at increasing sizes and
//! measures what the design database actually costs: bytes per cell in
//! memory, snapshot size on disk, wall time to build / save / load /
//! check, and — the headline numbers — the bytes-per-cell reduction
//! against a String-per-entity baseline and the scaling exponent between
//! consecutive sizes (1.0 = perfectly linear).
//!
//! The baseline is an honest mirror of the pre-interning representation:
//! one heap `String` per instance, net and port plus a per-net `Vec` of
//! sink pins, arenas at the capacity `push`-doubling actually reached,
//! and allocator chunk overhead on every per-entity allocation (see
//! [`heap_chunk`]). It is costed per block with `size_of` on replica
//! structs — never instantiated — so even the million-cell row runs with
//! peak memory proportional to one block, the same streaming guarantee
//! the generator itself makes.
//!
//! No wall-time thresholds are asserted anywhere: CI cores vary. The
//! numbers are recorded in the JSON report (`foldic-scale-bench/1`) and
//! regressions are caught by reading `BENCH_scale.json` diffs, not by
//! flaky gates.

use foldic_netlist::db::load_design;
use foldic_netlist::PinRef;
use foldic_t2::ScaleConfig;
use foldic_tech::Technology;
use std::fmt::Write as _;
use std::time::Instant;

/// Cell counts the scaling gate sweeps.
pub const SCALE_SIZES: [u64; 3] = [10_000, 100_000, 1_000_000];

/// Seed used by the committed `BENCH_scale.json`.
pub const SCALE_SEED: u64 = 0x5CA1_AB1E;

/// One row of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Total instance count.
    pub cells: u64,
    /// Blocks the design splits into.
    pub blocks: usize,
    /// Wall time to build every block, seconds.
    pub build_s: f64,
    /// Wall time to stream the design into a snapshot, seconds.
    pub save_s: f64,
    /// Wall time to load the snapshot back, seconds.
    pub load_s: f64,
    /// Wall time to `check()` every loaded block, seconds.
    pub check_s: f64,
    /// In-memory heap bytes of the interned/SoA representation.
    pub heap_bytes: u64,
    /// Heap bytes a String-per-entity representation would need.
    pub legacy_bytes: u64,
    /// Snapshot size on disk.
    pub file_bytes: u64,
    /// Largest single block's heap bytes (the streaming peak).
    pub peak_block_bytes: u64,
}

impl ScaleRow {
    /// Interned/SoA bytes per cell.
    pub fn bytes_per_cell(&self) -> f64 {
        self.heap_bytes as f64 / self.cells as f64
    }

    /// String-per-entity baseline bytes per cell.
    pub fn legacy_bytes_per_cell(&self) -> f64 {
        self.legacy_bytes as f64 / self.cells as f64
    }

    /// How many times smaller the interned representation is.
    pub fn reduction(&self) -> f64 {
        self.legacy_bytes as f64 / self.heap_bytes as f64
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Seed the designs were generated with.
    pub seed: u64,
    /// One row per size, ascending.
    pub rows: Vec<ScaleRow>,
}

/// Field-for-field replicas of the pre-interning entity structs (one
/// owned `String` per entity, one `Vec<PinRef>` per net, AoS arenas),
/// used only for `size_of` — never instantiated.
mod legacy {
    #![allow(dead_code)]
    use foldic_geom::{Point, Tier};
    use foldic_netlist::{ClockDomain, GroupId, InstMaster, PinRef, PortDir};

    pub struct Inst {
        pub name: String,
        pub master: InstMaster,
        pub pos: Point,
        pub tier: Tier,
        pub fixed: bool,
        pub group: Option<GroupId>,
    }

    pub struct Net {
        pub name: String,
        pub driver: Option<PinRef>,
        pub sinks: Vec<PinRef>,
        pub domain: ClockDomain,
        pub is_clock: bool,
    }

    pub struct Port {
        pub name: String,
        pub dir: PortDir,
        pub domain: ClockDomain,
        pub pos: Point,
        pub tier: Tier,
    }
}

/// Capacity a `Vec` reaches after `n` plain `push`es: doubling growth
/// from a minimum first allocation of 4 — exactly what the pre-interning
/// arenas and per-net sink vectors did. The SoA side's `heap_bytes()`
/// likewise counts capacity, so the comparison is capacity-to-capacity.
fn grown_cap(n: usize) -> u64 {
    if n == 0 {
        0
    } else {
        n.next_power_of_two().max(4) as u64
    }
}

/// Heap actually consumed by one malloc of `n` bytes under the glibc
/// 64-bit allocator: an 8-byte chunk header, 16-byte size granularity,
/// 32-byte minimum chunk. The String-per-entity representation paid
/// this on *every* name and sink vector — millions of small chunks —
/// while the SoA side makes ~17 large allocations per netlist, where
/// the same overhead rounds to nothing (so `heap_bytes()` fairly skips
/// it there).
fn heap_chunk(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        ((n + 8).div_ceil(16) * 16).max(32)
    }
}

/// Bytes the String-per-entity representation would occupy for this
/// block: AoS arenas at push-grown capacity, one name allocation per
/// entity, one sink buffer per net — each small allocation costed at
/// its real chunk size.
fn legacy_block_bytes(nl: &foldic_netlist::Netlist) -> u64 {
    use std::mem::size_of;
    let mut bytes = grown_cap(nl.num_insts()) * size_of::<legacy::Inst>() as u64
        + grown_cap(nl.num_nets()) * size_of::<legacy::Net>() as u64
        + grown_cap(nl.num_ports()) * size_of::<legacy::Port>() as u64;
    let mut scratch = String::new();
    let name_len = |scratch: &mut String, name| {
        scratch.clear();
        let _ = write!(scratch, "{}", nl.name_of(name));
        heap_chunk(scratch.len() as u64)
    };
    for (_, inst) in nl.insts() {
        bytes += name_len(&mut scratch, inst.name);
    }
    for (_, net) in nl.nets() {
        bytes += name_len(&mut scratch, net.name);
        bytes += heap_chunk(grown_cap(net.fanout()) * size_of::<PinRef>() as u64);
    }
    for (_, port) in nl.ports() {
        bytes += name_len(&mut scratch, port.name);
    }
    bytes
}

/// Runs the sweep for every size in [`SCALE_SIZES`] up to `max_cells`,
/// writing snapshots into `dir` (they are deleted before returning).
///
/// # Panics
///
/// Panics when a snapshot cannot be written or read back — the gate is
/// completion, and a broken database *is* the failure.
pub fn run(seed: u64, max_cells: u64, dir: &std::path::Path) -> ScaleReport {
    let tech = Technology::cmos28();
    let mut rows = Vec::new();
    for &cells in SCALE_SIZES.iter().filter(|&&c| c <= max_cells) {
        let cfg = ScaleConfig::new(cells, seed);
        let path = dir.join(format!("scale_{cells}.fdb"));

        // Build pass: one block at a time, costing both representations
        // and dropping each block before the next (streaming peak).
        let t0 = Instant::now();
        let mut heap_bytes = 0u64;
        let mut peak_block_bytes = 0u64;
        let mut legacy_bytes = 0u64;
        for b in 0..cfg.num_blocks() {
            let blk = cfg.block(b, &tech);
            let hb = blk.netlist.heap_bytes();
            heap_bytes += hb;
            peak_block_bytes = peak_block_bytes.max(hb);
            legacy_bytes += legacy_block_bytes(&blk.netlist);
        }
        let build_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        cfg.save(&tech, &path)
            .unwrap_or_else(|e| panic!("save {cells}-cell snapshot: {e}"));
        let save_s = t0.elapsed().as_secs_f64();
        let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

        let t0 = Instant::now();
        let (design, info) =
            load_design(&path).unwrap_or_else(|e| panic!("load {cells}-cell snapshot: {e}"));
        let load_s = t0.elapsed().as_secs_f64();
        assert_eq!(info.cells, cells, "snapshot census must match");

        let t0 = Instant::now();
        for (_, blk) in design.blocks() {
            blk.netlist
                .check()
                .unwrap_or_else(|e| panic!("{cells}-cell check: {e}"));
        }
        let check_s = t0.elapsed().as_secs_f64();

        let _ = std::fs::remove_file(&path);
        rows.push(ScaleRow {
            cells,
            blocks: cfg.num_blocks(),
            build_s,
            save_s,
            load_s,
            check_s,
            heap_bytes,
            legacy_bytes,
            file_bytes,
            peak_block_bytes,
        });
    }
    ScaleReport { seed, rows }
}

impl ScaleReport {
    /// Scaling exponent of `f` between consecutive rows:
    /// `ln(t2/t1) / ln(n2/n1)`; 1.0 is perfectly linear.
    fn exponent(a: &ScaleRow, b: &ScaleRow, f: impl Fn(&ScaleRow) -> f64) -> f64 {
        let (ta, tb) = (f(a).max(1e-9), f(b).max(1e-9));
        (tb / ta).ln() / (b.cells as f64 / a.cells as f64).ln()
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "database scaling sweep (seed {:#x})", self.seed);
        let _ = writeln!(
            out,
            "{:>9} {:>6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>6} {:>9}",
            "cells",
            "blocks",
            "build s",
            "save s",
            "load s",
            "check s",
            "B/cell",
            "old B/c",
            "shrink",
            "peak MiB"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>9} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8.1} {:>8.1} {:>5.1}x {:>9.1}",
                r.cells,
                r.blocks,
                r.build_s,
                r.save_s,
                r.load_s,
                r.check_s,
                r.bytes_per_cell(),
                r.legacy_bytes_per_cell(),
                r.reduction(),
                r.peak_block_bytes as f64 / (1024.0 * 1024.0),
            );
        }
        for w in self.rows.windows(2) {
            let _ = writeln!(
                out,
                "scaling {} -> {}: build exp {:.2}, load exp {:.2}, check exp {:.2}",
                w[0].cells,
                w[1].cells,
                Self::exponent(&w[0], &w[1], |r| r.build_s),
                Self::exponent(&w[0], &w[1], |r| r.load_s),
                Self::exponent(&w[0], &w[1], |r| r.check_s),
            );
        }
        out
    }

    /// The machine-readable report (`foldic-scale-bench/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"foldic-scale-bench/1\",\n");
        let _ = writeln!(out, "  \"seed\": \"{:#x}\",", self.seed);
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"cells\": {}, \"blocks\": {}, \"build_s\": {:.4}, \"save_s\": {:.4}, \
                 \"load_s\": {:.4}, \"check_s\": {:.4}, \"heap_bytes\": {}, \
                 \"legacy_bytes\": {}, \"file_bytes\": {}, \"peak_block_bytes\": {}, \
                 \"bytes_per_cell\": {:.2}, \"legacy_bytes_per_cell\": {:.2}, \
                 \"reduction\": {:.2}}}",
                r.cells,
                r.blocks,
                r.build_s,
                r.save_s,
                r.load_s,
                r.check_s,
                r.heap_bytes,
                r.legacy_bytes,
                r.file_bytes,
                r.peak_block_bytes,
                r.bytes_per_cell(),
                r.legacy_bytes_per_cell(),
                r.reduction(),
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"exponents\": [\n");
        let pairs: Vec<String> = self
            .rows
            .windows(2)
            .map(|w| {
                format!(
                    "    {{\"from\": {}, \"to\": {}, \"build\": {:.3}, \"load\": {:.3}, \
                     \"check\": {:.3}}}",
                    w[0].cells,
                    w[1].cells,
                    Self::exponent(&w[0], &w[1], |r| r.build_s),
                    Self::exponent(&w[0], &w[1], |r| r.load_s),
                    Self::exponent(&w[0], &w[1], |r| r.check_s),
                )
            })
            .collect();
        out.push_str(&pairs.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_smallest_size_and_schema() {
        let dir = std::env::temp_dir();
        let report = run(7, 10_000, &dir);
        assert_eq!(report.rows.len(), 1);
        let r = &report.rows[0];
        assert_eq!(r.cells, 10_000);
        assert!(r.heap_bytes > 0 && r.file_bytes > 0);
        assert!(
            r.reduction() >= 4.0,
            "interning must shrink >= 4x vs String-per-entity, got {:.2}x",
            r.reduction()
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"foldic-scale-bench/1\""));
        assert!(json.contains("\"cells\": 10000"));
        let table = report.render();
        assert!(table.contains("10000"));
    }
}
