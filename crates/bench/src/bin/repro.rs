//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT...] [--size full|small|tiny] [--threads N] [--profile]
//!
//! EXPERIMENT: table1 table2 table3 table4 table5
//!             fig2 fig3 fig5 fig6 fig7 fig8
//!             all (default)
//! ```
//!
//! `--threads N` fans the per-block loops and configuration sweeps out
//! over N workers (default: `FOLDIC_THREADS` or all cores; 1 = serial).
//! Reports are byte-identical for every thread count. `--profile` prints
//! a per-stage wall-time/iteration table after each experiment.
//!
//! Output is printed to stdout; tee it into a file to archive a run.

use foldic::prelude::*;
use foldic_bench::{experiments, Ctx};
use std::time::Instant;

fn main() {
    let mut size = "full".to_owned();
    let mut picks: Vec<String> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut profile = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--size" => {
                size = args.next().unwrap_or_else(|| {
                    eprintln!("--size needs a value (full|small|tiny)");
                    std::process::exit(2);
                })
            }
            "--threads" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--threads needs a value");
                    std::process::exit(2);
                });
                threads = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a positive integer, got `{v}`");
                    std::process::exit(2);
                }));
            }
            "--profile" => profile = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro [EXPERIMENT...] [--size full|small|tiny] [--threads N] [--profile]\n\
                     experiments: table1 table2 table3 table4 table5 fig2 fig3 fig5 fig6 fig7 fig8 thermal ablations layouts all"
                );
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`; see --help");
                std::process::exit(2);
            }
            other => picks.push(other.to_owned()),
        }
    }
    let threads = foldic_exec::resolve_threads(threads);
    if profile {
        foldic_exec::profile::set_enabled(true);
    }
    if picks.is_empty() {
        picks.push("all".to_owned());
    }
    let cfg = match size.as_str() {
        "full" => T2Config::full(),
        "small" => T2Config::small(),
        "tiny" => T2Config::tiny(),
        other => {
            eprintln!("unknown size `{other}` (full|small|tiny)");
            std::process::exit(2);
        }
    };

    println!(
        "foldic repro — synthetic OpenSPARC T2 @ size={size} (seed {:#x}, cluster {}x, {threads} thread{})",
        cfg.seed,
        cfg.cluster_size,
        if threads == 1 { "" } else { "s" }
    );
    let t0 = Instant::now();
    let mut ctx = Ctx::with_threads(cfg, threads);
    println!(
        "generated {} blocks, {} instances in {:?}\n",
        ctx.design.num_blocks(),
        ctx.design.total_insts(),
        t0.elapsed()
    );

    let want = |name: &str, picks: &[String]| picks.iter().any(|p| p == name || p == "all");
    let mut ran = 0;
    macro_rules! run {
        ($name:literal, $body:expr) => {
            if want($name, &picks) {
                let t = Instant::now();
                let report = $body;
                println!("{report}");
                if profile {
                    println!("-- profile: {} --\n{}", $name, foldic_exec::profile::take());
                }
                println!("[{} finished in {:?}]\n", $name, t.elapsed());
                ran += 1;
            }
        };
    }

    run!("table1", experiments::table1(&ctx.tech));
    run!("table2", experiments::table2(&mut ctx));
    run!("table3", experiments::table3(&mut ctx));
    run!("table4", experiments::table4(&mut ctx));
    run!("fig2", experiments::fig2(&mut ctx));
    run!("fig3", experiments::fig3(&mut ctx));
    run!("fig5", experiments::fig5(&mut ctx));
    run!("fig6", experiments::fig6(&mut ctx));
    run!("fig7", experiments::fig7(&mut ctx));
    run!("fig8", experiments::fig8(&mut ctx));
    run!("table5", experiments::table5(&mut ctx));
    run!("thermal", experiments::thermal(&mut ctx));
    run!("ablations", experiments::ablations(&mut ctx));
    if want("layouts", &picks) {
        let t = Instant::now();
        let report = experiments::layouts(&mut ctx, std::path::Path::new("layouts"));
        println!("{report}");
        println!("[layouts finished in {:?}]\n", t.elapsed());
        ran += 1;
    }

    if ran == 0 {
        eprintln!("no experiment matched {picks:?}; see --help");
        std::process::exit(2);
    }
    println!("total wall time {:?}", t0.elapsed());
}
