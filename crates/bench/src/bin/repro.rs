//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT...] [--size full|small|tiny] [--threads N] [--profile]
//!       [--trace out.json] [--events out.jsonl] [--manifest out.json]
//!       [--faults SPEC] [--retries N] [--resume ckpt.jsonl]
//!       [--deadline SECS] [--stage-timeout STAGE=SECS,...]
//! repro compare <baseline.json> <candidate.json> [--tol PCT]
//! repro bench [FILTER] [--json out.json]
//! repro serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--port-file PATH]
//! repro loadgen --addr HOST:PORT [--jobs N] [--clients N] [--seed S] [--mix SPEC]
//!               [--experiments a+b] [--size S] [--json out.json] [--gate] [--shutdown]
//!
//! EXPERIMENT: table1 table2 table3 table4 table5
//!             fig2 fig3 fig5 fig6 fig7 fig8
//!             thermal ablations layouts
//!             all (default)
//! ```
//!
//! `--threads N` fans the per-block loops and configuration sweeps out
//! over N workers (default: `FOLDIC_THREADS` or all cores; 1 = serial).
//! Reports are byte-identical for every thread count. `--profile` prints
//! a per-stage wall-time/iteration table after each experiment.
//!
//! `--trace` writes a Chrome-trace JSON (load in `chrome://tracing` or
//! <https://ui.perfetto.dev>), `--events` a JSONL event log, and
//! `--manifest` a machine-readable run manifest (config, per-stage
//! timings, metrics snapshot, per-experiment result digests). If the
//! manifest path is an existing directory, the file is named
//! `run-<experiments>-<size>.json` inside it. `repro compare` diffs two
//! manifests (timing ignored) and exits nonzero when a metric moved more
//! than `--tol` percent (default 0.5) or a result digest changed.
//!
//! `--faults SPEC` installs a deterministic fault-injection plan
//! (`stage:block[:kind[:attempts]]`, comma-separated). Faulted blocks are
//! retried with perturbed seeds and a progressively relaxed configuration
//! (`--retries N` extra attempts on top of the first run, default 2;
//! `--retries 0` disables retrying) and degrade to analytical estimates
//! when every attempt fails. Recovered and degraded blocks show up in the
//! report footers and in the manifest's `faults` section. `--resume
//! ckpt.jsonl` records every finished block in a checkpoint file and
//! replays it on the next run with the same file, skipping finished
//! blocks while keeping the output byte-identical.
//!
//! `repro bench` times the hot kernels (sequence-pair packing at
//! n = 14/46/128, one SA temperature step, one quadratic-system solve)
//! with the built-in median-of-samples harness; `--json` writes a
//! `foldic-kernel-bench/1` document for the CI gate and the perf
//! trajectory baseline (`BENCH_kernels.json`).
//!
//! `repro serve` boots the batch design-study daemon (`foldic-serve`):
//! an HTTP/1.1 job API with a bounded queue and a content-addressed
//! result cache keyed on the canonical manifest config. `--addr` defaults
//! to `127.0.0.1:0` (ephemeral port; the bound address is printed and,
//! with `--port-file`, written to a file for scripts). The daemon runs
//! until `POST /shutdown`, then drains in-flight jobs and exits. The
//! daemon traces every request (`GET /jobs/<id>/trace` serves a job's
//! span tree), exposes Prometheus-style counters on `GET /metrics`, and
//! with `--log PATH` appends a structured JSONL access+app log
//! (`--log-level` filters severities). `repro loadgen` replays a seeded
//! mix of hit/miss/cancel/deadline jobs against a running daemon and
//! emits a `foldic-serve-bench/2` report that embeds the daemon's own
//! `/metrics` counter deltas; `--gate` exits nonzero when the run
//! violated an invariant (client errors, failed jobs, rejected
//! submissions, planned hits that missed, or server counters that
//! disagree with the client view), and `--shutdown` asks the daemon to
//! drain afterwards.
//!
//! `--deadline SECS` bounds the whole run's wall clock: a watchdog trips
//! a cancellation token on expiry, in-flight blocks stop at their next
//! cooperative checkpoint and degrade, and not-yet-started blocks are
//! skipped (also degraded). `--stage-timeout STAGE=SECS,...` bounds
//! individual flow stages per block; a timed-out stage takes the normal
//! retry → degrade path, with each retry given a larger share of the
//! remaining budget. Timed-out runs land in the manifest's `timeouts`
//! section, gated by `repro compare` like `faults`.
//!
//! Output is printed to stdout; tee it into a file to archive a run.

use foldic::prelude::*;
use foldic::{
    clear_deadline, clear_resource, install_deadline, install_fault_plan, install_resource,
    parse_bytes, parse_stage_mem, take_fault_log, take_peaks, CheckpointStore, Deadline,
    DeadlinePolicy, FaultPlan, FaultRecord, FlowStage, ResourcePolicy, RetryPolicy, Watchdog,
};
use foldic_bench::{experiments, Ctx};
use foldic_obs::json::Json;
use foldic_obs::manifest::{compare, CompareConfig, RunManifest};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: repro [EXPERIMENT...] [--size full|small|tiny] [--threads N] [--profile]\n\
       \x20            [--design design.fdb] [--trace out.json] [--events out.jsonl]\n\
       \x20            [--manifest out.json]\n\
       \x20            [--faults SPEC] [--retries N] [--resume ckpt.jsonl]\n\
       \x20            [--deadline SECS] [--stage-timeout STAGE=SECS,...]\n\
       \x20            [--mem-budget BYTES] [--stage-mem STAGE=BYTES,...]\n\
       repro gen --out design.fdb [--size full|small|tiny] [--cells N] [--seed S]\n\
       repro compare <baseline.json> <candidate.json> [--tol PCT]\n\
       repro bench [FILTER] [--json out.json]\n\
       repro bench scale [--max-cells N] [--json out.json]\n\
       repro serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--port-file PATH]\n\
       \x20           [--log PATH] [--log-level debug|info|warn|error]\n\
       \x20           [--journal PATH] [--cache-dir DIR] [--breaker FAILURES[:COOLDOWN_SECS]]\n\
       \x20           [--mem-limit BYTES]\n\
       repro loadgen --addr HOST:PORT [--jobs N] [--clients N] [--seed S] [--mix SPEC]\n\
       \x20             [--experiments a+b] [--size S] [--json out.json] [--gate] [--shutdown]\n\
       repro loadgen --chaos SEED [--jobs N] [--experiments a+b] [--size S] [--json out.json] [--gate]\n\
       repro loadgen --overload SEED [--jobs N] [--json out.json] [--gate]\n\
       repro probe --addr HOST:PORT [--submit a+b] [--size S] [--seed S] [--shutdown]\n\
experiments: table1 table2 table3 table4 table5 fig2 fig3 fig5 fig6 fig7 fig8 thermal ablations layouts all\n\
fault spec:  stage:block[:kind[:attempts]],... e.g. route:ccx:panic or place:mcu0:error:1\n\
             (stages: validate partition place opt route sta power floorplan; kinds: panic error slow)\n\
deadlines:   --deadline 30 bounds the whole run; --stage-timeout route=0.5,opt=2 bounds stages per block\n\
memory:      --mem-budget 64M bounds each block job's net allocation; --stage-mem place=16M,route=8M\n\
             bounds stages per block (suffixes k/M/G are binary; breaches degrade like timeouts)";

fn usage_err(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("gen") {
        std::process::exit(run_gen(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("compare") {
        std::process::exit(run_compare(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("bench") {
        std::process::exit(run_bench(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("serve") {
        std::process::exit(run_serve(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("loadgen") {
        std::process::exit(run_loadgen(&raw[1..]));
    }
    if raw.first().map(String::as_str) == Some("probe") {
        std::process::exit(run_probe(&raw[1..]));
    }

    let mut size = "full".to_owned();
    let mut picks: Vec<String> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut profile = false;
    let mut trace_path: Option<PathBuf> = None;
    let mut events_path: Option<PathBuf> = None;
    let mut manifest_path: Option<PathBuf> = None;
    let mut design_path: Option<PathBuf> = None;
    let mut faults_spec: Option<String> = None;
    let mut retries: Option<u32> = None;
    let mut resume_path: Option<PathBuf> = None;
    let mut deadline_secs: Option<f64> = None;
    let mut stage_timeout_spec: Option<String> = None;
    let mut mem_budget: Option<u64> = None;
    let mut stage_mem_spec: Option<String> = None;
    let mut args = raw.into_iter();
    // an output flag may appear once, and distinct outputs must not share
    // a path — catch both before spending minutes computing
    let path_flag = |slot: &mut Option<PathBuf>, flag: &str, value: Option<String>| {
        let value = value.unwrap_or_else(|| usage_err(&format!("{flag} needs a path")));
        if slot.is_some() {
            usage_err(&format!("duplicate {flag}"));
        }
        *slot = Some(PathBuf::from(value));
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--size" => {
                size = args
                    .next()
                    .unwrap_or_else(|| usage_err("--size needs a value (full|small|tiny)"))
            }
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_err("--threads needs a value"));
                threads = Some(v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--threads needs a positive integer, got `{v}`"))
                }));
            }
            "--profile" => profile = true,
            "--trace" => path_flag(&mut trace_path, "--trace", args.next()),
            "--events" => path_flag(&mut events_path, "--events", args.next()),
            "--manifest" => path_flag(&mut manifest_path, "--manifest", args.next()),
            "--design" => path_flag(&mut design_path, "--design", args.next()),
            "--faults" => {
                let v = args.next().unwrap_or_else(|| {
                    usage_err("--faults needs a spec (stage:block[:kind[:attempts]],...)")
                });
                if faults_spec.is_some() {
                    usage_err("duplicate --faults");
                }
                faults_spec = Some(v);
            }
            "--retries" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_err("--retries needs a value"));
                retries = Some(v.parse().unwrap_or_else(|_| {
                    usage_err(&format!(
                        "--retries needs a non-negative integer, got `{v}`"
                    ))
                }));
            }
            "--resume" => path_flag(&mut resume_path, "--resume", args.next()),
            "--deadline" => {
                let v = args.next().unwrap_or_else(|| {
                    usage_err("--deadline needs a wall-clock budget in seconds")
                });
                if deadline_secs.is_some() {
                    usage_err("duplicate --deadline");
                }
                let secs: f64 = v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--deadline needs a number of seconds, got `{v}`"))
                });
                if !(secs.is_finite() && secs > 0.0) {
                    usage_err(&format!("--deadline needs a positive budget, got `{v}`"));
                }
                deadline_secs = Some(secs);
            }
            "--stage-timeout" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_err("--stage-timeout needs a spec (STAGE=SECS,...)"));
                if stage_timeout_spec.is_some() {
                    usage_err("duplicate --stage-timeout");
                }
                stage_timeout_spec = Some(v);
            }
            "--mem-budget" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_err("--mem-budget needs a byte count (e.g. 64M)"));
                if mem_budget.is_some() {
                    usage_err("duplicate --mem-budget");
                }
                mem_budget = Some(
                    parse_bytes(&v).unwrap_or_else(|e| usage_err(&format!("--mem-budget: {e}"))),
                );
            }
            "--stage-mem" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_err("--stage-mem needs a spec (STAGE=BYTES,...)"));
                if stage_mem_spec.is_some() {
                    usage_err("duplicate --stage-mem");
                }
                stage_mem_spec = Some(v);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => {
                usage_err(&format!("unknown flag `{other}`"));
            }
            other => picks.push(other.to_owned()),
        }
    }
    let outputs = [
        ("--trace", &trace_path),
        ("--events", &events_path),
        ("--manifest", &manifest_path),
        ("--resume", &resume_path),
    ];
    for (i, (fa, pa)) in outputs.iter().enumerate() {
        for (fb, pb) in outputs.iter().skip(i + 1) {
            if let (Some(pa), Some(pb)) = (pa, pb) {
                if pa == pb {
                    usage_err(&format!("{fa} and {fb} point at the same path {pa:?}"));
                }
            }
        }
    }

    let threads = foldic_exec::resolve_threads(threads);
    let tracing = trace_path.is_some() || events_path.is_some();
    if profile || manifest_path.is_some() {
        foldic_exec::profile::set_enabled(true);
    }
    if tracing {
        foldic_obs::trace::set_enabled(true);
    }
    if manifest_path.is_some() {
        foldic_obs::metrics::set_enabled(true);
    }
    if picks.is_empty() {
        picks.push("all".to_owned());
    }
    let size_cfg = |label: &str| match label {
        "full" => T2Config::full(),
        "small" => T2Config::small(),
        "tiny" => T2Config::tiny(),
        other => usage_err(&format!("unknown size `{other}` (full|small|tiny)")),
    };
    let mut cfg = size_cfg(&size);

    // A snapshot-backed run: the file's provenance overrides the size
    // flag entirely, so the run is the one the snapshot was generated
    // for — report bodies must come out byte-identical either way.
    let mut loaded_design = None;
    let mut db_info = None;
    if let Some(path) = &design_path {
        let (design, info) = foldic_netlist::db::load_design(path).unwrap_or_else(|e| {
            eprintln!("cannot load design {}: {e}", path.display());
            std::process::exit(2);
        });
        match info.meta.get("generator").map(String::as_str) {
            Some("t2") => {}
            other => {
                eprintln!(
                    "--design: snapshot generator `{}` cannot drive the experiments (need t2; \
                     scale snapshots are for `repro bench scale`)",
                    other.unwrap_or("<missing>")
                );
                std::process::exit(2);
            }
        }
        if let Some(label) = info.meta.get("size") {
            size = label.clone();
            cfg = size_cfg(&size);
        }
        if let Some(v) = info.meta.get("seed").and_then(|v| parse_u64_maybe_hex(v)) {
            cfg.seed = v;
        }
        let f64_meta = |key: &str| info.meta.get(key).and_then(|v| v.parse::<f64>().ok());
        if let Some(v) = f64_meta("size_factor") {
            cfg.size = v;
        }
        if let Some(v) = f64_meta("cluster_size") {
            cfg.cluster_size = v;
        }
        if let Some(v) = f64_meta("utilization") {
            cfg.utilization = v;
        }
        loaded_design = Some(design);
        db_info = Some(info);
    }

    let mut manifest = RunManifest::default();
    manifest.config.insert("size".into(), size.clone());
    manifest
        .config
        .insert("seed".into(), format!("{:#x}", cfg.seed));
    manifest
        .config
        .insert("cluster_size".into(), cfg.cluster_size.to_string());
    if let Some(spec) = &faults_spec {
        let plan = FaultPlan::parse(spec).unwrap_or_else(|e| usage_err(&format!("--faults: {e}")));
        // canonical spec: the plan participates in manifest comparison
        manifest.config.insert("faults".into(), plan.to_spec());
        install_fault_plan(plan);
    }
    if let Some(n) = retries {
        manifest.config.insert("retries".into(), n.to_string());
    }
    let mut deadline_policy = DeadlinePolicy::default();
    if let Some(secs) = deadline_secs {
        deadline_policy.overall = Some(Duration::from_secs_f64(secs));
        manifest.config.insert("deadline".into(), format!("{secs}"));
    }
    if let Some(spec) = &stage_timeout_spec {
        deadline_policy.stage_budgets = parse_stage_timeouts(spec);
        let canonical: Vec<String> = deadline_policy
            .stage_budgets
            .iter()
            .map(|(s, d)| format!("{s}={}", d.as_secs_f64()))
            .collect();
        manifest
            .config
            .insert("stage_timeouts".into(), canonical.join(","));
    }
    let mut watchdog = None;
    if !deadline_policy.is_empty() {
        let token = install_deadline(&deadline_policy);
        if let Some(overall) = deadline_policy.overall {
            watchdog = Some(Watchdog::spawn(Deadline::new(overall), token, Some("run")));
        }
    }
    let mut resource_policy = ResourcePolicy::default();
    if let Some(bytes) = mem_budget {
        resource_policy.overall = Some(bytes);
        // canonical value: decimal bytes, independent of the suffix typed
        manifest
            .config
            .insert("mem_budget".into(), bytes.to_string());
    }
    if let Some(spec) = &stage_mem_spec {
        resource_policy.stage_budgets =
            parse_stage_mem(spec).unwrap_or_else(|e| usage_err(&format!("--stage-mem: {e}")));
        manifest
            .config
            .insert("stage_mem".into(), resource_policy.stage_spec());
    }
    if !resource_policy.is_empty() {
        install_resource(&resource_policy);
    }
    // per-experiment wall clocks and pool stats go here — everything in
    // this object may vary across thread counts and is stripped before
    // determinism comparisons
    let mut timing_experiments: BTreeMap<String, Json> = BTreeMap::new();

    println!(
        "foldic repro — synthetic OpenSPARC T2 @ size={size} (seed {:#x}, cluster {}x, {threads} thread{})",
        cfg.seed,
        cfg.cluster_size,
        if threads == 1 { "" } else { "s" }
    );
    let t0 = Instant::now();
    let mut ctx = match loaded_design.take() {
        Some(design) => {
            let tech = cfg.scaled_technology();
            Ctx::with_design(cfg, design, tech, threads)
        }
        None => Ctx::with_threads(cfg, threads),
    };
    if let Some(n) = retries {
        // `--retries N` counts the retries on top of the first attempt
        ctx.retry = RetryPolicy::attempts(n.saturating_add(1));
    }
    if let Some(path) = &resume_path {
        let store = CheckpointStore::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open checkpoint {}: {e}", path.display());
            std::process::exit(2);
        });
        if !store.is_empty() {
            println!(
                "resume: {} checkpointed block(s) in {}",
                store.len(),
                path.display()
            );
        }
        ctx.checkpoint = Some(std::sync::Arc::new(store));
    }
    if let Some(path) = &design_path {
        println!(
            "loaded {} blocks, {} instances from {} in {:?}\n",
            ctx.design.num_blocks(),
            ctx.design.total_insts(),
            path.display(),
            t0.elapsed()
        );
    } else {
        println!(
            "generated {} blocks, {} instances in {:?}\n",
            ctx.design.num_blocks(),
            ctx.design.total_insts(),
            t0.elapsed()
        );
    }

    let want = |name: &str, picks: &[String]| picks.iter().any(|p| p == name || p == "all");
    let mut ran: Vec<String> = Vec::new();
    macro_rules! run {
        ($name:literal, $body:expr) => {
            if want($name, &picks) {
                let t = Instant::now();
                let report = $body;
                let text = report.to_string();
                println!("{text}");
                let stage_report = foldic_exec::profile::take();
                if profile {
                    println!("-- profile: {} --\n{}", $name, stage_report);
                }
                if manifest_path.is_some() {
                    manifest.record_result($name, &text);
                    timing_experiments
                        .insert($name.to_owned(), timing_json(&stage_report, t.elapsed()));
                }
                println!("[{} finished in {:?}]\n", $name, t.elapsed());
                ran.push($name.to_owned());
            }
        };
    }

    run!("table1", experiments::table1(&ctx.tech));
    run!("table2", experiments::table2(&mut ctx));
    run!("table3", experiments::table3(&mut ctx));
    run!("table4", experiments::table4(&mut ctx));
    run!("fig2", experiments::fig2(&mut ctx));
    run!("fig3", experiments::fig3(&mut ctx));
    run!("fig5", experiments::fig5(&mut ctx));
    run!("fig6", experiments::fig6(&mut ctx));
    run!("fig7", experiments::fig7(&mut ctx));
    run!("fig8", experiments::fig8(&mut ctx));
    run!("table5", experiments::table5(&mut ctx));
    run!("thermal", experiments::thermal(&mut ctx));
    run!("ablations", experiments::ablations(&mut ctx));
    if want("layouts", &picks) {
        let t = Instant::now();
        let report = experiments::layouts(&mut ctx, Path::new("layouts"));
        println!("{report}");
        println!("[layouts finished in {:?}]\n", t.elapsed());
        ran.push("layouts".to_owned());
    }

    if ran.is_empty() {
        eprintln!("no experiment matched {picks:?}; see --help");
        std::process::exit(2);
    }
    println!("total wall time {:?}", t0.elapsed());
    let deadline_tripped = watchdog.is_some_and(Watchdog::disarm);
    clear_deadline();
    if !resource_policy.is_empty() {
        clear_resource();
    }
    let (timeout_log, rest): (Vec<FaultRecord>, Vec<FaultRecord>) =
        take_fault_log().into_iter().partition(|r| r.timed_out);
    let (mem_log, fault_log): (Vec<FaultRecord>, Vec<FaultRecord>) =
        rest.into_iter().partition(|r| r.mem_exceeded);
    if !fault_log.is_empty() {
        println!(
            "faults: {} block run(s) recovered or degraded (see report footers)",
            fault_log.len()
        );
    }
    if !timeout_log.is_empty() {
        println!(
            "timeouts: {} run(s) hit a wall-clock budget and degraded (see report footers)",
            timeout_log.len()
        );
    }
    if !mem_log.is_empty() {
        println!(
            "memory: {} run(s) hit a memory budget and recovered or degraded (see report footers)",
            mem_log.len()
        );
    }
    if deadline_tripped {
        println!("deadline: overall budget expired before the run finished");
    }
    if let Some(store) = &ctx.checkpoint {
        println!(
            "checkpoint: {} block(s) stored, {} replayed",
            store.len(),
            store.hits()
        );
    }

    if tracing {
        foldic_obs::trace::set_enabled(false);
        let events = foldic_obs::trace::take_events();
        if let Some(path) = &trace_path {
            write_or_die(path, &foldic_obs::trace::chrome_trace_json(&events));
            println!("trace: {} events -> {}", events.len(), path.display());
        }
        if let Some(path) = &events_path {
            write_or_die(path, &foldic_obs::trace::events_jsonl(&events));
            println!("events: {} -> {}", events.len(), path.display());
        }
    }
    if let Some(path) = manifest_path {
        manifest.config.insert("experiments".into(), ran.join("+"));
        manifest.faults = fault_log
            .iter()
            .map(FaultRecord::to_manifest_entry)
            .collect();
        manifest.timeouts = timeout_log
            .iter()
            .map(FaultRecord::to_manifest_entry)
            .collect();
        manifest.mem_exceeded = mem_log.iter().map(FaultRecord::to_manifest_entry).collect();
        if !resource_policy.is_empty() {
            // pay-for-use: peaks are recorded only while a policy is
            // installed, so flagless manifests stay byte-identical
            manifest.resources = take_peaks()
                .into_iter()
                .map(|(stage, bytes)| (stage.to_string(), bytes))
                .collect();
        }
        // Design-database provenance: a snapshot-backed run records the
        // file's digest directly; a generated run streams the pristine
        // design into a temp snapshot with the same canonical meta
        // `repro gen` writes, so the two digests agree whenever the
        // designs do.
        let (db_digest, db_source) = match &db_info {
            Some(info) => (info.digest.clone(), "snapshot"),
            None => {
                let tmp = std::env::temp_dir()
                    .join(format!("foldic-manifest-{}.fdb", std::process::id()));
                let meta = t2_meta(&ctx.cfg, &size);
                let meta_refs: Vec<(&str, &str)> =
                    meta.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                let digest = foldic_netlist::db::save_design(&ctx.design, &meta_refs, &tmp)
                    .and_then(|()| foldic_netlist::db::file_digest(&tmp))
                    .unwrap_or_else(|e| {
                        eprintln!("cannot digest design for manifest: {e}");
                        std::process::exit(1);
                    });
                let _ = std::fs::remove_file(&tmp);
                (digest, "generated")
            }
        };
        manifest.db.insert("digest".into(), db_digest);
        manifest
            .db
            .insert("cells".into(), ctx.design.total_insts().to_string());
        manifest
            .db
            .insert("nets".into(), ctx.design.total_nets().to_string());
        manifest.db.insert("source".into(), db_source.into());
        manifest.metrics = foldic_obs::metrics::take();
        foldic_obs::metrics::set_enabled(false);
        manifest.timing = Json::obj([
            ("threads".to_owned(), Json::Num(threads as f64)),
            (
                "total_wall_s".to_owned(),
                Json::Num(t0.elapsed().as_secs_f64()),
            ),
            ("experiments".to_owned(), Json::Obj(timing_experiments)),
        ]);
        let path = if path.is_dir() {
            path.join(format!("run-{}-{size}.json", ran.join("+")))
        } else {
            path
        };
        write_or_die(&path, &manifest.to_json_text());
        println!("manifest: {}", path.display());
    }
}

/// One experiment's wall-clock record for the manifest `timing` section.
fn timing_json(report: &foldic_exec::profile::Report, wall: std::time::Duration) -> Json {
    let stages = report
        .stages
        .iter()
        .map(|(name, s)| {
            (
                name.clone(),
                Json::obj([
                    ("calls".to_owned(), Json::Num(s.calls as f64)),
                    ("wall_ms".to_owned(), Json::Num(s.wall.as_secs_f64() * 1e3)),
                    ("iters".to_owned(), Json::Num(s.iters as f64)),
                ]),
            )
        })
        .collect();
    Json::obj([
        ("wall_s".to_owned(), Json::Num(wall.as_secs_f64())),
        ("stages".to_owned(), Json::Obj(stages)),
        (
            "pool".to_owned(),
            Json::obj([
                ("jobs".to_owned(), Json::Num(report.jobs as f64)),
                ("steals".to_owned(), Json::Num(report.steals as f64)),
                ("runs".to_owned(), Json::Num(report.runs as f64)),
                (
                    "peak_queue_depth".to_owned(),
                    Json::Num(report.peak_queue_depth as f64),
                ),
            ]),
        ),
    ])
}

/// Parses a `--stage-timeout` spec (`STAGE=SECS,...`) into per-stage
/// budgets; exits with a usage error on an unknown stage, a bad number,
/// or a duplicate stage. A zero budget is allowed and times the stage
/// out at entry (useful for skipping a stage class wholesale).
fn parse_stage_timeouts(spec: &str) -> Vec<(FlowStage, Duration)> {
    let mut budgets: Vec<(FlowStage, Duration)> = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let Some((stage, secs)) = entry.split_once('=') else {
            usage_err(&format!(
                "--stage-timeout entry `{entry}` is not STAGE=SECS"
            ));
        };
        let stage: FlowStage = stage
            .trim()
            .parse()
            .unwrap_or_else(|e: String| usage_err(&format!("--stage-timeout: {e}")));
        let secs: f64 = secs.trim().parse().unwrap_or_else(|_| {
            usage_err(&format!(
                "--stage-timeout: `{entry}` needs a number of seconds"
            ))
        });
        if !(secs.is_finite() && secs >= 0.0) {
            usage_err(&format!(
                "--stage-timeout: `{entry}` needs a non-negative budget"
            ));
        }
        if budgets.iter().any(|(s, _)| *s == stage) {
            usage_err(&format!("--stage-timeout: duplicate stage `{stage}`"));
        }
        budgets.push((stage, Duration::from_secs_f64(secs)));
    }
    if budgets.is_empty() {
        usage_err("--stage-timeout spec is empty");
    }
    budgets
}

fn write_or_die(path: &Path, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
}

/// Canonical snapshot provenance for a T2 config: everything needed to
/// reconstruct the config (and thus the scaled technology) on load.
/// `repro gen` and the manifest's generated-design digest both write
/// exactly this, so their file digests agree for the same design.
fn t2_meta(cfg: &T2Config, size_label: &str) -> Vec<(String, String)> {
    vec![
        ("generator".into(), "t2".into()),
        ("size".into(), size_label.into()),
        ("seed".into(), format!("{:#x}", cfg.seed)),
        ("size_factor".into(), cfg.size.to_string()),
        ("cluster_size".into(), cfg.cluster_size.to_string()),
        ("utilization".into(), cfg.utilization.to_string()),
    ]
}

/// `repro gen --out design.fdb [--size full|small|tiny] [--cells N]
/// [--seed S]`. Writes a `foldic-db/1` snapshot: the T2 design for a
/// size label, or (with `--cells`) a synthetic scale design streamed
/// block-by-block. Exit code: 0 on success, 1 on write errors, 2 on
/// usage errors.
fn run_gen(args: &[String]) -> i32 {
    let mut out: Option<PathBuf> = None;
    let mut size = "full".to_owned();
    let mut cells: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                let v = it.next().unwrap_or_else(|| usage_err("--out needs a path"));
                if out.is_some() {
                    usage_err("duplicate --out");
                }
                out = Some(PathBuf::from(v));
            }
            "--size" => {
                size = it
                    .next()
                    .unwrap_or_else(|| usage_err("--size needs a value (full|small|tiny)"))
                    .clone();
            }
            "--cells" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--cells needs a count"));
                cells =
                    Some(parse_u64_maybe_hex(v).unwrap_or_else(|| {
                        usage_err(&format!("--cells needs an integer, got `{v}`"))
                    }));
            }
            "--seed" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--seed needs a value"));
                seed =
                    Some(parse_u64_maybe_hex(v).unwrap_or_else(|| {
                        usage_err(&format!("--seed needs an integer, got `{v}`"))
                    }));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => usage_err(&format!("unknown gen argument `{other}`")),
        }
    }
    let out = out.unwrap_or_else(|| usage_err("gen needs --out design.fdb"));
    let t0 = Instant::now();
    let result = if let Some(cells) = cells {
        let cfg =
            foldic_t2::ScaleConfig::new(cells, seed.unwrap_or(foldic_bench::scale::SCALE_SEED));
        println!(
            "gen: scale design, {} cells in {} block(s) (seed {:#x})",
            cfg.cells,
            cfg.num_blocks(),
            cfg.seed
        );
        cfg.save(&foldic_tech::Technology::cmos28(), &out)
    } else {
        let mut cfg = match size.as_str() {
            "full" => T2Config::full(),
            "small" => T2Config::small(),
            "tiny" => T2Config::tiny(),
            other => usage_err(&format!("unknown size `{other}` (full|small|tiny)")),
        };
        if let Some(s) = seed {
            cfg.seed = s;
        }
        println!(
            "gen: t2 design @ size={size} (seed {:#x}, cluster {}x)",
            cfg.seed, cfg.cluster_size
        );
        let (design, _tech) = cfg.generate();
        let meta = t2_meta(&cfg, &size);
        let meta_refs: Vec<(&str, &str)> =
            meta.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        foldic_netlist::db::save_design(&design, &meta_refs, &out)
    };
    if let Err(e) = result {
        eprintln!("gen: cannot write {}: {e}", out.display());
        return 1;
    }
    match foldic_netlist::db::load_design(&out) {
        Ok((design, info)) => {
            println!(
                "gen: {} -> {} blocks, {} cells, {} nets, {} bytes, {} in {:?}",
                out.display(),
                design.num_blocks(),
                info.cells,
                info.nets,
                std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0),
                info.digest,
                t0.elapsed()
            );
            0
        }
        Err(e) => {
            eprintln!("gen: wrote {} but cannot read it back: {e}", out.display());
            1
        }
    }
}

/// `repro bench [FILTER] [--json out.json]`.
/// Exit code: 0 on success (even when the filter matches nothing — the
/// JSON then carries an empty kernel map), 2 on usage errors.
fn run_bench(args: &[String]) -> i32 {
    let mut filter: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut max_cells: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--json needs a path"));
                if json_path.is_some() {
                    usage_err("duplicate --json");
                }
                json_path = Some(PathBuf::from(v));
            }
            "--max-cells" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--max-cells needs a count"));
                max_cells = Some(parse_u64_maybe_hex(v).unwrap_or_else(|| {
                    usage_err(&format!("--max-cells needs an integer, got `{v}`"))
                }));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other if other.starts_with('-') => usage_err(&format!("unknown flag `{other}`")),
            other => {
                if filter.is_some() {
                    usage_err("bench takes at most one FILTER");
                }
                filter = Some(other.to_owned());
            }
        }
    }
    if filter.as_deref() == Some("scale") {
        // the database scaling sweep: 10k -> 1M cells, build/save/load/
        // check wall times, bytes/cell vs the String-per-entity baseline
        let report = foldic_bench::scale::run(
            foldic_bench::scale::SCALE_SEED,
            max_cells.unwrap_or(u64::MAX),
            &std::env::temp_dir(),
        );
        print!("{}", report.render());
        if let Some(path) = json_path {
            write_or_die(&path, &report.to_json());
            println!("bench: scale sweep -> {}", path.display());
        }
        return 0;
    }
    if max_cells.is_some() {
        usage_err("--max-cells only applies to `bench scale`");
    }
    let results = foldic_bench::kernels::run_kernels(&filter);
    if results.is_empty() {
        if let Some(pat) = &filter {
            println!("no kernel matched `{pat}`");
        }
    }
    if let Some(path) = json_path {
        write_or_die(&path, &foldic_bench::kernels::to_json(&results).to_pretty());
        println!("bench: {} kernel(s) -> {}", results.len(), path.display());
    }
    0
}

/// `repro serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
/// [--port-file PATH] [--log PATH] [--log-level LEVEL] [--journal PATH]
/// [--cache-dir DIR] [--breaker FAILURES[:COOLDOWN_SECS]]
/// [--mem-limit BYTES]`. Runs until
/// `POST /shutdown`, then drains. Exit code: 0 after a clean drain, 2 on
/// usage/bind errors (including an unreadable journal or cache dir: a
/// daemon that cannot honor its durability configuration must not boot).
fn run_serve(args: &[String]) -> i32 {
    let mut addr = "127.0.0.1:0".to_owned();
    let mut cfg = foldic_serve::ServerConfig::default();
    let mut port_file: Option<PathBuf> = None;
    let mut log_path: Option<PathBuf> = None;
    let mut log_level = foldic_obs::log::Level::Info;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--log" => {
                let v = it.next().unwrap_or_else(|| usage_err("--log needs a path"));
                log_path = Some(PathBuf::from(v));
            }
            "--log-level" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--log-level needs debug|info|warn|error"));
                log_level = foldic_obs::log::Level::parse(v).unwrap_or_else(|| {
                    usage_err(&format!("unknown log level `{v}` (debug|info|warn|error)"))
                });
            }
            "--addr" => {
                addr = it
                    .next()
                    .unwrap_or_else(|| usage_err("--addr needs HOST:PORT"))
                    .clone();
            }
            "--workers" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--workers needs a value"));
                cfg.workers = v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--workers needs a positive integer, got `{v}`"))
                });
                if cfg.workers == 0 {
                    usage_err("--workers must be at least 1");
                }
            }
            "--queue-cap" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--queue-cap needs a value"));
                cfg.queue_capacity = v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--queue-cap needs a positive integer, got `{v}`"))
                });
                if cfg.queue_capacity == 0 {
                    usage_err("--queue-cap must be at least 1");
                }
            }
            "--port-file" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--port-file needs a path"));
                port_file = Some(PathBuf::from(v));
            }
            "--journal" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--journal needs a path"));
                cfg.journal = Some(PathBuf::from(v));
            }
            "--cache-dir" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--cache-dir needs a directory"));
                cfg.cache_dir = Some(PathBuf::from(v));
            }
            "--mem-limit" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--mem-limit needs BYTES (e.g. 512M)"));
                if cfg.mem_limit.is_some() {
                    usage_err("duplicate --mem-limit");
                }
                cfg.mem_limit = Some(
                    parse_bytes(v)
                        .unwrap_or_else(|e: String| usage_err(&format!("--mem-limit: {e}"))),
                );
            }
            "--breaker" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--breaker needs FAILURES[:COOLDOWN_SECS]"));
                let (fails, cooldown) = match v.split_once(':') {
                    Some((f, c)) => (f, Some(c)),
                    None => (v.as_str(), None),
                };
                let failure_threshold: u32 = fails.parse().unwrap_or_else(|_| {
                    usage_err(&format!(
                        "--breaker needs a positive failure count, got `{v}`"
                    ))
                });
                if failure_threshold == 0 {
                    usage_err("--breaker failure count must be at least 1");
                }
                let default = foldic_fault::supervise::BreakerConfig::default();
                let cooldown = match cooldown {
                    Some(c) => std::time::Duration::from_secs(c.parse().unwrap_or_else(|_| {
                        usage_err(&format!(
                            "--breaker cooldown needs an integer number of seconds, got `{v}`"
                        ))
                    })),
                    None => default.cooldown,
                };
                cfg.breaker = Some(foldic_fault::supervise::BreakerConfig {
                    failure_threshold,
                    cooldown,
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => usage_err(&format!("unknown serve argument `{other}`")),
        }
    }
    let log = match &log_path {
        Some(path) => match foldic_obs::log::LogSink::to_file(path, log_level) {
            Ok(sink) => Some(std::sync::Arc::new(sink)),
            Err(e) => {
                eprintln!("serve: cannot open log {}: {e}", path.display());
                return 2;
            }
        },
        None => None,
    };
    let telemetry =
        foldic_serve::Telemetry::new(foldic_serve::TelemetryConfig { trace: true, log });
    let server = match foldic_serve::Server::bind_with_telemetry(
        &addr,
        std::sync::Arc::new(foldic_bench::serve::BenchRunner),
        cfg.clone(),
        telemetry,
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            return 2;
        }
    };
    let bound = server.local_addr();
    println!(
        "serve: listening on {bound} ({} worker(s), queue capacity {})",
        cfg.workers, cfg.queue_capacity
    );
    if let Some(path) = &cfg.journal {
        println!("serve: job journal -> {}", path.display());
    }
    if let Some(dir) = &cfg.cache_dir {
        println!("serve: persistent result cache -> {}", dir.display());
    }
    if let Some(breaker) = &cfg.breaker {
        println!(
            "serve: circuit breaker armed ({} failure(s), {}s cooldown)",
            breaker.failure_threshold,
            breaker.cooldown.as_secs()
        );
    }
    if let Some(limit) = cfg.mem_limit {
        println!(
            "serve: memory admission limit {} (cost-estimate reservations)",
            foldic::format_bytes(limit)
        );
    }
    if let Some(path) = &log_path {
        println!(
            "serve: structured log -> {} ({})",
            path.display(),
            log_level.as_str()
        );
    }
    if let Some(path) = port_file {
        // The port file is how scripts learn an ephemeral port; written
        // after the listener is live so its existence means "ready".
        write_or_die(&path, &bound.to_string());
        println!("serve: address written to {}", path.display());
    }
    server.wait_shutdown();
    println!("serve: drained, exiting");
    0
}

/// `repro loadgen --addr HOST:PORT [...]`. Exit code: 0 on success (and a
/// passing gate when `--gate` is set), 1 on gate failure, 2 on usage or
/// transport errors.
fn run_loadgen(args: &[String]) -> i32 {
    let mut addr: Option<std::net::SocketAddr> = None;
    let mut jobs: Option<usize> = None;
    let mut clients: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut mix: Option<foldic_serve::loadgen::MixWeights> = None;
    let mut experiments: Option<Vec<String>> = None;
    let mut size: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut gate = false;
    let mut shutdown = false;
    let mut chaos: Option<u64> = None;
    let mut overload: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--addr needs HOST:PORT"));
                addr =
                    Some(v.parse().unwrap_or_else(|_| {
                        usage_err(&format!("--addr needs HOST:PORT, got `{v}`"))
                    }));
            }
            "--jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--jobs needs a value"));
                jobs = Some(v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--jobs needs a positive integer, got `{v}`"))
                }));
            }
            "--clients" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--clients needs a value"));
                clients = Some(v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--clients needs a positive integer, got `{v}`"))
                }));
            }
            "--seed" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--seed needs a value"));
                seed = Some(parse_u64_maybe_hex(v).unwrap_or_else(|| {
                    usage_err(&format!(
                        "--seed needs an integer (decimal or 0x hex), got `{v}`"
                    ))
                }));
            }
            "--mix" => {
                let v = it.next().unwrap_or_else(|| {
                    usage_err("--mix needs hit=..,miss=..,cancel=..,deadline=..")
                });
                mix = Some(
                    foldic_serve::loadgen::MixWeights::parse(v)
                        .unwrap_or_else(|e| usage_err(&format!("--mix: {e}"))),
                );
            }
            "--experiments" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--experiments needs a +-separated list"));
                experiments = Some(v.split('+').map(str::to_owned).collect());
            }
            "--size" => {
                size = Some(
                    it.next()
                        .unwrap_or_else(|| usage_err("--size needs a value (full|small|tiny)"))
                        .clone(),
                );
            }
            "--json" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--json needs a path"));
                json_path = Some(PathBuf::from(v));
            }
            "--gate" => gate = true,
            "--shutdown" => shutdown = true,
            "--chaos" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--chaos needs a seed"));
                chaos = Some(parse_u64_maybe_hex(v).unwrap_or_else(|| {
                    usage_err(&format!(
                        "--chaos needs an integer seed (decimal or 0x hex), got `{v}`"
                    ))
                }));
            }
            "--overload" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--overload needs a seed"));
                overload = Some(parse_u64_maybe_hex(v).unwrap_or_else(|| {
                    usage_err(&format!(
                        "--overload needs an integer seed (decimal or 0x hex), got `{v}`"
                    ))
                }));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => usage_err(&format!("unknown loadgen argument `{other}`")),
        }
    }
    if let Some(chaos_seed) = chaos {
        return run_chaos(chaos_seed, jobs, experiments, size, json_path, gate);
    }
    if let Some(overload_seed) = overload {
        return run_overload(overload_seed, jobs, json_path, gate);
    }
    let Some(addr) = addr else {
        usage_err(
            "loadgen needs --addr HOST:PORT (or --chaos SEED / --overload SEED for a harness)",
        );
    };
    let mut cfg = foldic_serve::loadgen::LoadConfig::new(addr);
    if let Some(jobs) = jobs {
        cfg.jobs = jobs;
    }
    if let Some(clients) = clients {
        cfg.clients = clients;
    }
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    if let Some(mix) = mix {
        cfg.mix = mix;
    }
    if let Some(experiments) = experiments {
        cfg.experiments = experiments;
    }
    if let Some(size) = size {
        cfg.size = size;
    }

    let report = match foldic_serve::loadgen::run(&cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return 2;
        }
    };
    println!(
        "loadgen: {} job(s) x {} client(s), seed {} — {} done, {} cancelled, {} failed, {} rejected, {} error(s)",
        report.jobs,
        report.clients,
        report.seed,
        report.done,
        report.cancelled,
        report.failed,
        report.rejected,
        report.errors.len()
    );
    println!(
        "loadgen: hit ratio {:.2}, throughput {:.1} jobs/s, latency p50/p90/p99/max = {:.1}/{:.1}/{:.1}/{:.1} ms",
        report.hit_ratio,
        report.throughput_jps,
        report.latency_ms.get("p50").copied().unwrap_or(0.0),
        report.latency_ms.get("p90").copied().unwrap_or(0.0),
        report.latency_ms.get("p99").copied().unwrap_or(0.0),
        report.latency_ms.get("max").copied().unwrap_or(0.0),
    );
    if let Some(path) = json_path {
        write_or_die(&path, &report.to_json().to_pretty());
        println!("loadgen: report -> {}", path.display());
    }
    if shutdown {
        match foldic_serve::client::post(addr, "/shutdown", std::time::Duration::from_secs(10)) {
            Ok(_) => println!("loadgen: asked {addr} to shut down"),
            Err(e) => eprintln!("loadgen: shutdown request failed: {e}"),
        }
    }
    if gate {
        if let Err(problems) = report.gate() {
            eprintln!("loadgen: GATE FAILED: {problems}");
            return 1;
        }
        println!("loadgen: gate passed");
    }
    0
}

/// `repro loadgen --chaos SEED [...]`: the deterministic crash harness.
/// Boots this same binary as `repro serve --journal --cache-dir` in a
/// scratch directory, drives seeded load (including slow-loris headers
/// and mid-request disconnects), SIGKILLs the daemon mid-flight, then
/// restarts it twice to assert that no acknowledged job is lost,
/// recovered bodies are byte-identical, and journal replay is
/// idempotent. Exit code: 0 on a passing gate, 1 on a durability
/// violation, 2 on harness errors.
fn run_chaos(
    seed: u64,
    jobs: Option<usize>,
    experiments: Option<Vec<String>>,
    size: Option<String>,
    json_path: Option<PathBuf>,
    gate: bool,
) -> i32 {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe.display().to_string(),
        Err(e) => {
            eprintln!("loadgen: cannot locate own executable for --chaos: {e}");
            return 2;
        }
    };
    let dir = std::env::temp_dir().join(format!(
        "foldic-chaos-{seed:x}-{pid}",
        pid = std::process::id()
    ));
    let cfg = foldic_serve::chaos::ChaosConfig {
        serve_cmd: vec![exe, "serve".to_owned()],
        seed,
        jobs: jobs.unwrap_or(12),
        experiments: experiments.unwrap_or_else(|| vec!["table1".to_owned(), "table2".to_owned()]),
        size: size.unwrap_or_else(|| "tiny".to_owned()),
        dir: dir.clone(),
        timeout: std::time::Duration::from_secs(120),
    };
    println!(
        "chaos: seed {seed}, {} job(s), scratch {}",
        cfg.jobs,
        dir.display()
    );
    let report = match foldic_serve::chaos::run(&cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("chaos: {e}");
            return 2;
        }
    };
    println!(
        "chaos: {} acked ({} done pre-kill), {} slow-loris, {} disconnect(s); lost {}, unrecovered {}, mismatched {}, replay re-enqueued {}",
        report.acked,
        report.done_before_kill,
        report.slowloris,
        report.disconnects,
        report.lost.len(),
        report.unrecovered.len(),
        report.mismatched.len(),
        report.reenqueued_after_clean
    );
    if let Some(path) = json_path {
        write_or_die(&path, &report.to_json().to_pretty());
        println!("chaos: report -> {}", path.display());
    }
    let verdict = report.gate();
    if verdict.is_ok() {
        // Keep the scratch directory around on failure so the journal
        // and cache can be inspected; a passing run cleans up.
        let _ = std::fs::remove_dir_all(&dir);
    }
    if gate {
        if let Err(problems) = verdict {
            eprintln!("chaos: GATE FAILED: {}", problems.join("; "));
            return 1;
        }
        println!("chaos: gate passed");
    }
    0
}

/// `repro loadgen --overload SEED [...]`: the deterministic overload
/// harness. Boots this same binary as `repro serve --mem-limit` with a
/// deliberately tiny limit, floods it behind an oversized job that
/// reserves the whole admission ledger, then asserts the daemon
/// survives, every shed carries a usable `Retry-After`, every fitting
/// job completes once clients honor it, and the oversized job degrades
/// deterministically (byte-identical bodies with `resources`
/// provenance). Exit code: 0 on a passing gate, 1 on a violated
/// invariant, 2 on harness errors.
fn run_overload(seed: u64, jobs: Option<usize>, json_path: Option<PathBuf>, gate: bool) -> i32 {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe.display().to_string(),
        Err(e) => {
            eprintln!("loadgen: cannot locate own executable for --overload: {e}");
            return 2;
        }
    };
    let dir = std::env::temp_dir().join(format!(
        "foldic-overload-{seed:x}-{pid}",
        pid = std::process::id()
    ));
    let cfg = foldic_serve::overload::OverloadConfig {
        serve_cmd: vec![exe, "serve".to_owned()],
        seed,
        jobs: jobs.unwrap_or(6),
        mem_limit: foldic_serve::overload::DEFAULT_MEM_LIMIT,
        dir: dir.clone(),
        timeout: std::time::Duration::from_secs(120),
    };
    println!(
        "overload: seed {seed}, {} fitting job(s), mem limit {}, scratch {}",
        cfg.jobs,
        foldic::format_bytes(cfg.mem_limit),
        dir.display()
    );
    let report = match foldic_serve::overload::run(&cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("overload: {e}");
            return 2;
        }
    };
    println!(
        "overload: {}/{} fitting job(s) done, {} shed(s) ({} hintless), {} oversized ack(s) (mismatched: {}, missing resources: {}), daemon died: {}, ledger after drain: {} byte(s)",
        report.completed,
        report.fitting,
        report.shed,
        report.bad_retry_after,
        report.oversized_acked,
        report.oversized_mismatched,
        report.oversized_missing_resources,
        report.daemon_died,
        report.stats_reserved_after
    );
    if let Some(path) = json_path {
        write_or_die(&path, &report.to_json().to_pretty());
        println!("overload: report -> {}", path.display());
    }
    let verdict = report.gate();
    if verdict.is_ok() {
        // Keep the scratch directory around on failure for inspection;
        // a passing run cleans up.
        let _ = std::fs::remove_dir_all(&dir);
    }
    if gate {
        if let Err(problems) = verdict {
            eprintln!("overload: GATE FAILED: {}", problems.join("; "));
            return 1;
        }
        println!("overload: gate passed");
    }
    0
}

/// `repro probe --addr HOST:PORT [--submit a+b] [--size S] [--seed S]
/// [--shutdown]`. A diagnostic client that validates a daemon's
/// telemetry surface with the in-repo parsers: `/healthz` liveness
/// fields, a `/metrics` scrape parsed as an exposition with the
/// contract series present, and (with `--submit`) one computed job
/// whose `/jobs/<id>/trace` loads as Chrome-trace JSON with the
/// `http.request → queue.wait → job.run` span chain. Exit code: 0 when
/// every probe passes, 1 on a telemetry contract violation, 2 on
/// usage errors.
fn run_probe(args: &[String]) -> i32 {
    let mut addr: Option<std::net::SocketAddr> = None;
    let mut submit: Option<Vec<String>> = None;
    let mut size = "tiny".to_owned();
    let mut seed: Option<u64> = None;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--addr needs HOST:PORT"));
                addr =
                    Some(v.parse().unwrap_or_else(|_| {
                        usage_err(&format!("--addr needs HOST:PORT, got `{v}`"))
                    }));
            }
            "--submit" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--submit needs a +-separated list"));
                submit = Some(v.split('+').map(str::to_owned).collect());
            }
            "--size" => {
                size = it
                    .next()
                    .unwrap_or_else(|| usage_err("--size needs a value (full|small|tiny)"))
                    .clone();
            }
            "--seed" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--seed needs a value"));
                seed = Some(parse_u64_maybe_hex(v).unwrap_or_else(|| {
                    usage_err(&format!(
                        "--seed needs an integer (decimal or 0x hex), got `{v}`"
                    ))
                }));
            }
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => usage_err(&format!("unknown probe argument `{other}`")),
        }
    }
    let Some(addr) = addr else {
        usage_err("probe needs --addr HOST:PORT");
    };
    match probe(addr, submit, &size, seed, shutdown) {
        Ok(()) => {
            println!("probe: ok");
            0
        }
        Err(e) => {
            eprintln!("probe: FAILED: {e}");
            1
        }
    }
}

fn probe(
    addr: std::net::SocketAddr,
    submit: Option<Vec<String>>,
    size: &str,
    seed: Option<u64>,
    shutdown: bool,
) -> Result<(), String> {
    use foldic_serve::{client, telemetry};
    const T: Duration = Duration::from_secs(30);
    const POLL: Duration = Duration::from_secs(600);

    let health = client::get(addr, "/healthz", T).map_err(|e| format!("healthz: {e}"))?;
    if health.status != 200 {
        return Err(format!("healthz returned {}", health.status));
    }
    let doc = health.body_json()?;
    if doc.get("ok") != Some(&Json::Bool(true)) {
        return Err("healthz body lacks ok=true".to_owned());
    }
    let version = doc
        .get("version")
        .and_then(Json::as_str)
        .ok_or("healthz lacks a version")?
        .to_owned();
    let uptime = doc
        .get("uptime_seconds")
        .and_then(Json::as_f64)
        .ok_or("healthz lacks uptime_seconds")?;
    println!("probe: healthz ok — version {version}, up {uptime:.1}s");

    let mut traced_job = None;
    if let Some(experiments) = submit {
        let spec = foldic_serve::JobSpec {
            experiments,
            size: size.to_owned(),
            seed,
            ..foldic_serve::JobSpec::default()
        };
        let response = client::post_json(addr, "/jobs", &spec.to_json(), T)
            .map_err(|e| format!("submit: {e}"))?;
        match response.status {
            202 => {}
            // A hit never dispatches, so its trace has no execution
            // spans; the probe needs a config the daemon hasn't seen.
            200 => {
                return Err(
                    "submitted config was already cached; probe with a fresh --seed".to_owned(),
                )
            }
            status => {
                return Err(format!(
                    "submit returned {status}: {}",
                    response.body_text().unwrap_or("<binary>")
                ))
            }
        }
        let id = response
            .body_json()?
            .get("job")
            .and_then(Json::as_f64)
            .ok_or("submit body lacks a job id")? as u64;
        let deadline = Instant::now() + POLL;
        loop {
            let doc = client::get(addr, &format!("/jobs/{id}"), T)
                .map_err(|e| format!("status poll: {e}"))?
                .body_json()?;
            match doc.get("state").and_then(Json::as_str) {
                Some("done") => break,
                Some(terminal @ ("failed" | "cancelled")) => {
                    return Err(format!("job {id} ended {terminal}"))
                }
                _ => {}
            }
            if Instant::now() >= deadline {
                return Err(format!("job {id} never finished"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }

        let trace = client::get(addr, &format!("/jobs/{id}/trace"), T)
            .map_err(|e| format!("trace fetch: {e}"))?;
        if trace.status != 200 {
            return Err(format!("trace returned {}", trace.status));
        }
        let doc = Json::parse(trace.body_text()?)?;
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("trace lacks a traceEvents array")?;
        let mut spans: BTreeMap<u64, (String, Option<u64>)> = BTreeMap::new();
        for event in events {
            if event.get("ph").and_then(Json::as_str) != Some("B") {
                continue;
            }
            let name = event
                .get("name")
                .and_then(Json::as_str)
                .ok_or("begin event lacks a name")?
                .to_owned();
            let args = event.get("args").ok_or("begin event lacks args")?;
            let span = args
                .get("span")
                .and_then(Json::as_f64)
                .ok_or("begin event lacks a span id")? as u64;
            let parent = args.get("parent").and_then(Json::as_f64).map(|p| p as u64);
            spans.insert(span, (name, parent));
        }
        let lookup = |want: &str| -> Result<(u64, Option<u64>), String> {
            spans
                .iter()
                .find(|(_, (name, _))| name == want)
                .map(|(span, (_, parent))| (*span, *parent))
                .ok_or_else(|| format!("trace lacks a `{want}` span"))
        };
        let (http_span, _) = lookup("http.request")?;
        let (qwait_span, qwait_parent) = lookup("queue.wait")?;
        let (run_span, run_parent) = lookup("job.run")?;
        if qwait_parent != Some(http_span) || run_parent != Some(qwait_span) {
            return Err(
                "trace spans are not nested http.request → queue.wait → job.run".to_owned(),
            );
        }
        println!(
            "probe: job {id} trace ok — {} begin span(s), root span {run_span} chain intact",
            spans.len()
        );
        traced_job = Some(id);
    }

    let scrape = client::get(addr, "/metrics", T).map_err(|e| format!("metrics: {e}"))?;
    if scrape.status != 200 {
        return Err(format!("metrics returned {}", scrape.status));
    }
    let samples = foldic_obs::expo::parse_exposition(scrape.body_text()?)?;
    for series in [
        telemetry::requests_series("healthz", "GET", 200),
        telemetry::SERIES_JOBS_SUBMITTED.to_owned(),
        "foldic_serve_uptime_seconds".to_owned(),
        "foldic_serve_workers".to_owned(),
    ] {
        if !samples.contains_key(&series) {
            return Err(format!("/metrics lacks required series {series}"));
        }
    }
    if traced_job.is_some()
        && samples
            .get(&telemetry::jobs_state_series("done"))
            .copied()
            .unwrap_or(0.0)
            < 1.0
    {
        return Err("/metrics does not count the probe job as done".to_owned());
    }
    println!(
        "probe: metrics ok — {} series ({})",
        samples.len(),
        telemetry::METRICS_SCHEMA
    );

    if shutdown {
        client::post(addr, "/shutdown", T).map_err(|e| format!("shutdown: {e}"))?;
        println!("probe: asked {addr} to shut down");
    }
    Ok(())
}

/// Parses `123` or `0x7b`.
fn parse_u64_maybe_hex(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// `repro compare <baseline.json> <candidate.json> [--tol PCT]`.
/// Exit code: 0 clean, 1 regression, 2 usage/parse error.
fn run_compare(args: &[String]) -> i32 {
    let mut paths: Vec<&str> = Vec::new();
    let mut cfg = CompareConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_err("--tol needs a percentage"));
                cfg.rel_tol_pct = v.parse().unwrap_or_else(|_| {
                    usage_err(&format!("--tol needs a number (percent), got `{v}`"))
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other if other.starts_with('-') => usage_err(&format!("unknown flag `{other}`")),
            other => paths.push(other),
        }
    }
    let [base_path, cand_path] = paths[..] else {
        usage_err("compare needs exactly <baseline.json> <candidate.json>");
    };
    let load = |p: &str| -> RunManifest {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        });
        RunManifest::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {p}: {e}");
            std::process::exit(2);
        })
    };
    let base = load(base_path);
    let cand = load(cand_path);
    let outcome = compare(&base, &cand, cfg);
    for c in &outcome.changes {
        println!("  ~ {c}");
    }
    for r in &outcome.regressions {
        println!("  ! {r}");
    }
    println!(
        "compare: {} values, {} in-tolerance changes, {} regressions (tol {}%)",
        outcome.compared,
        outcome.changes.len(),
        outcome.regressions.len(),
        cfg.rel_tol_pct
    );
    if outcome.is_ok() {
        println!("OK: {cand_path} matches {base_path}");
        0
    } else {
        println!("REGRESSION: {cand_path} deviates from {base_path}");
        1
    }
}
