//! The paper's published numbers, transcribed from the DAC 2014 text.
//!
//! Used as the reference column in every regenerated table/figure. Some
//! absolute values did not survive the available OCR of the paper; where a
//! number is reconstructed from the prose it is marked in the doc comment.

/// Table 2 — 2D vs 3D block-level designs (percent deltas vs 2D).
pub mod table2 {
    /// Footprint delta of both 3D styles.
    pub const FOOTPRINT: f64 = -46.0;
    /// Cell-count delta, core/cache / core/core.
    pub const CELLS: [f64; 2] = [-2.4, -1.8];
    /// Buffer-count delta.
    pub const BUFFERS: [f64; 2] = [-16.3, -15.2];
    /// Wirelength delta.
    pub const WIRELENGTH: [f64; 2] = [-5.0, -5.4];
    /// Total power delta.
    pub const TOTAL_POWER: [f64; 2] = [-10.3, -9.1];
    /// Cell power delta.
    pub const CELL_POWER: [f64; 2] = [-15.6, -13.6];
    /// Net power delta.
    pub const NET_POWER: [f64; 2] = [-8.4, -8.2];
    /// Leakage delta.
    pub const LEAKAGE: [f64; 2] = [-9.9, -7.9];
    /// Inter-block wirelength delta (§3.2 prose).
    pub const INTERBLOCK_WL: [f64; 2] = [-15.6, -17.8];
}

/// Table 3 — folding-candidate census (per-copy power share %, net power
/// portion %, long-wire count). Block names reconstructed from the prose
/// (see DESIGN.md).
pub const TABLE3: [(&str, f64, f64, f64, &str); 8] = [
    ("SPC", 5.8, 55.1, 27_700.0, "CPU clock, 8X"),
    ("RTX", 3.6, 44.4, 27_500.0, "I/O clock"),
    ("CCX", 2.8, 57.6, 12_400.0, "CPU clock"),
    ("L2D", 2.1, 29.2, 6_500.0, "8X"),
    ("L2T", 1.8, 48.5, 6_000.0, "8X"),
    ("RDP", 1.7, 48.9, 5_200.0, "I/O clock"),
    ("TDS", 1.3, 43.1, 4_800.0, "I/O clock"),
    ("MAC", 1.1, 40.7, 5_400.0, "I/O clock"),
];

/// Table 4 — 2D vs folded L2D (`scdata`), percent deltas.
pub mod table4 {
    /// Footprint delta.
    pub const FOOTPRINT: f64 = -48.4;
    /// Wirelength delta.
    pub const WIRELENGTH: f64 = -6.4;
    /// Buffer-count delta.
    pub const BUFFERS: f64 = -33.5;
    /// Total power delta.
    pub const TOTAL_POWER: f64 = -5.1;
    /// 2D net-power portion (§4.4 prose: "only about 29 %").
    pub const NET_PORTION_2D: f64 = 29.0;
}

/// Table 5 — full-chip dual-Vth comparison (percent deltas vs 2D DVT).
pub mod table5 {
    /// Footprint: 3D w/o folding, 3D w/ folding.
    pub const FOOTPRINT: [f64; 2] = [-46.0, -42.6];
    /// Wirelength.
    pub const WIRELENGTH: [f64; 2] = [-5.5, -8.9];
    /// Cells.
    pub const CELLS: [f64; 2] = [-4.3, -7.8];
    /// Buffers.
    pub const BUFFERS: [f64; 2] = [-17.9, -22.8];
    /// HVT share of cells (%): 2D, 3D w/o folding, 3D w/ folding.
    pub const HVT_SHARE: [f64; 3] = [87.8, 90.0, 94.0];
    /// 3D connections: w/o folding (TSV), w/ folding (F2F).
    pub const VIAS: [f64; 2] = [3_263.0, 112_044.0];
    /// Total power.
    pub const TOTAL_POWER: [f64; 2] = [-13.7, -20.3];
    /// Cell power.
    pub const CELL_POWER: [f64; 2] = [-21.2, -33.6];
    /// Net power.
    pub const NET_POWER: [f64; 2] = [-11.2, -14.8];
    /// Leakage.
    pub const LEAKAGE: [f64; 2] = [-12.4, -24.2];
    /// DVT saving over the RVT-only build: 2D, 3D w/ folding (§6.2).
    pub const DVT_VS_RVT: [f64; 2] = [-9.5, -11.4];
}

/// Fig. 2 — folding the crossbar.
pub mod fig2 {
    /// Footprint delta of the folded CCX.
    pub const FOOTPRINT: f64 = -54.6;
    /// Wirelength delta.
    pub const WIRELENGTH: f64 = -28.8;
    /// Buffer delta.
    pub const BUFFERS: f64 = -62.5;
    /// Power delta.
    pub const TOTAL_POWER: f64 = -32.8;
    /// Signal TSVs of the natural PCX/CPX split.
    pub const TSVS: usize = 4;
    /// TSV count of the most-connected alternative partition…
    pub const SWEEP_TSVS: usize = 6_393;
    /// …its TSV area overhead…
    pub const SWEEP_AREA_OVERHEAD: f64 = 13.3;
    /// …and the reduced power benefit it achieves.
    pub const SWEEP_POWER: f64 = -23.4;
}

/// Fig. 3 — second-level folding of the SPARC core.
pub mod fig3 {
    /// FUBs folded out of 14.
    pub const FOLDED_FUBS: usize = 6;
    /// F2F via count.
    pub const F2F_VIAS: usize = 10_251;
    /// Deltas vs the SPC without second-level folding.
    pub const WIRELENGTH_VS_BLOCK3D: f64 = -9.2;
    /// Buffer delta vs block-level 3D.
    pub const BUFFERS_VS_BLOCK3D: f64 = -10.8;
    /// Power delta vs block-level 3D.
    pub const POWER_VS_BLOCK3D: f64 = -5.1;
    /// Power delta vs the 2D SPC.
    pub const POWER_VS_2D: f64 = -21.2;
}

/// Fig. 6 — bonding-style impact on folded placement.
pub mod fig6 {
    /// L2D folded: F2F footprint vs F2B footprint.
    pub const L2D_F2F_VS_F2B_FOOTPRINT: f64 = -2.6;
    /// L2T folded: F2F footprint vs F2B footprint.
    pub const L2T_F2F_VS_F2B_FOOTPRINT: f64 = -6.3;
    /// TSV silicon share of the folded L2T die ("TSV area: ~10 %").
    pub const TSV_AREA_SHARE: f64 = 10.0;
    /// L2T folded under F2F vs F2B: wirelength delta (§5.2 prose).
    pub const L2T_F2F_VS_F2B_WIRELENGTH: f64 = -11.1;
    /// …buffer delta…
    pub const L2T_F2F_VS_F2B_BUFFERS: f64 = -3.9;
    /// …and power delta.
    pub const L2T_F2F_VS_F2B_POWER: f64 = -4.1;
}

/// Fig. 7 — partition sweep of the folded L2T under both bonding styles.
pub mod fig7 {
    /// 3D-connection counts of partition cases #1–#5.
    pub const CASE_VIAS: [usize; 5] = [1_014, 1_950, 2_451, 4_120, 5_073];
    /// Case #5: F2F power vs F2B power.
    pub const CASE5_F2F_VS_F2B: f64 = -16.2;
}

/// Fig. 8 — the five full-chip styles.
pub mod fig8 {
    /// Die footprints in mm²: 2D, core/cache, core/core, fold+TSV, fold+F2F.
    pub const FOOTPRINT_MM2: [f64; 5] = [71.1, 38.4, 38.4, 39.6, 39.6];
    /// 3D connection counts (0 for 2D).
    pub const VIAS: [usize; 5] = [0, 3_263, 7_606, 69_091, 112_308];
}

/// Table 1 — 3D interconnect settings. The paper's exact cell values did
/// not survive OCR; the reproduced table is generated from the same Katti
/// model \[4\] with the geometry in `foldic_tech::via3d`, preserving the
/// stated relations (TSV ≫ F2F via in size and capacitance; F2F via ≈ 2×
/// the minimum M9 width).
pub mod table1 {
    /// Sanity relation: TSV capacitance must dwarf the F2F via's.
    pub const TSV_OVER_F2F_CAP_MIN: f64 = 10.0;
}
