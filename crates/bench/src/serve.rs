//! The real [`StudyRunner`] behind `repro serve`: executes paper
//! experiments and emits `foldic-run-manifest/1` bodies.
//!
//! The canonical config this runner resolves a job to is **byte-for-byte
//! the map the one-shot `repro --manifest` CLI writes** (`size`, hex
//! `seed`, `cluster_size`, `experiments` in the fixed run order, plus
//! `deadline` when bounded). That equality is what makes the daemon's
//! content-addressed cache interoperate with offline manifests: a served
//! result and a CLI run of the same study digest-compare clean with
//! `repro compare`, and the serve cache key is a pure function of the
//! same bytes. The e2e gate (`crates/bench/tests/serve_gate.rs`) pins it.
//!
//! Serve jobs keep the manifest's `timing` section `Null` and its
//! `metrics` snapshot empty: both are process-global observations that
//! would race between concurrent jobs, and both are excluded from
//! comparison anyway. Deadline-bounded and memory-budgeted jobs ride
//! process-global layers (`foldic-fault`'s deadline and resource
//! machinery), so the scheduler dispatches them exclusively; this
//! runner additionally serializes the install → run → drain → clear
//! window behind a static mutex so even direct (non-scheduler) use
//! cannot interleave two installations.

use crate::{experiments, Ctx};
use foldic::{
    clear_deadline, clear_resource, install_deadline, install_resource, take_fault_log, take_peaks,
    Deadline, DeadlinePolicy, FaultRecord, ResourcePolicy, Watchdog,
};
use foldic_obs::flight;
use foldic_obs::json::Json;
use foldic_obs::manifest::RunManifest;
use foldic_serve::queue::StudyRunner;
use foldic_serve::JobSpec;
use foldic_t2::T2Config;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Experiments the daemon serves, in the fixed `repro` run order.
/// `layouts` (writes files) and the `all` alias are deliberately not
/// servable: a job names its studies explicitly.
pub const SERVABLE: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table5",
    "thermal",
    "ablations",
];

/// Guards the process-global deadline window (see module docs).
static DEADLINE_WINDOW: Mutex<()> = Mutex::new(());

/// Executes `foldic-bench` experiments for the serve scheduler.
#[derive(Debug, Default, Clone, Copy)]
pub struct BenchRunner;

/// A resolved, runnable study.
struct Resolved {
    cfg: T2Config,
    names: Vec<&'static str>,
    config: BTreeMap<String, String>,
}

fn resolve_spec(spec: &JobSpec) -> Result<Resolved, String> {
    let mut cfg = match spec.size.as_str() {
        "full" => T2Config::full(),
        "small" => T2Config::small(),
        "tiny" => T2Config::tiny(),
        other => return Err(format!("unknown size `{other}` (full|small|tiny)")),
    };
    if let Some(seed) = spec.seed {
        cfg.seed = seed;
    }
    for name in &spec.experiments {
        if !SERVABLE.contains(&name.as_str()) {
            return Err(format!(
                "experiment `{name}` is not servable (servable: {})",
                SERVABLE.join(" ")
            ));
        }
    }
    // Canonical order + dedup: the run order is fixed, so two jobs naming
    // the same set of studies resolve to the same config — and the same
    // cache entry — regardless of how the client ordered them.
    let names: Vec<&'static str> = SERVABLE
        .iter()
        .copied()
        .filter(|name| spec.experiments.iter().any(|e| e == name))
        .collect();

    let mut config = BTreeMap::new();
    config.insert("size".to_owned(), spec.size.clone());
    config.insert("seed".to_owned(), format!("{:#x}", cfg.seed));
    config.insert("cluster_size".to_owned(), cfg.cluster_size.to_string());
    config.insert("experiments".to_owned(), names.join("+"));
    if let Some(secs) = spec.deadline_secs {
        config.insert("deadline".to_owned(), format!("{secs}"));
    }
    Ok(Resolved { cfg, names, config })
}

fn run_experiments(ctx: &mut Ctx, names: &[&'static str], manifest: &mut RunManifest) {
    for name in names {
        let text = match *name {
            "table1" => experiments::table1(&ctx.tech),
            "table2" => experiments::table2(ctx),
            "table3" => experiments::table3(ctx),
            "table4" => experiments::table4(ctx),
            "fig2" => experiments::fig2(ctx),
            "fig3" => experiments::fig3(ctx),
            "fig5" => experiments::fig5(ctx),
            "fig6" => experiments::fig6(ctx),
            "fig7" => experiments::fig7(ctx),
            "fig8" => experiments::fig8(ctx),
            "table5" => experiments::table5(ctx),
            "thermal" => experiments::thermal(ctx),
            "ablations" => experiments::ablations(ctx),
            other => unreachable!("unservable experiment `{other}` past resolve"),
        };
        manifest.record_result(name, &text);
    }
}

impl StudyRunner for BenchRunner {
    fn resolve(&self, spec: &JobSpec) -> Result<BTreeMap<String, String>, String> {
        Ok(resolve_spec(spec)?.config)
    }

    fn run(&self, spec: &JobSpec) -> Result<String, String> {
        self.run_budgeted(spec, None)
    }

    fn run_budgeted(&self, spec: &JobSpec, mem_budget: Option<u64>) -> Result<String, String> {
        let resolved = resolve_spec(spec)?;
        let mut manifest = RunManifest {
            config: resolved.config,
            ..RunManifest::default()
        };
        let mut ctx = Ctx::with_threads(resolved.cfg, spec.threads.max(1));

        if spec.deadline_secs.is_none() && mem_budget.is_none() {
            run_experiments(&mut ctx, &resolved.names, &mut manifest);
            return Ok(manifest.to_json_text());
        }

        // Deadline- and budget-bounded jobs both ride process-global
        // layers, so the scheduler dispatches them exclusively; this
        // runner additionally serializes the whole install → run →
        // drain → clear window so even direct (non-scheduler) use
        // cannot interleave two installations.
        let window = DEADLINE_WINDOW.lock().unwrap_or_else(|e| e.into_inner());
        // Drop fault-log residue so this job's fault provenance is its
        // own (clean unbounded runs never drain the log).
        let _ = take_fault_log();
        // This thread is the scheduler worker, so records land in the
        // worker's flight ring and a degraded job's status payload
        // carries them as provenance.
        let mut start_fields = vec![
            (
                "experiments".to_owned(),
                Json::Str(resolved.names.join("+")),
            ),
            ("size".to_owned(), Json::Str(spec.size.clone())),
        ];
        if let Some(secs) = spec.deadline_secs {
            start_fields.push(("deadline_secs".to_owned(), Json::Num(secs)));
        }
        if let Some(bytes) = mem_budget {
            start_fields.push(("mem_budget_bytes".to_owned(), Json::Num(bytes as f64)));
        }
        flight::record("job.start", start_fields);
        let watchdog = spec.deadline_secs.map(|secs| {
            let overall = Duration::from_secs_f64(secs);
            let policy = DeadlinePolicy {
                overall: Some(overall),
                ..Default::default()
            };
            let token = install_deadline(&policy);
            Watchdog::spawn(Deadline::new(overall), token, Some("serve"))
        });
        if let Some(bytes) = mem_budget {
            install_resource(&ResourcePolicy {
                overall: Some(bytes),
                stage_budgets: Vec::new(),
            });
        }
        let caught = foldic_exec::run_caught(std::panic::AssertUnwindSafe(|| {
            run_experiments(&mut ctx, &resolved.names, &mut manifest);
        }));
        if let Some(watchdog) = watchdog {
            watchdog.disarm();
            clear_deadline();
        }
        let peaks = if mem_budget.is_some() {
            clear_resource();
            take_peaks()
        } else {
            Vec::new()
        };
        let (timeouts, rest): (Vec<FaultRecord>, Vec<FaultRecord>) =
            take_fault_log().into_iter().partition(|r| r.timed_out);
        let (mem_log, faults): (Vec<FaultRecord>, Vec<FaultRecord>) =
            rest.into_iter().partition(|r| r.mem_exceeded);
        drop(window);
        let flight_fields = |record: &FaultRecord| {
            [
                ("block".to_owned(), Json::Str(record.block.clone())),
                (
                    "disposition".to_owned(),
                    Json::Str(record.disposition.as_str().to_owned()),
                ),
                ("scope".to_owned(), Json::Str(record.scope.clone())),
                (
                    "stage".to_owned(),
                    Json::Str(record.stage.as_str().to_owned()),
                ),
            ]
        };
        for record in &timeouts {
            flight::record("stage.timeout", flight_fields(record));
        }
        for record in &mem_log {
            flight::record("stage.mem_exceeded", flight_fields(record));
        }
        for record in &faults {
            flight::record("stage.fault", flight_fields(record));
        }
        if let Err(panic) = &caught {
            flight::record(
                "job.panic",
                [("message".to_owned(), Json::Str(panic.message().to_owned()))],
            );
        }
        let mut end_fields = vec![
            ("faults".to_owned(), Json::Num(faults.len() as f64)),
            (
                "outcome".to_owned(),
                Json::Str(if caught.is_ok() { "ok" } else { "panicked" }.to_owned()),
            ),
            ("timeouts".to_owned(), Json::Num(timeouts.len() as f64)),
        ];
        if mem_budget.is_some() {
            // pay-for-use: deadline-only jobs keep their pre-budget
            // flight shape byte-for-byte
            end_fields.push(("mem_exceeded".to_owned(), Json::Num(mem_log.len() as f64)));
        }
        flight::record("job.end", end_fields);
        caught.map_err(|p| format!("job panicked: {}", p.message()))?;
        manifest.faults = faults.iter().map(FaultRecord::to_manifest_entry).collect();
        manifest.timeouts = timeouts
            .iter()
            .map(FaultRecord::to_manifest_entry)
            .collect();
        manifest.mem_exceeded = mem_log.iter().map(FaultRecord::to_manifest_entry).collect();
        if mem_budget.is_some() {
            // pay-for-use: peaks are recorded only while a policy is
            // installed, so unbudgeted bodies stay byte-identical
            manifest.resources = peaks
                .into_iter()
                .map(|(stage, bytes)| (stage.to_string(), bytes))
                .collect();
        }
        Ok(manifest.to_json_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(names: &[&str], size: &str) -> JobSpec {
        JobSpec {
            experiments: names.iter().map(|s| (*s).to_owned()).collect(),
            size: size.to_owned(),
            ..JobSpec::default()
        }
    }

    #[test]
    fn resolve_canonicalizes_order_and_dedups() {
        let runner = BenchRunner;
        let a = runner
            .resolve(&spec(&["fig2", "table1", "fig2"], "tiny"))
            .unwrap();
        let b = runner.resolve(&spec(&["table1", "fig2"], "tiny")).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.get("experiments").unwrap(), "table1+fig2");
        assert_eq!(a.get("size").unwrap(), "tiny");
        assert_eq!(
            a.get("seed").unwrap(),
            &format!("{:#x}", T2Config::tiny().seed)
        );
        assert_eq!(
            a.get("cluster_size").unwrap(),
            &T2Config::tiny().cluster_size.to_string()
        );
    }

    #[test]
    fn resolve_rejects_unservable_and_unknown() {
        let runner = BenchRunner;
        for bad in ["layouts", "all", "bogus"] {
            let err = runner.resolve(&spec(&[bad], "tiny")).unwrap_err();
            assert!(err.contains("not servable"), "{bad}: {err}");
        }
        assert!(runner
            .resolve(&spec(&["table1"], "huge"))
            .unwrap_err()
            .contains("unknown size"));
    }

    #[test]
    fn seed_override_lands_in_the_config() {
        let runner = BenchRunner;
        let mut s = spec(&["table1"], "tiny");
        s.seed = Some(0xBEEF);
        let config = runner.resolve(&s).unwrap();
        assert_eq!(config.get("seed").unwrap(), "0xbeef");
    }

    #[test]
    fn unbudgeted_run_budgeted_is_plain_run() {
        // With no budget the instrumented path is bypassed entirely, so
        // the body is byte-identical to `run` (pay-for-use). The
        // budgeted path itself is exercised by the resource gate, where
        // its process-global layer cannot race sibling unit tests.
        let runner = BenchRunner;
        let s = spec(&["table1"], "tiny");
        assert_eq!(
            runner.run(&s).unwrap(),
            runner.run_budgeted(&s, None).unwrap()
        );
    }

    #[test]
    fn run_emits_a_parseable_manifest_with_results() {
        let runner = BenchRunner;
        let body = runner.run(&spec(&["table1"], "tiny")).unwrap();
        let manifest = RunManifest::parse(&body).unwrap();
        assert_eq!(manifest.config.get("experiments").unwrap(), "table1");
        assert!(manifest.results.contains_key("table1"));
        assert!(manifest.faults.is_empty());
        assert!(manifest.timeouts.is_empty());
        // determinism: identical spec, identical bytes
        let again = runner.run(&spec(&["table1"], "tiny")).unwrap();
        assert_eq!(body, again);
    }
}
