//! One runner per table/figure of the paper.
//!
//! Every runner returns a formatted report with measured values next to
//! the paper's published ones. Determinism: all experiments derive from
//! the seeded generator and seeded heuristics, so reports are
//! reproducible bit-for-bit for a given `T2Config`.

use crate::{fault_footer, fmt_delta, paper, pct, Ctx};
use foldic::prelude::*;
use foldic_timing::TimingBudgets;
use std::fmt::Write as _;

/// A scalar extracted from a design's metrics, one table row each.
type Metric = fn(&DesignMetrics) -> f64;

/// Table 1: 3D interconnect settings from the electrical models.
pub fn table1(tech: &Technology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table 1: 3D interconnect settings ==");
    let _ = writeln!(
        out,
        "{:<8} {:>9} {:>8} {:>7} {:>9} {:>8}",
        "", "diameter", "height", "pitch", "R", "C"
    );
    for s in [tech.tsv.summary(), tech.f2f_via.summary()] {
        let name = match s.kind {
            foldic_tech::Via3dKind::Tsv => "TSV",
            foldic_tech::Via3dKind::F2fVia => "F2F via",
        };
        let _ = writeln!(
            out,
            "{name:<8} {:>7.2}um {:>6.1}um {:>5.1}um {:>7.3}Ohm {:>6.2}fF",
            s.diameter_um, s.height_um, s.pitch_um, s.resistance_ohm, s.capacitance_ff
        );
    }
    let ratio = tech.tsv.capacitance_ff() / tech.f2f_via.capacitance_ff();
    let _ = writeln!(
        out,
        "TSV/F2F capacitance ratio: {ratio:.1}x (paper requires >> 1; threshold {}x)",
        paper::table1::TSV_OVER_F2F_CAP_MIN
    );
    out
}

/// Table 2: 2D vs core/cache vs core/core block-level designs.
pub fn table2(ctx: &mut Ctx) -> String {
    ctx.warm(&[
        (DesignStyle::Flat2d, false),
        (DesignStyle::CoreCache, false),
        (DesignStyle::CoreCore, false),
    ]);
    let d2 = ctx.fullchip(DesignStyle::Flat2d, false).clone();
    let cc = ctx.fullchip(DesignStyle::CoreCache, false).clone();
    let co = ctx.fullchip(DesignStyle::CoreCore, false).clone();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table 2: 2D vs 3D block-level designs (RVT, 500 MHz) =="
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>12} {:>12}",
        "", "2D", "core/cache", "core/core"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>9.1} mm2 {:>8.1} mm2 {:>8.1} mm2",
        "footprint",
        d2.chip.footprint_mm2(),
        cc.chip.footprint_mm2(),
        co.chip.footprint_mm2()
    );
    let rows: [(&str, Metric, [f64; 2], f64); 7] = [
        ("# cells", |m| m.num_cells as f64, paper::table2::CELLS, 1.0),
        (
            "# buffers",
            |m| m.num_buffers as f64,
            paper::table2::BUFFERS,
            1.0,
        ),
        (
            "wirelength (m)",
            |m| m.wirelength_m(),
            paper::table2::WIRELENGTH,
            1.0,
        ),
        (
            "total power (W)",
            |m| m.power.total_w(),
            paper::table2::TOTAL_POWER,
            1.0,
        ),
        (
            "cell power (W)",
            |m| m.power.cell_uw * 1e-6,
            paper::table2::CELL_POWER,
            1.0,
        ),
        (
            "net power (W)",
            |m| m.power.net_uw() * 1e-6,
            paper::table2::NET_POWER,
            1.0,
        ),
        (
            "leakage (W)",
            |m| m.power.leakage_uw * 1e-6,
            paper::table2::LEAKAGE,
            1.0,
        ),
    ];
    for (name, get, paper_deltas, _) in rows {
        let b = get(&d2.chip);
        let _ = writeln!(
            out,
            "{name:<18} {b:>12.3} | cc {}  co {}",
            fmt_delta(pct(b, get(&cc.chip)), paper_deltas[0]),
            fmt_delta(pct(b, get(&co.chip)), paper_deltas[1]),
        );
    }
    let _ = writeln!(
        out,
        "{:<18} {:>12.3} | cc {}  co {}",
        "footprint delta",
        d2.chip.footprint_mm2(),
        fmt_delta(
            pct(d2.chip.footprint_um2, cc.chip.footprint_um2),
            paper::table2::FOOTPRINT
        ),
        fmt_delta(
            pct(d2.chip.footprint_um2, co.chip.footprint_um2),
            paper::table2::FOOTPRINT
        ),
    );
    let _ = writeln!(
        out,
        "{:<18} {:>9.2} m   | cc {}  co {}",
        "inter-block WL",
        d2.interblock_wl_um * 1e-6,
        fmt_delta(
            pct(d2.interblock_wl_um, cc.interblock_wl_um),
            paper::table2::INTERBLOCK_WL[0]
        ),
        fmt_delta(
            pct(d2.interblock_wl_um, co.interblock_wl_um),
            paper::table2::INTERBLOCK_WL[1]
        ),
    );
    let _ = writeln!(
        out,
        "chip TSVs: core/cache {}, core/core {}",
        cc.chip_vias, co.chip_vias
    );
    out.push_str(&fault_footer(&[&d2, &cc, &co]));
    out
}

/// Table 3: folding-candidate census of the 2D design.
pub fn table3(ctx: &mut Ctx) -> String {
    let d2 = ctx.fullchip(DesignStyle::Flat2d, false).clone();
    let rows = fold_candidates(&d2.per_block);
    let scale = ctx.cfg.cluster_size;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table 3: block census for folding-candidate selection (2D) =="
    );
    let _ = writeln!(
        out,
        "{:<6} {:>8} {:>8} {:>9} {:>10} {:<14} | paper (share, net%, longw)",
        "block", "share%", "net%", "longwires", "(x{scale})", "selected",
    );
    for r in rows.iter().take(10) {
        let p = paper::TABLE3.iter().find(|(k, ..)| *k == r.kind.label());
        let paper_s = p
            .map(|(_, s, n, l, _)| format!("{s:>5.1}% {n:>5.1}% {l:>8.0}"))
            .unwrap_or_else(|| "(below 1% in paper)".to_owned());
        let _ = writeln!(
            out,
            "{:<6} {:>8.2} {:>8.1} {:>9} {:>10.0} {:<14} | {paper_s}",
            r.kind.label(),
            r.power_share * 100.0,
            r.net_power_frac * 100.0,
            r.long_wires,
            r.long_wires as f64 * scale,
            if r.selected { "fold" } else { "-" },
        );
    }
    let _ = writeln!(
        out,
        "(long-wire counts are per synthetic net; x{scale:.0} column rescales to real-cell nets)"
    );
    out.push_str(&fault_footer(&[&d2]));
    out
}

/// Table 4: folding the L2 data bank (`scdata`).
pub fn table4(ctx: &mut Ctx) -> String {
    let b2 = ctx.block_2d("l2d0");
    let mut d3 = ctx.design.clone();
    let id = d3.find_block("l2d0").expect("l2d0 exists");
    let cfg = FoldConfig {
        strategy: FoldStrategy::MacroRows,
        aspect: FoldAspect::KeepWidth,
        bonding: BondingStyle::FaceToBack,
        ..FoldConfig::default()
    };
    let f = fold_block(d3.block_mut(id), &ctx.tech, &cfg).expect("fold");
    let m = &f.metrics;
    let mut out = String::new();
    let _ = writeln!(out, "== Table 4: 2D vs folded L2D (scdata), F2B ==");
    let _ = writeln!(
        out,
        "footprint   {:>9.3} mm2 -> {:>9.3} mm2  {}",
        b2.footprint_mm2(),
        m.footprint_mm2(),
        fmt_delta(
            pct(b2.footprint_um2, m.footprint_um2),
            paper::table4::FOOTPRINT
        )
    );
    let _ = writeln!(
        out,
        "wirelength  {:>9.3} m   -> {:>9.3} m    {}",
        b2.wirelength_m(),
        m.wirelength_m(),
        fmt_delta(
            pct(b2.wirelength_um, m.wirelength_um),
            paper::table4::WIRELENGTH
        )
    );
    let _ = writeln!(
        out,
        "# buffers   {:>9}     -> {:>9}      {}",
        b2.num_buffers,
        m.num_buffers,
        fmt_delta(
            pct(b2.num_buffers as f64, m.num_buffers as f64),
            paper::table4::BUFFERS
        )
    );
    let _ = writeln!(
        out,
        "total power {:>9.1} mW  -> {:>9.1} mW   {}",
        b2.power.total_uw() * 1e-3,
        m.power.total_uw() * 1e-3,
        fmt_delta(
            pct(b2.power.total_uw(), m.power.total_uw()),
            paper::table4::TOTAL_POWER
        )
    );
    let _ = writeln!(
        out,
        "2D net-power portion {:.1}% (paper ~{}%); TSVs used: {}",
        b2.power.net_fraction() * 100.0,
        paper::table4::NET_PORTION_2D,
        m.num_3d_connections
    );
    out
}

/// Table 5: full-chip dual-Vth comparison.
pub fn table5(ctx: &mut Ctx) -> String {
    ctx.warm(&[
        (DesignStyle::Flat2d, true),
        (DesignStyle::CoreCache, true),
        (DesignStyle::FoldedF2f, true),
        (DesignStyle::Flat2d, false),
        (DesignStyle::FoldedF2f, false),
    ]);
    let d2 = ctx.fullchip(DesignStyle::Flat2d, true).clone();
    let nf = ctx.fullchip(DesignStyle::CoreCache, true).clone();
    let fo = ctx.fullchip(DesignStyle::FoldedF2f, true).clone();
    // RVT baselines for the §6.2 DVT-vs-RVT claim
    let d2_rvt = ctx.fullchip(DesignStyle::Flat2d, false).clone();
    let fo_rvt = ctx.fullchip(DesignStyle::FoldedF2f, false).clone();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table 5: 2D vs 3D w/o folding (core/cache, F2B) vs 3D w/ folding (F2F), dual-Vth =="
    );
    let rows: [(&str, Metric, [f64; 2]); 7] = [
        (
            "wirelength (m)",
            |m| m.wirelength_m(),
            paper::table5::WIRELENGTH,
        ),
        ("# cells", |m| m.num_cells as f64, paper::table5::CELLS),
        (
            "# buffers",
            |m| m.num_buffers as f64,
            paper::table5::BUFFERS,
        ),
        (
            "total power (W)",
            |m| m.power.total_w(),
            paper::table5::TOTAL_POWER,
        ),
        (
            "cell power (W)",
            |m| m.power.cell_uw * 1e-6,
            paper::table5::CELL_POWER,
        ),
        (
            "net power (W)",
            |m| m.power.net_uw() * 1e-6,
            paper::table5::NET_POWER,
        ),
        (
            "leakage (W)",
            |m| m.power.leakage_uw * 1e-6,
            paper::table5::LEAKAGE,
        ),
    ];
    let _ = writeln!(
        out,
        "footprint (mm2)    {:>10.2} | w/o fold {}  w/ fold {}",
        d2.chip.footprint_mm2(),
        fmt_delta(
            pct(d2.chip.footprint_um2, nf.chip.footprint_um2),
            paper::table5::FOOTPRINT[0]
        ),
        fmt_delta(
            pct(d2.chip.footprint_um2, fo.chip.footprint_um2),
            paper::table5::FOOTPRINT[1]
        ),
    );
    for (name, get, p) in rows {
        let b = get(&d2.chip);
        let _ = writeln!(
            out,
            "{name:<18} {b:>10.3} | w/o fold {}  w/ fold {}",
            fmt_delta(pct(b, get(&nf.chip)), p[0]),
            fmt_delta(pct(b, get(&fo.chip)), p[1]),
        );
    }
    let _ = writeln!(
        out,
        "HVT share          {:>9.1}% | {:>6.1}% | {:>6.1}%   (paper {:.1} / {:.1} / {:.1})",
        d2.chip.hvt_fraction() * 100.0,
        nf.chip.hvt_fraction() * 100.0,
        fo.chip.hvt_fraction() * 100.0,
        paper::table5::HVT_SHARE[0],
        paper::table5::HVT_SHARE[1],
        paper::table5::HVT_SHARE[2],
    );
    let _ = writeln!(
        out,
        "3D connections     {:>10} | {:>8} | {:>8}   (paper {} / {})",
        0,
        nf.chip.num_3d_connections,
        fo.chip.num_3d_connections,
        paper::table5::VIAS[0],
        paper::table5::VIAS[1],
    );
    let _ = writeln!(
        out,
        "DVT saving vs RVT: 2D {}  3D folded {}",
        fmt_delta(
            pct(d2_rvt.chip.power.total_uw(), d2.chip.power.total_uw()),
            paper::table5::DVT_VS_RVT[0]
        ),
        fmt_delta(
            pct(fo_rvt.chip.power.total_uw(), fo.chip.power.total_uw()),
            paper::table5::DVT_VS_RVT[1]
        ),
    );
    out.push_str(&fault_footer(&[&d2, &nf, &fo, &d2_rvt, &fo_rvt]));
    out
}

/// Fig. 2: folding the crossbar — natural split plus the TSV-count sweep.
pub fn fig2(ctx: &mut Ctx) -> String {
    let b2 = ctx.block_2d("ccx");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 2: folding CCX (PCX/CPX natural split, F2B) =="
    );
    let run = |strategy: FoldStrategy, bonding| {
        let mut d3 = ctx.design.clone();
        let id = d3.find_block("ccx").expect("ccx exists");
        let cfg = FoldConfig {
            strategy,
            aspect: FoldAspect::Square,
            bonding,
            ..FoldConfig::default()
        };
        fold_block(d3.block_mut(id), &ctx.tech, &cfg).expect("fold")
    };
    let nat = run(
        FoldStrategy::NaturalGroups(vec!["pcx".into()]),
        BondingStyle::FaceToBack,
    );
    let m = &nat.metrics;
    let _ = writeln!(
        out,
        "signal TSVs: {} (paper {})",
        m.num_3d_connections,
        paper::fig2::TSVS
    );
    let _ = writeln!(
        out,
        "footprint  {}",
        fmt_delta(
            pct(b2.footprint_um2, m.footprint_um2),
            paper::fig2::FOOTPRINT
        )
    );
    let _ = writeln!(
        out,
        "wirelength {}",
        fmt_delta(
            pct(b2.wirelength_um, m.wirelength_um),
            paper::fig2::WIRELENGTH
        )
    );
    let _ = writeln!(
        out,
        "# buffers  {}",
        fmt_delta(
            pct(b2.num_buffers as f64, m.num_buffers as f64),
            paper::fig2::BUFFERS
        )
    );
    let _ = writeln!(
        out,
        "power      {}",
        fmt_delta(
            pct(b2.power.total_uw(), m.power.total_uw()),
            paper::fig2::TOTAL_POWER
        )
    );
    let _ = writeln!(
        out,
        "\nTSV-count sweep (alternative partitions; paper: {} TSVs -> benefit shrinks to {:.1}%):",
        paper::fig2::SWEEP_TSVS,
        -paper::fig2::SWEEP_POWER
    );
    let _ = writeln!(
        out,
        "{:>8} {:>9} {:>12} {:>12}",
        "quality", "TSVs", "power vs 2D", "fp vs 2D"
    );
    // independent fold configurations: one engine job per sweep point
    let sweep = foldic_exec::par_map(ctx.threads, vec![1.0, 0.6, 0.3, 0.0], |_, q| {
        (q, run(FoldStrategy::Quality(q), BondingStyle::FaceToBack))
    });
    for (q, f) in sweep {
        let _ = writeln!(
            out,
            "{q:>8.1} {:>9} {:>+11.1}% {:>+11.1}%",
            f.metrics.num_3d_connections,
            pct(b2.power.total_uw(), f.metrics.power.total_uw()),
            pct(b2.footprint_um2, f.metrics.footprint_um2),
        );
    }
    out
}

/// Fig. 3: second-level folding of the SPARC core.
pub fn fig3(ctx: &mut Ctx) -> String {
    let b2 = ctx.block_2d("spc0");
    let run = |second: bool| {
        let mut d3 = ctx.design.clone();
        let id = d3.find_block("spc0").expect("spc0 exists");
        let cfg = FoldConfig {
            bonding: BondingStyle::FaceToFace,
            ..FoldConfig::default()
        };
        if second {
            fold_spc_second_level(d3.block_mut(id), &ctx.tech, &cfg).expect("fold spc")
        } else {
            fold_block(d3.block_mut(id), &ctx.tech, &cfg).expect("fold")
        }
    };
    let block3d = run(false);
    let second = run(true);
    let mut out = String::new();
    let _ = writeln!(out, "== Fig. 3: second-level folding of SPC (F2F) ==");
    let _ = writeln!(
        out,
        "folded FUBs: 6 of 14 (paper {} of 14); F2F vias: {} (paper {})",
        paper::fig3::FOLDED_FUBS,
        second.metrics.num_3d_connections,
        paper::fig3::F2F_VIAS
    );
    let m = &second.metrics;
    let b3 = &block3d.metrics;
    let _ = writeln!(
        out,
        "vs flat min-cut fold : WL {}  buffers {}  power {}",
        fmt_delta(
            pct(b3.wirelength_um, m.wirelength_um),
            paper::fig3::WIRELENGTH_VS_BLOCK3D
        ),
        fmt_delta(
            pct(b3.num_buffers as f64, m.num_buffers as f64),
            paper::fig3::BUFFERS_VS_BLOCK3D
        ),
        fmt_delta(
            pct(b3.power.total_uw(), m.power.total_uw()),
            paper::fig3::POWER_VS_BLOCK3D
        ),
    );
    let _ = writeln!(
        out,
        "vs 2D SPC            : power {}",
        fmt_delta(
            pct(b2.power.total_uw(), m.power.total_uw()),
            paper::fig3::POWER_VS_2D
        )
    );
    let _ = writeln!(
        out,
        "(note: the paper's baseline is the unfolded block-level 3D SPC; our flat\n min-cut fold is an additional — stronger — baseline, see EXPERIMENTS.md)"
    );
    out
}

/// Fig. 4–5: the F2F via placement flow on a folded block.
pub fn fig5(ctx: &mut Ctx) -> String {
    let mut d3 = ctx.design.clone();
    let id = d3.find_block("l2t0").expect("l2t0 exists");
    let cfg = FoldConfig {
        bonding: BondingStyle::FaceToFace,
        ..FoldConfig::default()
    };
    let f = fold_block(d3.block_mut(id), &ctx.tech, &cfg).expect("fold");
    let block = d3.block(id);
    let macros: Vec<foldic_geom::Rect> = block
        .netlist
        .insts()
        .filter(|(_, i)| i.master.is_macro())
        .map(|(_, i)| i.rect(&ctx.tech))
        .collect();
    let over_macros = f
        .vias
        .iter()
        .filter(|v| macros.iter().any(|m| m.contains(v.pos)))
        .count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 4/5: F2F via placement by 3D-net routing (folded L2T) =="
    );
    let _ = writeln!(out, "3D nets routed: {}", f.vias.len());
    let _ = writeln!(
        out,
        "mean via displacement from ideal: {:.2} um (F2F pitch {:.2} um)",
        f.vias.mean_displacement_um(),
        ctx.tech.f2f_via.pitch_um
    );
    let _ = writeln!(
        out,
        "vias over macros: {} ({:.1}% — F2F vias are not restricted by cells/macros)",
        over_macros,
        over_macros as f64 / f.vias.len().max(1) as f64 * 100.0
    );
    out
}

/// Fig. 6: bonding-style impact on folded placement (L2D and L2T).
pub fn fig6(ctx: &mut Ctx) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 6: bonding-style impact on folded footprint =="
    );
    let run = |name: &str, strategy: FoldStrategy, aspect: FoldAspect, bonding| {
        let mut d3 = ctx.design.clone();
        let id = d3.find_block(name).expect("block exists");
        let cfg = FoldConfig {
            strategy,
            aspect,
            bonding,
            ..FoldConfig::default()
        };
        let f = fold_block(d3.block_mut(id), &ctx.tech, &cfg).expect("fold");
        (d3.block(id).outline, f)
    };
    let blocks = [
        (
            "l2d0",
            FoldStrategy::MacroRows,
            FoldAspect::KeepWidth,
            paper::fig6::L2D_F2F_VS_F2B_FOOTPRINT,
        ),
        (
            "l2t0",
            FoldStrategy::MinCut,
            FoldAspect::Keep,
            paper::fig6::L2T_F2F_VS_F2B_FOOTPRINT,
        ),
    ];
    // 2 blocks x 2 bonding styles = 4 independent engine jobs
    let jobs: Vec<(&str, FoldStrategy, FoldAspect, BondingStyle)> = blocks
        .iter()
        .flat_map(|(name, strategy, aspect, _)| {
            [BondingStyle::FaceToBack, BondingStyle::FaceToFace]
                .map(|bonding| (*name, strategy.clone(), *aspect, bonding))
        })
        .collect();
    let mut results =
        foldic_exec::par_map(ctx.threads, jobs, |_, (name, strategy, aspect, bonding)| {
            run(name, strategy, aspect, bonding)
        })
        .into_iter();
    for (name, _, _, paper_fp) in blocks {
        let (o_f2b, f2b) = results.next().expect("one result per job");
        let (o_f2f, f2f) = results.next().expect("one result per job");
        let tsv_share = f2b.vias.silicon_area_um2(&ctx.tech) / o_f2b.area() * 100.0;
        let _ = writeln!(
            out,
            "{name}: F2B die {:.0}x{:.0}um ({} TSVs, {:.1}% TSV area; paper ~{:.0}%)",
            o_f2b.width(),
            o_f2b.height(),
            f2b.vias.len(),
            tsv_share,
            paper::fig6::TSV_AREA_SHARE
        );
        let _ = writeln!(
            out,
            "{name}: F2F die {:.0}x{:.0}um; footprint F2F vs F2B {}",
            o_f2f.width(),
            o_f2f.height(),
            fmt_delta(pct(o_f2b.area(), o_f2f.area()), paper_fp)
        );
        if name == "l2t0" {
            let _ = writeln!(
                out,
                "l2t0: F2F vs F2B same partition: WL {}  buffers {}  power {}",
                fmt_delta(
                    pct(f2b.metrics.wirelength_um, f2f.metrics.wirelength_um),
                    paper::fig6::L2T_F2F_VS_F2B_WIRELENGTH
                ),
                fmt_delta(
                    pct(
                        f2b.metrics.num_buffers as f64,
                        f2f.metrics.num_buffers as f64
                    ),
                    paper::fig6::L2T_F2F_VS_F2B_BUFFERS
                ),
                fmt_delta(
                    pct(f2b.metrics.power.total_uw(), f2f.metrics.power.total_uw()),
                    paper::fig6::L2T_F2F_VS_F2B_POWER
                ),
            );
        }
    }
    out
}

/// Fig. 7: partition sweep of the folded L2T under both bonding styles.
pub fn fig7(ctx: &mut Ctx) -> String {
    let b2 = ctx.block_2d("l2t0");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 7: partition sweep, folded L2T, power normalized to 2D =="
    );
    let _ = writeln!(
        out,
        "{:>5} {:>9} {:>10} {:>10} {:>12}",
        "case", "3D conns", "F2B", "F2F", "F2F vs F2B"
    );
    let qualities = [1.0, 0.75, 0.5, 0.25, 0.0];
    // 5 partition qualities x 2 bonding styles = 10 independent engine jobs
    let jobs: Vec<(f64, BondingStyle)> = qualities
        .iter()
        .flat_map(|&q| {
            [BondingStyle::FaceToBack, BondingStyle::FaceToFace].map(|bonding| (q, bonding))
        })
        .collect();
    let folds = foldic_exec::par_map(ctx.threads, jobs, |_, (q, bonding)| {
        let mut d3 = ctx.design.clone();
        let id = d3.find_block("l2t0").expect("l2t0 exists");
        let cfg = FoldConfig {
            strategy: FoldStrategy::Quality(q),
            bonding,
            ..FoldConfig::default()
        };
        let f = fold_block(d3.block_mut(id), &ctx.tech, &cfg).expect("fold");
        (
            f.metrics.power.total_uw() / b2.power.total_uw(),
            f.metrics.num_3d_connections,
        )
    });
    let mut last_gap = 0.0;
    for (k, _) in qualities.iter().enumerate() {
        let norm = [folds[2 * k].0, folds[2 * k + 1].0];
        let vias = [folds[2 * k].1, folds[2 * k + 1].1];
        last_gap = (norm[1] / norm[0] - 1.0) * 100.0;
        let _ = writeln!(
            out,
            "#{:<4} {:>9} {:>10.3} {:>10.3} {:>+11.1}%   (paper case #{} = {} conns)",
            k + 1,
            vias[1],
            norm[0],
            norm[1],
            last_gap,
            k + 1,
            paper::fig7::CASE_VIAS[k]
        );
    }
    let _ = writeln!(
        out,
        "case #5 F2F vs F2B: {:+.1}% (paper {:+.1}%)",
        last_gap,
        paper::fig7::CASE5_F2F_VS_F2B
    );
    out
}

/// Fig. 8: the five full-chip styles.
pub fn fig8(ctx: &mut Ctx) -> String {
    ctx.warm(&DesignStyle::ALL.map(|s| (s, false)));
    let mut out = String::new();
    let _ = writeln!(out, "== Fig. 8: full-chip design styles ==");
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>9} {:>11} {:>12} {:>9}",
        "style", "die mm2", "(paper)", "3D conns", "(paper)", "interWL m"
    );
    for (k, style) in DesignStyle::ALL.into_iter().enumerate() {
        let r = ctx.fullchip(style, false).clone();
        let _ = writeln!(
            out,
            "{:<18} {:>8.1} {:>9.1} {:>11} {:>12} {:>9.2}",
            style.label(),
            r.chip.footprint_mm2(),
            paper::fig8::FOOTPRINT_MM2[k],
            r.chip.num_3d_connections,
            paper::fig8::VIAS[k],
            r.interblock_wl_um * 1e-6,
        );
    }
    let runs: Vec<&FullChipResult> = DesignStyle::ALL
        .iter()
        .map(|s| ctx.cached(*s, false))
        .collect();
    out.push_str(&fault_footer(&runs));
    out
}

/// Thermal study (the paper's stated future work, §7): maximum junction
/// temperature of the chip styles at their own measured powers.
pub fn thermal(ctx: &mut Ctx) -> String {
    use foldic_thermal::{chip_power_maps, solve_stack, StackConfig};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Thermal (future work, §7): steady-state stack temperatures =="
    );
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "style", "power W", "Tmax C", "Tavg C", "rise K", "hot tier"
    );
    ctx.warm(&DesignStyle::ALL.map(|s| (s, false)));
    // one engine job per style: each rebuilds its floorplan and solves
    // its own thermal stack
    let shared: &Ctx = ctx;
    let rows = foldic_exec::par_map(shared.threads, DesignStyle::ALL.to_vec(), |_, style| {
        let r = shared.cached(style, false);
        let per_block: Vec<(String, foldic_netlist::BlockKind, f64)> = r
            .per_block
            .iter()
            .map(|(n, k, m)| (n.clone(), *k, m.power.total_uw()))
            .collect();
        // rebuild the floorplanned design to extract block rects
        let mut d = shared.design.clone();
        let _ =
            run_fullchip(&mut d, &shared.tech, style, &FullChipConfig::fast()).expect("fullchip");
        let tiers = if style.is_3d() { 2 } else { 1 };
        let maps = chip_power_maps(&d, &shared.tech, r.die, &per_block, tiers, 48);
        let stack_cfg = match (style.is_3d(), style.bonding()) {
            (false, _) => StackConfig::single_die(),
            (true, BondingStyle::FaceToBack) => StackConfig::f2b(),
            (true, BondingStyle::FaceToFace) => StackConfig::f2f(),
        };
        let rep = solve_stack(&maps, &stack_cfg);
        format!(
            "{:<18} {:>9.2} {:>9.1} {:>9.1} {:>10.1} {:>12}",
            style.label(),
            r.chip.power.total_w(),
            rep.max_c,
            rep.avg_c,
            rep.max_rise_k(),
            if style.is_3d() {
                if rep.hotspot.0 == 0 {
                    "bottom"
                } else {
                    "top"
                }
            } else {
                "-"
            },
        )
    });
    for row in rows {
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(
        out,
        "shape: 3D runs hotter than 2D at lower total power (density), and the
         F2F stack runs hottest (two BEOL stacks in the inter-die heat path) —
         the thermal cost of the bonding style that wins on power."
    );
    out
}

/// Ablations: turns off the design choices DESIGN.md calls out, one at a
/// time, and measures what each is worth on the folded L2T (F2B — the
/// style that stresses every mechanism).
pub fn ablations(ctx: &mut Ctx) -> String {
    use foldic::folding::{fold_with_partition, recluster_clock_leaves};
    use foldic_partition::{apply_partition, bipartition, PartitionConfig};
    use foldic_place::{place_folded, PlacerConfig};
    use foldic_route::{place_vias, BlockWiring};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Ablations: what each design choice is worth (folded L2T, F2B) =="
    );

    // Baseline fold.
    let base = {
        let mut d = ctx.design.clone();
        let id = d.find_block("l2t0").expect("l2t0");
        let cfg = FoldConfig {
            bonding: BondingStyle::FaceToBack,
            ..FoldConfig::default()
        };
        fold_block(d.block_mut(id), &ctx.tech, &cfg).expect("fold")
    };
    let _ = writeln!(
        out,
        "baseline fold      : wl {:>8.3} m  power {:>8.1} mW  vias {}",
        base.metrics.wirelength_m(),
        base.metrics.power.total_uw() * 1e-3,
        base.metrics.num_3d_connections
    );

    // sections (a)-(f) are independent studies: one engine job each,
    // results appended in the fixed section order
    let shared: &Ctx = ctx;
    let base = &base;
    type Section<'a> = Box<dyn FnOnce() -> String + Send + 'a>;

    // (a) no clock-leaf re-clustering: leaf buffers keep their pre-fold
    // flop assignments (α = 1 clock nets sprawl across both dies).
    let section_a: Section = Box::new(move || {
        let ctx = shared;
        let mut d = ctx.design.clone();
        let id = d.find_block("l2t0").expect("l2t0");
        let block = d.block_mut(id);
        let part = bipartition(&block.netlist, &ctx.tech, &PartitionConfig::default());
        apply_partition(&mut block.netlist, &part);
        block.folded = true;
        // replicate the fold flow minus the CTS re-clustering, on the
        // baseline's outline
        let outline = foldic_geom::Rect::new(
            0.0,
            0.0,
            base.metrics.footprint_um2.sqrt(),
            base.metrics.footprint_um2.sqrt(),
        );
        block.outline = outline;
        place_folded(
            &mut block.netlist,
            &ctx.tech,
            outline,
            &PlacerConfig::quality(),
            &[],
        )
        .expect("place");
        let vias =
            place_vias(&block.netlist, &ctx.tech, outline, BondingStyle::FaceToBack).expect("vias");
        let wiring =
            BlockWiring::analyze(&block.netlist, &ctx.tech, 1.1, Some(&vias)).expect("route");
        let clock_wl: f64 = block
            .netlist
            .nets()
            .filter(|(_, n)| n.is_clock)
            .map(|(nid, _)| wiring.net(nid).length_um)
            .sum();
        recluster_clock_leaves(&mut block.netlist);
        let wiring2 =
            BlockWiring::analyze(&block.netlist, &ctx.tech, 1.1, Some(&vias)).expect("route");
        let clock_wl2: f64 = block
            .netlist
            .nets()
            .filter(|(_, n)| n.is_clock)
            .map(|(nid, _)| wiring2.net(nid).length_um)
            .sum();
        format!(
            "no CTS recluster   : clock wl {:.3} m -> {:.3} m with reclustering ({:+.1}%)\n",
            clock_wl * 1e-6,
            clock_wl2 * 1e-6,
            (clock_wl2 / clock_wl.max(1.0) - 1.0) * 100.0
        )
    });

    // (b) fold without the TSV area/keep-out model (pretend TSVs are free
    // silicon like F2F vias): isolates the Fig. 6 cost.
    let section_b: Section = Box::new(move || {
        let ctx = shared;
        let mut d = ctx.design.clone();
        let id = d.find_block("l2t0").expect("l2t0");
        let block = d.block_mut(id);
        let part = bipartition(&block.netlist, &ctx.tech, &PartitionConfig::default());
        let folded = fold_with_partition(
            block,
            &ctx.tech,
            &TimingBudgets::relaxed(&block.netlist, &ctx.tech),
            &FoldConfig {
                bonding: BondingStyle::FaceToFace, // free vias
                ..FoldConfig::default()
            },
            part,
        )
        .expect("fold");
        format!(
            "TSV cost removed   : wl {:>8.3} m  power {:>8.1} mW   (the F2B-vs-F2F gap is the TSV area+displacement cost)\n",
            folded.metrics.wirelength_m(),
            folded.metrics.power.total_uw() * 1e-3
        )
    });

    // (c) partition quality: min-cut vs random balanced (what FM is worth).
    let section_c: Section = Box::new(move || {
        let ctx = shared;
        let cut_of = |q: f64| {
            let mut d = ctx.design.clone();
            let id = d.find_block("l2t0").expect("l2t0");
            let cfg = FoldConfig {
                strategy: FoldStrategy::Quality(q),
                bonding: BondingStyle::FaceToBack,
                ..FoldConfig::default()
            };
            let f = fold_block(d.block_mut(id), &ctx.tech, &cfg).expect("fold");
            (f.metrics.num_3d_connections, f.metrics.power.total_uw())
        };
        let (v1, p1) = cut_of(1.0);
        let (v0, p0) = cut_of(0.0);
        format!(
            "FM vs random part. : {} vs {} vias; power {:+.1}% if partitioning is random\n",
            v1,
            v0,
            (p0 / p1 - 1.0) * 100.0
        )
    });

    // (d) TSV-to-wire coupling parasitic (§7 future work): re-price the
    // folded F2B block's net power with the coupling capacitance on.
    let section_d: Section = Box::new(move || {
        let ctx = shared;
        let mut d = ctx.design.clone();
        let id = d.find_block("l2t0").expect("l2t0");
        let block = d.block_mut(id);
        let fold_cfg = FoldConfig {
            bonding: BondingStyle::FaceToBack,
            ..FoldConfig::default()
        };
        let folded = fold_block(block, &ctx.tech, &fold_cfg).expect("fold");
        let wiring = BlockWiring::analyze(&block.netlist, &ctx.tech, 1.1, Some(&folded.vias))
            .expect("route");
        let mut pcfg = foldic_power::PowerConfig::for_block(block);
        pcfg.via_kind = Some(foldic_tech::Via3dKind::Tsv);
        let without =
            foldic_power::analyze_block(&block.netlist, &ctx.tech, &wiring, &pcfg).expect("power");
        pcfg.tsv_coupling = true;
        let with =
            foldic_power::analyze_block(&block.netlist, &ctx.tech, &wiring, &pcfg).expect("power");
        format!(
            "TSV-wire coupling  : net power {:+.2}% when the coupling parasitic is priced in ({:.1} fF/TSV)\n",
            (with.net_uw() / without.net_uw() - 1.0) * 100.0,
            ctx.tech.tsv.coupling_cap_ff()
        )
    });

    // (e) macro holes vs demand inflation (§4.2): place the macro-heavy
    // L2D both ways and compare wirelength.
    let section_e: Section = Box::new(move || {
        use foldic_place::{place_block, MacroMode};
        let ctx = shared;
        let run = |mode| {
            let mut d = ctx.design.clone();
            let id = d.find_block("l2d0").expect("l2d0");
            let outline = d.block(id).outline;
            let nl = &mut d.block_mut(id).netlist;
            let mut pcfg = PlacerConfig::quality();
            pcfg.macro_mode = mode;
            place_block(nl, &ctx.tech, outline, &pcfg).expect("place");
            BlockWiring::analyze(nl, &ctx.tech, 1.1, None)
                .expect("route")
                .total_um
        };
        let hole = run(MacroMode::Hole);
        let halo = run(MacroMode::DemandInflation);
        format!(
            "macro holes (4.2)  : wl {:.3} m with holes vs {:.3} m with halo-style demand inflation ({:+.1}%)\n",
            hole * 1e-6,
            halo * 1e-6,
            (halo / hole - 1.0) * 100.0
        )
    });

    // (f) CCX natural split vs blind min-cut (is domain structure worth
    // anything beyond FM?).
    let section_f: Section = Box::new(move || {
        let ctx = shared;
        let run = |strategy| {
            let mut d = ctx.design.clone();
            let id = d.find_block("ccx").expect("ccx");
            let cfg = FoldConfig {
                strategy,
                aspect: FoldAspect::Square,
                bonding: BondingStyle::FaceToBack,
                ..FoldConfig::default()
            };
            fold_block(d.block_mut(id), &ctx.tech, &cfg).expect("fold")
        };
        let nat = run(FoldStrategy::NaturalGroups(vec!["pcx".into()]));
        let fm = run(FoldStrategy::MinCut);
        format!(
            "CCX natural vs FM  : {} vs {} vias; power {:.1} vs {:.1} mW\n",
            nat.metrics.num_3d_connections,
            fm.metrics.num_3d_connections,
            nat.metrics.power.total_uw() * 1e-3,
            fm.metrics.power.total_uw() * 1e-3
        )
    });

    let sections: Vec<Section> = vec![
        section_a, section_b, section_c, section_d, section_e, section_f,
    ];
    for part in foldic_exec::par_map(shared.threads, sections, |_, section| section()) {
        out.push_str(&part);
    }
    out
}

/// Writes the Fig. 8 / Fig. 2-style SVG layout shots into `dir`.
pub fn layouts(ctx: &mut Ctx, dir: &std::path::Path) -> String {
    use foldic::{render_block_svg, render_chip_svg};
    let mut out = String::new();
    let _ = writeln!(out, "== Layout shots (SVG) ==");
    std::fs::create_dir_all(dir).expect("create layout dir");
    // one engine job per style shot; files are written serially after
    let shared: &Ctx = ctx;
    let shots = foldic_exec::par_map(
        shared.threads,
        vec![
            (DesignStyle::Flat2d, "fig8a_2d.svg"),
            (DesignStyle::CoreCache, "fig8b_core_cache.svg"),
            (DesignStyle::CoreCore, "fig8c_core_core.svg"),
            (DesignStyle::FoldedF2b, "fig8d_folded_f2b.svg"),
            (DesignStyle::FoldedF2f, "fig8e_folded_f2f.svg"),
        ],
        |_, (style, fname)| {
            let mut d = shared.design.clone();
            let r = run_fullchip(&mut d, &shared.tech, style, &FullChipConfig::fast())
                .expect("fullchip");
            (fname, render_chip_svg(&d, r.die, 900.0 / r.die.width()))
        },
    );
    for (fname, svg) in shots {
        let path = dir.join(fname);
        std::fs::write(&path, svg).expect("write svg");
        let _ = writeln!(out, "wrote {}", path.display());
    }
    // folded CCX block shot (Fig. 2b)
    {
        let mut d = ctx.design.clone();
        let id = d.find_block("ccx").expect("ccx");
        let folded = fold_block(
            d.block_mut(id),
            &ctx.tech,
            &FoldConfig {
                strategy: FoldStrategy::NaturalGroups(vec!["pcx".into()]),
                aspect: FoldAspect::Square,
                bonding: BondingStyle::FaceToBack,
                ..FoldConfig::default()
            },
        )
        .expect("fold");
        let svg = render_block_svg(d.block(id), &ctx.tech, Some(&folded.vias), 0.6);
        let path = dir.join("fig2b_ccx_folded.svg");
        std::fs::write(&path, svg).expect("write svg");
        let _ = writeln!(out, "wrote {}", path.display());
    }
    out
}

/// Runs the 2D block flow and a fold for one block (shared by examples
/// and ablation benches): returns `(2D metrics, folded result)`.
pub fn fold_pair(ctx: &Ctx, name: &str, cfg: &FoldConfig) -> (DesignMetrics, FoldedBlock) {
    let b2 = {
        let mut d = ctx.design.clone();
        let id = d.find_block(name).expect("known block");
        let b = d.block_mut(id);
        let budgets = TimingBudgets::relaxed(&b.netlist, &ctx.tech);
        foldic::flow::run_block_flow(b, &ctx.tech, &budgets, &FlowConfig::default())
            .expect("2D flow")
            .metrics
    };
    let mut d = ctx.design.clone();
    let id = d.find_block(name).expect("known block");
    let folded = fold_block(d.block_mut(id), &ctx.tech, cfg).expect("fold");
    (b2, folded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Ctx {
        Ctx::new(T2Config::tiny())
    }

    #[test]
    fn table1_reports_models() {
        let c = ctx();
        let s = table1(&c.tech);
        assert!(s.contains("TSV"));
        assert!(s.contains("F2F via"));
    }

    #[test]
    fn fig2_runs_on_tiny() {
        let mut c = ctx();
        let s = fig2(&mut c);
        assert!(s.contains("signal TSVs"));
        assert!(s.contains("TSV-count sweep"));
    }

    #[test]
    fn table4_runs_on_tiny() {
        let mut c = ctx();
        let s = table4(&mut c);
        assert!(s.contains("footprint"));
    }
}
