//! Adversarial property tests for the telemetry text formats added for
//! serving: the Prometheus-style exposition (`expo`) and the structured
//! JSONL log line (`log`).
//!
//! Properties, each checked over seeded iterations:
//!
//! 1. **Exposition parse never panics** on arbitrary input — byte soup
//!    biased toward exposition syntax, and mutations of well-formed
//!    bodies. `/metrics` scrapes cross a process boundary (CI smoke,
//!    loadgen cross-checks), so the parser must degrade to `Err`.
//! 2. **Exposition round-trips**: for any registry contents the
//!    renderer can produce, `parse_exposition(to_prometheus(snapshot))`
//!    succeeds, recovers every counter and gauge exactly, and yields
//!    self-consistent histogram series (monotone cumulative buckets,
//!    `+Inf` bucket == `_count`). Filtering with a keep-all predicate
//!    is a no-op at the sample level.
//! 3. **Log lines round-trip**: `parse_line(format_line(...))` returns
//!    the original level, event and fields, and parse never panics on
//!    mutated lines.
//!
//! The iteration stream is deterministic: seeded from `FOLDIC_FUZZ_SEED`
//! (decimal u64) when set, a fixed default otherwise, so CI failures
//! reproduce locally by exporting the same seed.

use std::collections::BTreeMap;

use foldic_obs::expo::{family_of, filter_exposition, parse_exposition, to_prometheus};
use foldic_obs::json::Json;
use foldic_obs::log::{format_line, parse_line, Level};
use foldic_obs::metrics::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SOUP_ITERS: usize = 10_000;
const ROUND_TRIP_ITERS: usize = 2_000;

fn fuzz_seed() -> u64 {
    std::env::var("FOLDIC_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDAC1_4F00D)
}

/// Random byte soup biased toward exposition syntax so the parser gets
/// past the metric-name check often enough to reach labels and values.
fn random_exposition_input(rng: &mut StdRng) -> String {
    const STRUCTURAL: &[u8] = br##"{}="\,# TYPEabz_:0123456789.+-eInfNa "##;
    let lines = rng.gen_range(0..6usize);
    let mut out = String::new();
    for _ in 0..lines {
        let len = rng.gen_range(0..48usize);
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    STRUCTURAL[rng.gen_range(0..STRUCTURAL.len())]
                } else {
                    (rng.gen::<u64>() & 0xff) as u8
                }
            })
            .collect();
        out.push_str(&String::from_utf8_lossy(&bytes));
        out.push('\n');
    }
    out
}

/// A well-formed series string: family from a disjoint per-kind pool
/// (so families never collide across metric kinds) plus an optional
/// label block.
fn random_series(rng: &mut StdRng, kind: char, idx: usize) -> String {
    let family = format!("{kind}{idx}_metric");
    match rng.gen_range(0..3u32) {
        0 => family,
        1 => format!("{family}{{endpoint=\"e{}\"}}", rng.gen_range(0..4u32)),
        _ => format!(
            "{family}{{method=\"m{}\",status=\"{}\"}}",
            rng.gen_range(0..3u32),
            200 + rng.gen_range(0..5u32)
        ),
    }
}

/// Finite gauge values spanning the integer fast path, shortest-float
/// formatting, and signed extremes. NaN is excluded: it renders and
/// parses, but `NaN != NaN` would fail the equality check trivially.
fn random_gauge(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..5u32) {
        0 => f64::from(rng.gen_range(-1_000_000..1_000_000i32)),
        1 => rng.gen::<f64>() * 1e300,
        2 => rng.gen::<f64>() * 1e-300,
        3 => -rng.gen::<f64>(),
        _ => {
            if rng.gen() {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            }
        }
    }
}

#[test]
fn exposition_parse_never_panics_on_random_bytes() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed());
    for i in 0..SOUP_ITERS {
        let input = random_exposition_input(&mut rng);
        let result = std::panic::catch_unwind(|| parse_exposition(&input).is_ok());
        assert!(
            result.is_ok(),
            "parse_exposition panicked on iteration {i} (seed {}): {input:?}",
            fuzz_seed()
        );
    }
}

#[test]
fn exposition_parse_never_panics_on_mutated_bodies() {
    // Mutations of a rendered body get much deeper than soup: most
    // inputs carry valid names, label blocks and values before the
    // flipped byte derails them.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x6578_706F);
    for i in 0..ROUND_TRIP_ITERS {
        let registry = random_registry(&mut rng);
        let mut text = to_prometheus(&registry.snapshot()).into_bytes();
        if !text.is_empty() {
            for _ in 0..rng.gen_range(1..5usize) {
                let pos = rng.gen_range(0..text.len());
                match rng.gen_range(0..3u32) {
                    0 => text[pos] = (rng.gen::<u64>() & 0xff) as u8,
                    1 => {
                        text.remove(pos);
                    }
                    _ => text.insert(pos, b"{}=\"\n# x"[rng.gen_range(0..8usize)]),
                }
                if text.is_empty() {
                    break;
                }
            }
        }
        let input = String::from_utf8_lossy(&text).into_owned();
        let result = std::panic::catch_unwind(|| parse_exposition(&input).is_ok());
        assert!(
            result.is_ok(),
            "parse_exposition panicked on mutated body, iteration {i} (seed {}): {input:?}",
            fuzz_seed()
        );
    }
}

/// Builds a registry with random counters, gauges and histograms, and
/// returns it alongside the exact expected counter/gauge samples.
fn random_registry(rng: &mut StdRng) -> Registry {
    let registry = Registry::new();
    registry.set_enabled(true);
    for i in 0..rng.gen_range(0..4usize) {
        // cap below 2^53 so the u64 survives the f64 sample space
        registry.add(
            &random_series(rng, 'c', i),
            rng.gen::<u64>() & ((1 << 53) - 1),
        );
    }
    for i in 0..rng.gen_range(0..4usize) {
        registry.set_gauge(&random_series(rng, 'g', i), random_gauge(rng));
    }
    for i in 0..rng.gen_range(0..3usize) {
        let series = random_series(rng, 'h', i);
        for _ in 0..rng.gen_range(1..12usize) {
            registry.observe(&series, rng.gen::<f64>() * 1e4);
        }
    }
    registry
}

#[test]
fn exposition_round_trips_counters_gauges_and_histograms() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x726F_756E64);
    for i in 0..ROUND_TRIP_ITERS {
        let registry = random_registry(&mut rng);
        let snapshot = registry.snapshot();
        let text = to_prometheus(&snapshot);
        let samples = match parse_exposition(&text) {
            Ok(s) => s,
            Err(e) => panic!(
                "renderer output rejected on iteration {i} (seed {}): {e}\n{text}",
                fuzz_seed()
            ),
        };
        // Every scalar metric comes back exactly; histograms come back
        // as a self-consistent bucket/sum/count family.
        for (key, metric) in &snapshot.metrics {
            match metric {
                foldic_obs::metrics::Metric::Counter(c) => {
                    assert_eq!(
                        samples.get(key),
                        Some(&(*c as f64)),
                        "counter {key}\n{text}"
                    );
                }
                foldic_obs::metrics::Metric::Gauge(g) => {
                    assert_eq!(samples.get(key), Some(g), "gauge {key}\n{text}");
                }
                foldic_obs::metrics::Metric::Histogram(h) => {
                    let family = family_of(key);
                    let mut bucket_counts: Vec<f64> = samples
                        .iter()
                        .filter(|(series, _)| {
                            family_of(series) == family && series.contains("_bucket")
                        })
                        .map(|(_, &v)| v)
                        .collect();
                    bucket_counts.sort_by(f64::total_cmp);
                    assert!(
                        bucket_counts.windows(2).all(|w| w[0] <= w[1]),
                        "buckets of {key} not cumulative\n{text}"
                    );
                    assert_eq!(
                        bucket_counts.last().copied(),
                        Some(h.count as f64),
                        "+Inf bucket of {key} != count\n{text}"
                    );
                    let count_series = samples
                        .iter()
                        .find(|(series, _)| {
                            family_of(series) == family && series.contains("_count")
                        })
                        .map(|(_, &v)| v);
                    assert_eq!(count_series, Some(h.count as f64), "{key} _count\n{text}");
                }
            }
        }
        // keep-all filtering preserves every sample
        let filtered = filter_exposition(&text, &|_| true);
        assert_eq!(
            parse_exposition(&filtered).expect("filtered body must parse"),
            samples,
            "keep-all filter changed the sample set on iteration {i} (seed {})",
            fuzz_seed()
        );
    }
}

fn random_log_fields(rng: &mut StdRng) -> BTreeMap<String, Json> {
    let mut fields = BTreeMap::new();
    for _ in 0..rng.gen_range(0..6usize) {
        let key: String = (0..rng.gen_range(1..10usize))
            .map(|_| {
                const POOL: &[char] = &['a', 'b', '_', '0', '9', 'z', 'µ', '縦', '"', '\\', '\n'];
                POOL[rng.gen_range(0..POOL.len())]
            })
            .collect();
        // reserved keys are overwritten by format_line, so they cannot
        // round-trip as caller fields
        if key == "level" || key == "event" {
            continue;
        }
        let value = match rng.gen_range(0..4u32) {
            0 => Json::Null,
            1 => Json::Bool(rng.gen()),
            2 => Json::Num(f64::from(rng.gen_range(-1_000_000..1_000_000i32))),
            _ => Json::Str(format!("v{}", rng.gen_range(0..1_000u32))),
        };
        fields.insert(key, value);
    }
    fields
}

#[test]
fn log_lines_round_trip() {
    const LEVELS: &[Level] = &[Level::Debug, Level::Info, Level::Warn, Level::Error];
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x6C6F_6721);
    for i in 0..ROUND_TRIP_ITERS {
        let level = LEVELS[rng.gen_range(0..LEVELS.len())];
        let event = format!("event.{}", rng.gen_range(0..1_000u32));
        let fields = random_log_fields(&mut rng);
        let line = format_line(level, &event, fields.clone());
        assert!(!line.contains('\n'), "log line must be one line: {line:?}");
        let (back_level, back_event, back_fields) = parse_line(&line)
            .unwrap_or_else(|e| panic!("own line rejected on iteration {i}: {e}\n{line}"));
        assert_eq!(back_level, level, "{line}");
        assert_eq!(back_event, event, "{line}");
        assert_eq!(back_fields, fields, "{line}");
    }
}

#[test]
fn log_parse_never_panics_on_mutated_lines() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x6C6F_676D);
    for i in 0..SOUP_ITERS {
        let fields = random_log_fields(&mut rng);
        let mut text = format_line(Level::Info, "fuzz", fields).into_bytes();
        for _ in 0..rng.gen_range(1..4usize) {
            if text.is_empty() {
                break;
            }
            let pos = rng.gen_range(0..text.len());
            match rng.gen_range(0..3u32) {
                0 => text[pos] = (rng.gen::<u64>() & 0xff) as u8,
                1 => {
                    text.remove(pos);
                }
                _ => text.insert(pos, b"{}[],:\"\\"[rng.gen_range(0..8usize)]),
            }
        }
        let input = String::from_utf8_lossy(&text).into_owned();
        let result = std::panic::catch_unwind(|| parse_line(&input).is_ok());
        assert!(
            result.is_ok(),
            "parse_line panicked on iteration {i} (seed {}): {input:?}",
            fuzz_seed()
        );
    }
}
