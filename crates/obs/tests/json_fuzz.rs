//! Adversarial property tests for the hand-rolled JSON parser.
//!
//! Two properties, each checked over 10 000 seeded iterations:
//!
//! 1. **Never panics**: `Json::parse` returns `Ok` or `Err` on arbitrary
//!    input — random bytes, mutated valid documents, pathological nesting —
//!    but never unwinds. The parser feeds on manifests and checkpoints
//!    that may be truncated or corrupted on disk, so a panic here would
//!    take down a resume instead of degrading it.
//! 2. **Round-trips**: for any value the writer can produce,
//!    `parse(serialize(v)) == v` in both compact and pretty form.
//!
//! The iteration stream is deterministic: seeded from `FOLDIC_FUZZ_SEED`
//! (decimal u64) when set, a fixed default otherwise, so CI failures
//! reproduce locally by exporting the same seed.

use std::collections::BTreeMap;

use foldic_obs::json::{Json, MAX_PARSE_DEPTH};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITERS: usize = 10_000;

fn fuzz_seed() -> u64 {
    std::env::var("FOLDIC_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDAC1_4F00D)
}

/// Random byte soup, biased toward JSON structural characters so the
/// parser gets past the first byte often enough to exercise deep paths.
fn random_input(rng: &mut StdRng) -> String {
    const STRUCTURAL: &[u8] = br#"{}[]",:.-+eE0123456789truefalsn\ "#;
    let len = rng.gen_range(0..256usize);
    let bytes: Vec<u8> = (0..len)
        .map(|_| {
            if rng.gen_bool(0.7) {
                STRUCTURAL[rng.gen_range(0..STRUCTURAL.len())]
            } else {
                (rng.gen::<u64>() & 0xff) as u8
            }
        })
        .collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Random JSON value with container depth at most `depth` — everything
/// the deterministic writer can emit, including the characters it must
/// escape and keys that collide.
fn random_value(rng: &mut StdRng, depth: usize) -> Json {
    let top = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0..top as u32) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen()),
        2 => {
            // finite floats only: the writer turns NaN/Inf into `null`,
            // which deliberately does not round-trip as a number
            let v = match rng.gen_range(0..4u32) {
                0 => f64::from(rng.gen_range(-1_000_000..1_000_000i32)),
                1 => rng.gen::<f64>() * 1e300,
                2 => rng.gen::<f64>() * 1e-300,
                _ => -rng.gen::<f64>(),
            };
            Json::Num(v)
        }
        3 => Json::Str(random_string(rng)),
        4 => {
            let n = rng.gen_range(0..5usize);
            Json::Arr((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..5usize);
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(random_string(rng), random_value(rng, depth - 1));
            }
            Json::Obj(map)
        }
    }
}

fn random_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..24usize);
    (0..len)
        .map(|_| {
            // cover the escape table, raw control chars and multi-byte UTF-8
            const POOL: &[char] = &[
                'a', 'b', 'z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}',
                '\u{1}', '\u{1f}', 'µ', '縦', '🦀', '\u{fffd}',
            ];
            POOL[rng.gen_range(0..POOL.len())]
        })
        .collect()
}

#[test]
fn parse_never_panics_on_random_bytes() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed());
    for i in 0..ITERS {
        let input = random_input(&mut rng);
        let result = std::panic::catch_unwind(|| Json::parse(&input).is_ok());
        assert!(
            result.is_ok(),
            "parse panicked on iteration {i} (seed {}): {input:?}",
            fuzz_seed()
        );
    }
}

#[test]
fn parse_never_panics_on_mutated_documents() {
    // Mutations of a valid document get much deeper into the parser than
    // byte soup: most inputs reach strings, numbers and nested containers
    // before the flipped byte derails them.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x6D75_7461);
    for i in 0..ITERS {
        let doc = random_value(&mut rng, 3);
        let mut text = if rng.gen() {
            doc.to_compact()
        } else {
            doc.to_pretty()
        }
        .into_bytes();
        if !text.is_empty() {
            for _ in 0..rng.gen_range(1..4usize) {
                let pos = rng.gen_range(0..text.len());
                match rng.gen_range(0..3u32) {
                    0 => text[pos] = (rng.gen::<u64>() & 0xff) as u8,
                    1 => {
                        text.remove(pos);
                    }
                    _ => text.insert(pos, b"{}[],:\"\\"[rng.gen_range(0..8usize)]),
                }
                if text.is_empty() {
                    break;
                }
            }
        }
        let input = String::from_utf8_lossy(&text).into_owned();
        let result = std::panic::catch_unwind(|| Json::parse(&input).is_ok());
        assert!(
            result.is_ok(),
            "parse panicked on mutated doc, iteration {i} (seed {}): {input:?}",
            fuzz_seed()
        );
    }
}

#[test]
fn serialize_parse_round_trips() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x726F_756E64);
    for i in 0..ITERS {
        let doc = random_value(&mut rng, 3);
        for text in [doc.to_compact(), doc.to_pretty()] {
            match Json::parse(&text) {
                Ok(back) => assert_eq!(
                    back,
                    doc,
                    "round-trip mismatch on iteration {i} (seed {}): {text}",
                    fuzz_seed()
                ),
                Err(e) => panic!(
                    "writer output rejected on iteration {i} (seed {}): {e}\n{text}",
                    fuzz_seed()
                ),
            }
        }
    }
}

#[test]
fn nesting_bombs_error_at_every_depth_past_the_limit() {
    // Sweep random depths across the boundary: at or under the limit the
    // document parses, past it the parser reports nesting instead of
    // overflowing the recursion stack.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x6465_6570);
    for _ in 0..200 {
        let depth = rng.gen_range(1..4 * MAX_PARSE_DEPTH);
        let (open, close) = if rng.gen() {
            ("[", "]")
        } else {
            ("{\"k\":", "}")
        };
        let doc = format!("{}0{}", open.repeat(depth), close.repeat(depth));
        let parsed = Json::parse(&doc);
        if depth <= MAX_PARSE_DEPTH {
            assert!(parsed.is_ok(), "depth {depth} should parse");
        } else {
            let err = parsed.expect_err("past-limit depth must error");
            assert!(err.contains("nesting"), "depth {depth}: {err}");
        }
    }
}
