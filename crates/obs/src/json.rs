//! Minimal JSON value, writer and parser.
//!
//! The workspace is offline-first with zero registry dependencies, so the
//! manifest/trace machinery carries its own JSON support. The writer is
//! deterministic — object keys are stored in a [`BTreeMap`] and floats use
//! Rust's shortest round-trip formatting — which is what makes manifest
//! byte-comparisons meaningful. The parser accepts exactly the JSON this
//! writer (and Chrome-trace export) produces, plus ordinary hand-written
//! JSON: objects, arrays, strings with escapes, numbers, booleans, null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Json {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Member lookup on an object (`None` on other kinds / missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object map, if this is an object.
    pub fn as_obj_mut(&mut self) -> Option<&mut BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation and `\n` line ends — the
    /// deterministic on-disk form of manifests.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                for _ in 0..(w * d) {
                    out.push(' ');
                }
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Errors carry a byte offset and a short
    /// description.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Writes a float the way manifests need it: shortest round-trip form,
/// integers without a fraction, non-finite values as `null` (JSON has no
/// NaN/Inf).
fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deepest container nesting [`Json::parse`] accepts. The parser is
/// recursive descent, so without a bound adversarial input like
/// `"[[[[…"` overflows the stack instead of returning an error. Real
/// manifests/checkpoints nest a handful of levels; 128 is far above any
/// legitimate document and far below stack exhaustion.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_owned());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            // Surrogates collapse to the replacement char;
                            // the writer never emits them.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // re-scan the full UTF-8 char from the byte we consumed
                    let start = self.pos - 1;
                    let ch_len = utf8_len(b);
                    let end = start + ch_len;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8".to_owned());
                    }
                    let ch = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "bad UTF-8 in string".to_owned())?;
                    s.push_str(ch);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values() {
        let doc = Json::obj([
            ("pi".to_owned(), Json::Num(std::f64::consts::PI)),
            ("count".to_owned(), Json::Num(42.0)),
            (
                "name".to_owned(),
                Json::Str("line\n\"quoted\" \\ tab\t".to_owned()),
            ),
            (
                "list".to_owned(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-1e-9)]),
            ),
            ("empty".to_owned(), Json::Obj(BTreeMap::new())),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "from {text}");
        }
    }

    #[test]
    fn writer_is_deterministic() {
        let mk = || {
            Json::obj([
                ("b".to_owned(), Json::Num(2.0)),
                ("a".to_owned(), Json::Num(1.0)),
            ])
        };
        assert_eq!(mk().to_pretty(), mk().to_pretty());
        // keys come out sorted regardless of insertion order
        assert!(mk().to_compact().starts_with("{\"a\""));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = Json::parse(r#"{"s": "µm \u00b5 ok"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "µm µ ok");
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // exactly at the limit: fine
        let ok = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&ok).is_ok());
        // one past the limit: a typed error, not a crash
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH + 1),
            "]".repeat(MAX_PARSE_DEPTH + 1)
        );
        assert!(Json::parse(&over).unwrap_err().contains("nesting"));
        // adversarial megabyte-deep input must not overflow the stack
        for open in ["[", "{\"k\":"] {
            let bomb = open.repeat(200_000);
            assert!(Json::parse(&bomb).unwrap_err().contains("nesting"));
        }
        // depth resets between siblings: wide-but-shallow stays fine
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }
}
