//! Structured spans and events.
//!
//! A [`SpanGuard`] records a `Begin` event when created and the matching
//! `End` event when dropped; [`instant`] records point events. Every event
//! carries a monotonic timestamp (nanoseconds since the first event of the
//! process), the recording thread's id, the span's id and its parent span
//! id. Recording goes into a lock-sharded buffer — one mutex per shard,
//! shards picked by thread — so flow threads never contend on a single
//! lock.
//!
//! Recording is **off by default** and every hook starts with one relaxed
//! atomic load, so instrumentation stays in release builds at no cost
//! (the `span!` macro does not even build its attribute vector while
//! disabled).
//!
//! # Parent attribution across thread pools
//!
//! Span nesting is tracked per thread, but `foldic-exec` jobs run on pool
//! workers whose stacks start empty. The pool captures
//! [`current_span`] at the fan-out site and wraps each job in
//! [`run_with_parent`], so spans opened inside a job still attribute to
//! the span that submitted the work.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Identifier of one span instance (unique within the process).
pub type SpanId = u64;

/// One attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A text attribute.
    Str(String),
    /// A signed integer attribute.
    Int(i64),
    /// A float attribute.
    Float(f64),
    /// A boolean attribute.
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v.into())
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl AttrValue {
    fn to_json(&self) -> Json {
        match self {
            AttrValue::Str(s) => Json::Str(s.clone()),
            AttrValue::Int(v) => Json::Num(*v as f64),
            AttrValue::Float(v) => Json::Num(*v),
            AttrValue::Bool(b) => Json::Bool(*b),
        }
    }
}

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point-in-time event.
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global creation order (ties in `ts_ns` break on this).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch (monotonic).
    pub ts_ns: u64,
    /// Recording thread (small dense ids, 0 = first thread seen).
    pub tid: u64,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Span or event name.
    pub name: &'static str,
    /// Id of the span this event belongs to (0 for instants outside any
    /// span).
    pub span: SpanId,
    /// Parent span id, if any — follows pool-job inheritance.
    pub parent: Option<SpanId>,
    /// Attributes (only on `Begin` and `Instant` events).
    pub attrs: Vec<(&'static str, AttrValue)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

const NUM_SHARDS: usize = 16;
static SHARDS: [Mutex<Vec<Event>>; NUM_SHARDS] = [const { Mutex::new(Vec::new()) }; NUM_SHARDS];

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
    static INHERITED: Cell<Option<SpanId>> = const { Cell::new(None) };
}

/// Turns trace recording on or off. Turning it on clears the buffers.
pub fn set_enabled(on: bool) {
    if on {
        for shard in &SHARDS {
            shard.lock().unwrap().clear();
        }
    }
    ENABLED.store(on, Ordering::Release);
}

/// `true` while recording — one relaxed load, the cost of every disabled
/// hook.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process trace epoch (the first call wins the
/// epoch). Public so callers can timestamp *synthesized* events — e.g.
/// the serve scheduler marks a job's submit instant, then builds a
/// `queue.wait` span at dispatch — on the same clock as recorded spans.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Allocates a fresh span id from the same sequence [`SpanGuard`] draws
/// from, for synthesized spans (see [`synthetic_event`]).
pub fn alloc_span_id() -> SpanId {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// Builds an [`Event`] stamped with a fresh global sequence number and
/// this thread's id, without touching the span stack or the shard
/// buffers. Callers that reconstruct spans after the fact (the serve
/// queue synthesizes `queue.wait` Begin/End pairs from stored submit
/// timestamps) use this so their events interleave correctly with
/// recorded ones when sorted by `(ts_ns, seq)`.
pub fn synthetic_event(
    kind: EventKind,
    name: &'static str,
    span: SpanId,
    parent: Option<SpanId>,
    ts_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
) -> Event {
    Event {
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        ts_ns,
        tid: TID.with(|t| *t),
        kind,
        name,
        span,
        parent,
        attrs,
    }
}

fn record(event: Event) {
    let shard = (event.tid as usize) % NUM_SHARDS;
    SHARDS[shard].lock().unwrap().push(event);
}

/// Innermost active span on this thread, falling back to the parent
/// inherited from a pool fan-out.
pub fn current_span() -> Option<SpanId> {
    STACK
        .with(|s| s.borrow().last().copied())
        .or_else(|| INHERITED.with(Cell::get))
}

/// Runs `f` with `parent` installed as the inherited parent span for this
/// thread (pool workers wrap each job in this so spans inside the job
/// attribute to the span that submitted it). The previous inherited parent
/// is restored afterwards.
pub fn run_with_parent<R>(parent: Option<SpanId>, f: impl FnOnce() -> R) -> R {
    let prev = INHERITED.with(|c| c.replace(parent));
    let result = f();
    INHERITED.with(|c| c.set(prev));
    result
}

/// Records a point event with attributes (no-op while disabled).
pub fn instant(name: &'static str, attrs: Vec<(&'static str, AttrValue)>) {
    if !is_enabled() {
        return;
    }
    record(Event {
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        ts_ns: now_ns(),
        tid: TID.with(|t| *t),
        kind: EventKind::Instant,
        name,
        span: current_span().unwrap_or(0),
        parent: current_span(),
        attrs,
    });
}

/// RAII span: `Begin` on creation, `End` on drop. Build through the
/// [`span!`](crate::span) macro (which skips attribute construction while
/// disabled) or [`SpanGuard::enter`] for attribute-free spans.
#[must_use = "a span ends when the guard drops"]
pub struct SpanGuard {
    id: Option<SpanId>,
    name: &'static str,
}

impl SpanGuard {
    /// Opens a span with attributes. Callers should check [`is_enabled`]
    /// first (the `span!` macro does); this records unconditionally.
    pub fn begin(name: &'static str, attrs: Vec<(&'static str, AttrValue)>) -> Self {
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let parent = current_span();
        STACK.with(|s| s.borrow_mut().push(id));
        record(Event {
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
            ts_ns: now_ns(),
            tid: TID.with(|t| *t),
            kind: EventKind::Begin,
            name,
            span: id,
            parent,
            attrs,
        });
        Self { id: Some(id), name }
    }

    /// Opens an attribute-free span when tracing is on, otherwise returns
    /// a disabled guard.
    pub fn enter(name: &'static str) -> Self {
        if is_enabled() {
            Self::begin(name, Vec::new())
        } else {
            Self::disabled()
        }
    }

    /// A guard that records nothing (the disabled path of `span!`).
    pub fn disabled() -> Self {
        Self { id: None, name: "" }
    }

    /// This span's id (`None` for disabled guards).
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(s.last().copied(), Some(id), "span drop order");
            s.pop();
        });
        // record the End even if tracing was switched off mid-span, so
        // exported traces always have balanced Begin/End pairs
        record(Event {
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
            ts_ns: now_ns(),
            tid: TID.with(|t| *t),
            kind: EventKind::End,
            name: self.name,
            span: id,
            parent: None,
            attrs: Vec::new(),
        });
    }
}

/// Drains every shard and returns all recorded events sorted by
/// `(ts_ns, seq)` — the order exporters need.
pub fn take_events() -> Vec<Event> {
    let mut events = Vec::new();
    for shard in &SHARDS {
        events.append(&mut shard.lock().unwrap());
    }
    events.sort_by_key(|e| (e.ts_ns, e.seq));
    events
}

fn args_json(event: &Event) -> Json {
    let mut args: Vec<(String, Json)> = event
        .attrs
        .iter()
        .map(|(k, v)| ((*k).to_owned(), v.to_json()))
        .collect();
    args.push(("span".to_owned(), Json::Num(event.span as f64)));
    if let Some(p) = event.parent {
        args.push(("parent".to_owned(), Json::Num(p as f64)));
    }
    Json::obj(args)
}

/// Renders events as Chrome-trace JSON (the `chrome://tracing` /
/// [Perfetto](https://ui.perfetto.dev) format): one `B`/`E` pair per span
/// and `i` events for instants, timestamps in microseconds.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        let us = e.ts_ns / 1_000;
        let frac = e.ts_ns % 1_000;
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"foldic\",\"ph\":\"{ph}\",\"ts\":{us}.{frac:03},\"pid\":0,\"tid\":{}",
            Json::Str(e.name.to_owned()).to_compact(),
            e.tid
        );
        if e.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if e.kind != EventKind::End {
            let _ = write!(out, ",\"args\":{}", args_json(e).to_compact());
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Renders events as a JSONL log: one JSON object per line, in timestamp
/// order — greppable and streamable.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let kind = match e.kind {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        };
        let mut obj = vec![
            ("ts_ns".to_owned(), Json::Num(e.ts_ns as f64)),
            ("tid".to_owned(), Json::Num(e.tid as f64)),
            ("kind".to_owned(), Json::Str(kind.to_owned())),
            ("name".to_owned(), Json::Str(e.name.to_owned())),
            ("span".to_owned(), Json::Num(e.span as f64)),
        ];
        if let Some(p) = e.parent {
            obj.push(("parent".to_owned(), Json::Num(p as f64)));
        }
        if !e.attrs.is_empty() {
            obj.push((
                "attrs".to_owned(),
                Json::obj(e.attrs.iter().map(|(k, v)| ((*k).to_owned(), v.to_json()))),
            ));
        }
        out.push_str(&Json::Obj(obj.into_iter().collect()).to_compact());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The trace buffer is global: serialize tests that enable it.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn spans_nest_and_balance() {
        let _gate = lock();
        set_enabled(true);
        {
            let _a = crate::span!("outer", kind = "test");
            let _b = crate::span!("inner", idx = 3usize);
            instant("tick", vec![("v", AttrValue::from(1.5))]);
        }
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 5); // B B i E E
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[1].parent, Some(events[0].span));
        assert_eq!(events[2].kind, EventKind::Instant);
        assert_eq!(events[2].span, events[1].span);
        // LIFO close order
        assert_eq!(events[3].kind, EventKind::End);
        assert_eq!(events[3].span, events[1].span);
        assert_eq!(events[4].span, events[0].span);
        // timestamps are monotone in export order
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn disabled_records_nothing() {
        let _gate = lock();
        set_enabled(false);
        let _ = take_events();
        {
            let _a = crate::span!("ghost", big = 1u64);
            instant("nope", Vec::new());
        }
        assert!(take_events().is_empty());
        assert!(current_span().is_none());
    }

    #[test]
    fn inherited_parent_attributes_child_spans() {
        let _gate = lock();
        set_enabled(true);
        let parent_id = {
            let parent = crate::span!("submit");
            let id = parent.id().unwrap();
            run_with_parent(Some(id), || {
                // simulate a pool worker: empty stack, inherited parent
                let _child = crate::span!("job");
            });
            id
        };
        set_enabled(false);
        let events = take_events();
        let job = events
            .iter()
            .find(|e| e.name == "job" && e.kind == EventKind::Begin)
            .unwrap();
        assert_eq!(job.parent, Some(parent_id));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_balanced_pairs() {
        let _gate = lock();
        set_enabled(true);
        {
            let _a = crate::span!("alpha");
            let _b = crate::span!("beta");
        }
        set_enabled(false);
        let events = take_events();
        let trace = chrome_trace_json(&events);
        let doc = Json::parse(&trace).expect("chrome trace parses");
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut depth = 0i64;
        for item in items {
            match item.get("ph").unwrap().as_str().unwrap() {
                "B" => depth += 1,
                "E" => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "E before B");
        }
        assert_eq!(depth, 0, "unbalanced B/E pairs");

        let jsonl = events_jsonl(&events);
        for line in jsonl.lines() {
            Json::parse(line).expect("JSONL line parses");
        }
    }
}
