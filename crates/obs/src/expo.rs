//! Prometheus-style text exposition for metrics [`Snapshot`]s.
//!
//! The registry key *is* the series name: a plain name (`up`) or a name
//! with a label set in Prometheus syntax (`requests_total{endpoint="submit",
//! method="POST",status="202"}`). The renderer groups keys into families
//! (the name before the label braces), emits one `# TYPE` comment per
//! family, and expands histograms into the conventional cumulative
//! `_bucket{le=…}` / `_sum` / `_count` series. Because snapshots keep
//! their keys in a `BTreeMap`, the rendered body is a pure function of
//! the snapshot: same metrics in, same bytes out.
//!
//! [`parse_exposition`] is the matching reader — used by the loadgen
//! gate, the CI smoke and the fuzz harness — and [`filter_exposition`]
//! drops series (and orphaned `# TYPE` comments) by predicate, which is
//! how the determinism tests exclude the documented timing-class series.
//!
//! # Histogram bucket bounds
//!
//! [`Histogram`] buckets are binary-exponent buckets: bucket `k` holds
//! `[2^k, 2^(k+1))`, so the exposition renders bucket `k` with
//! `le="2^(k+1)"` in decimal. The [`Histogram::UNDERFLOW`] bucket (zero,
//! negative and non-finite observations) renders as `le="0"`. Bounds are
//! exact: every `2^k` has a finite decimal expansion.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::metrics::{Histogram, Metric, Snapshot};

/// Formats a sample value the way the renderer writes it: integers
/// without a fraction, everything else via Rust's shortest round-trip
/// float formatting, non-finite values in Prometheus spelling.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else if v == v.trunc() && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Splits a registry key into `(family, labels)` — `labels` is the text
/// inside the braces, empty when the key has none.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(open) if key.ends_with('}') => (&key[..open], &key[open + 1..key.len() - 1]),
        _ => (key, ""),
    }
}

/// Joins a family name, an optional inherited label set and an optional
/// extra label into a full series string.
fn series(family: &str, suffix: &str, labels: &str, extra: &str) -> String {
    let mut out = String::with_capacity(family.len() + suffix.len() + labels.len() + extra.len());
    out.push_str(family);
    out.push_str(suffix);
    if labels.is_empty() && extra.is_empty() {
        return out;
    }
    out.push('{');
    out.push_str(labels);
    if !labels.is_empty() && !extra.is_empty() {
        out.push(',');
    }
    out.push_str(extra);
    out.push('}');
    out
}

/// Renders a snapshot as a Prometheus text exposition body.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut typed: BTreeSet<String> = BTreeSet::new();
    for (key, metric) in &snapshot.metrics {
        let (family, labels) = split_key(key);
        let kind = match metric {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        };
        if typed.insert(family.to_owned()) {
            let _ = writeln!(out, "# TYPE {family} {kind}");
        }
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{key} {c}");
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "{key} {}", format_value(*g));
            }
            Metric::Histogram(h) => {
                let mut cumulative = 0u64;
                for (&exp, &count) in &h.buckets {
                    cumulative += count;
                    let le = if exp == Histogram::UNDERFLOW {
                        "le=\"0\"".to_owned()
                    } else {
                        format!("le=\"{}\"", format_value(2f64.powi(exp + 1)))
                    };
                    let _ = writeln!(
                        out,
                        "{} {cumulative}",
                        series(family, "_bucket", labels, &le)
                    );
                }
                let _ = writeln!(
                    out,
                    "{} {}",
                    series(family, "_bucket", labels, "le=\"+Inf\""),
                    h.count
                );
                let _ = writeln!(
                    out,
                    "{} {}",
                    series(family, "_sum", labels, ""),
                    format_value(h.sum())
                );
                let _ = writeln!(out, "{} {}", series(family, "_count", labels, ""), h.count);
            }
        }
    }
    out
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

/// Parses one sample line's series portion starting at `line`; returns
/// `(series, rest)` where `series` includes the label braces verbatim.
fn parse_series(line: &str) -> Result<(&str, &str), String> {
    let mut chars = line.char_indices();
    match chars.next() {
        Some((_, c)) if is_name_start(c) => {}
        _ => return Err(format!("bad metric name start: {line:?}")),
    }
    let mut name_end = line.len();
    for (i, c) in chars {
        if !is_name_char(c) {
            name_end = i;
            break;
        }
    }
    let rest = &line[name_end..];
    if !rest.starts_with('{') {
        return Ok((&line[..name_end], rest));
    }
    // scan the label block, honoring escapes inside quoted values
    let bytes = rest.as_bytes();
    let mut i = 1;
    let mut in_str = false;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'}' if !in_str => {
                let end = name_end + i + 1;
                return Ok((&line[..end], &line[end..]));
            }
            _ => {}
        }
        i += 1;
    }
    Err(format!("unterminated label block: {line:?}"))
}

/// Parses a text exposition body into `series → value`. Comment (`#`)
/// and blank lines are skipped; any malformed sample line is an error.
/// Never panics — this is the parser the fuzz harness hammers.
pub fn parse_exposition(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut samples = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, rest) = parse_series(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let value_text = rest.trim();
        if value_text.is_empty() || value_text.contains(|c: char| c.is_whitespace()) {
            return Err(format!(
                "line {}: expected `series value`, got {line:?}",
                lineno + 1
            ));
        }
        let value = match value_text {
            "NaN" => f64::NAN,
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            other => other
                .parse::<f64>()
                .map_err(|e| format!("line {}: bad value {other:?}: {e}", lineno + 1))?,
        };
        if samples.insert(series.to_owned(), value).is_some() {
            return Err(format!("line {}: duplicate series {series:?}", lineno + 1));
        }
    }
    Ok(samples)
}

/// The family a sample series belongs to: its name with any histogram
/// `_bucket` / `_sum` / `_count` suffix stripped.
pub fn family_of(series: &str) -> &str {
    let name = split_key(series).0;
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            if !stripped.is_empty() {
                return stripped;
            }
        }
    }
    name
}

/// Rewrites an exposition body keeping only the sample lines for which
/// `keep(series)` holds (the predicate sees the full series string,
/// labels included). `# TYPE` comments survive only while at least one
/// of their family's samples does, so the filtered body is itself a
/// well-formed exposition. Other comment lines are dropped.
pub fn filter_exposition(text: &str, keep: &dyn Fn(&str) -> bool) -> String {
    let mut kept_families: BTreeSet<String> = BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Ok((series, _)) = parse_series(line) {
            if keep(series) {
                kept_families.insert(family_of(series).to_owned());
            }
        }
    }
    let mut out = String::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            if words.next() == Some("TYPE") {
                if let Some(family) = words.next() {
                    if kept_families.contains(family) {
                        out.push_str(line);
                        out.push('\n');
                    }
                }
            }
            continue;
        }
        match parse_series(line) {
            Ok((series, _)) if keep(series) => {
                out.push_str(line);
                out.push('\n');
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        reg.set_enabled(true);
        reg.add(
            "requests_total{endpoint=\"submit\",method=\"POST\",status=\"202\"}",
            7,
        );
        reg.add(
            "requests_total{endpoint=\"stats\",method=\"GET\",status=\"200\"}",
            2,
        );
        reg.set_gauge("queue_depth", 3.0);
        reg.observe_all("latency_ms{endpoint=\"submit\"}", &[0.5, 1.5, 3.0, 0.0]);
        reg.take()
    }

    #[test]
    fn renders_families_once_and_counters_as_integers() {
        let text = to_prometheus(&sample_snapshot());
        assert_eq!(text.matches("# TYPE requests_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE latency_ms histogram").count(), 1);
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(
            text.contains("requests_total{endpoint=\"submit\",method=\"POST\",status=\"202\"} 7")
        );
        assert!(text.contains("queue_depth 3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_binary_bounds() {
        let text = to_prometheus(&sample_snapshot());
        // 0.0 → underflow (le="0"); 0.5 → [2^-1,2^0) le="1"; 1.5 → le="2"; 3.0 → le="4"
        assert!(text.contains("latency_ms_bucket{endpoint=\"submit\",le=\"0\"} 1"));
        assert!(text.contains("latency_ms_bucket{endpoint=\"submit\",le=\"1\"} 2"));
        assert!(text.contains("latency_ms_bucket{endpoint=\"submit\",le=\"2\"} 3"));
        assert!(text.contains("latency_ms_bucket{endpoint=\"submit\",le=\"4\"} 4"));
        assert!(text.contains("latency_ms_bucket{endpoint=\"submit\",le=\"+Inf\"} 4"));
        assert!(text.contains("latency_ms_sum{endpoint=\"submit\"} 5"));
        assert!(text.contains("latency_ms_count{endpoint=\"submit\"} 4"));
    }

    #[test]
    fn render_parse_round_trips() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let samples = parse_exposition(&text).expect("rendered body parses");
        assert_eq!(
            samples["requests_total{endpoint=\"submit\",method=\"POST\",status=\"202\"}"],
            7.0
        );
        assert_eq!(samples["queue_depth"], 3.0);
        assert_eq!(samples["latency_ms_count{endpoint=\"submit\"}"], 4.0);
        assert_eq!(
            samples["latency_ms_bucket{endpoint=\"submit\",le=\"+Inf\"}"],
            4.0
        );
        // byte determinism: same snapshot, same bytes
        assert_eq!(text, to_prometheus(&snap));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "1name 2",
            "name",
            "name{unterminated=\"x 1",
            "name 1 2 3",
            "name nope",
            "dup 1\ndup 2",
        ] {
            assert!(parse_exposition(bad).is_err(), "{bad:?} should fail");
        }
        // special values and comments are fine
        let ok = parse_exposition("# HELP x y\nx NaN\ny +Inf\nz -Inf\n").unwrap();
        assert!(ok["x"].is_nan());
        assert_eq!(ok["y"], f64::INFINITY);
        assert_eq!(ok["z"], f64::NEG_INFINITY);
    }

    #[test]
    fn filter_drops_series_and_orphaned_type_comments() {
        let text = to_prometheus(&sample_snapshot());
        let kept = filter_exposition(&text, &|series| !series.starts_with("latency_ms"));
        assert!(!kept.contains("latency_ms"));
        assert!(!kept.contains("# TYPE latency_ms"));
        assert!(kept.contains("# TYPE requests_total counter"));
        assert!(kept.contains("queue_depth 3"));
        // the filtered body is itself parseable
        parse_exposition(&kept).expect("filtered body parses");
        // label-level filtering keeps the family's TYPE line
        let partial = filter_exposition(&text, &|series| !series.contains("endpoint=\"stats\""));
        assert!(partial.contains("# TYPE requests_total counter"));
        assert!(partial.contains("endpoint=\"submit\""));
        assert!(!partial.contains("endpoint=\"stats\""));
    }

    #[test]
    fn family_of_strips_histogram_suffixes() {
        assert_eq!(family_of("latency_ms_bucket{le=\"1\"}"), "latency_ms");
        assert_eq!(family_of("latency_ms_sum"), "latency_ms");
        assert_eq!(family_of("latency_ms_count"), "latency_ms");
        assert_eq!(family_of("requests_total{a=\"b\"}"), "requests_total");
        assert_eq!(family_of("_count"), "_count");
    }
}
