//! `foldic-obs` — observability for the foldic flows.
//!
//! Three layers, all zero-dependency and offline-first like
//! `foldic-exec`:
//!
//! 1. **Structured spans and events** ([`trace`]): the [`span!`] macro
//!    opens a named, attributed span; nesting is tracked per thread and
//!    inherited across `foldic-exec` pool jobs. Recorded events export as
//!    Chrome-trace JSON (loadable in `chrome://tracing` or Perfetto) or
//!    JSONL.
//! 2. **Metrics registry** ([`metrics`]): named counters, gauges, and
//!    log-bucketed histograms with order-independent accumulators, a
//!    stable-ordered text dump, and JSON export.
//! 3. **Run manifests** ([`manifest`]): the machine-readable record of a
//!    `repro` run, plus [`manifest::compare`] — the regression gate
//!    behind `repro compare`.
//!
//! Serving telemetry (PR 7) adds three more, built on the same layers:
//!
//! 4. **Text exposition** ([`expo`]): Prometheus-style rendering of a
//!    metrics [`Snapshot`], with a matching parser and series filter —
//!    the format behind the daemon's `GET /metrics`.
//! 5. **Structured logs** ([`log`]): leveled JSONL with deterministic
//!    field order — the daemon's access+app log.
//! 6. **Flight recorder** ([`flight`]): a per-worker ring of recent
//!    records, dumped as provenance when a job degrades.
//!
//! Every hook costs one relaxed atomic load while its layer is disabled
//! and allocates nothing, so instrumentation stays in release builds.

#![warn(missing_docs)]

pub mod expo;
pub mod flight;
pub mod json;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod trace;

pub use manifest::{compare, CompareConfig, CompareOutcome, RunManifest};
pub use metrics::{Registry, Snapshot};
pub use trace::SpanGuard;

/// Opens a span that closes when the returned guard drops.
///
/// ```
/// let _span = foldic_obs::span!("place", block = "cpu0", tier = 1i64);
/// // ... work ...
/// ```
///
/// Attribute values are anything convertible to
/// [`trace::AttrValue`] (`&str`, `String`, integers, `f64`, `bool`).
/// When tracing is disabled the macro performs a single relaxed atomic
/// load and allocates nothing.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::trace::is_enabled() {
            $crate::trace::SpanGuard::begin(
                $name,
                vec![$((stringify!($key), $crate::trace::AttrValue::from($value))),*],
            )
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}
