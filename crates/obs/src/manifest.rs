//! Run manifests and the `repro compare` regression gate.
//!
//! A [`RunManifest`] is the machine-readable record of one `repro` run:
//! the configuration that produced it, per-stage wall-clock timings, a
//! metrics-registry snapshot, a digest + line count per experiment
//! report, and the run's fault-handling events (blocks that were
//! recovered by a retry or degraded to analytical estimates). Manifests are written as pretty JSON with deterministically
//! ordered keys, so two runs of the same build are byte-identical —
//! *except* for the `timing` section, which holds everything wall-clock
//! or scheduling dependent (stage seconds, steal counts, thread count).
//! [`RunManifest::strip_timing`] removes exactly that section; what
//! remains must not vary across `--threads` values.
//!
//! [`compare`] diffs two manifests with per-metric relative tolerances
//! and reports regressions, which the `repro compare` subcommand turns
//! into a nonzero exit code.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::metrics::{Metric, Snapshot};

/// Manifest schema identifier, bumped on incompatible layout changes.
pub const SCHEMA: &str = "foldic-run-manifest/1";

/// Digest + shape of one experiment's report text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentResult {
    /// FNV-1a 64 digest of the report text, `"fnv64:<16 hex>"`.
    pub digest: String,
    /// Number of lines in the report text.
    pub lines: u64,
}

/// One fault-handling event from the run's `faults` section: a block
/// that failed mid-flow and was either recovered by a retry or degraded
/// to analytical estimates.
///
/// This is the manifest-side mirror of the flow's fault records;
/// `foldic-obs` sits at the bottom of the dependency graph, so the
/// fields are plain strings rather than the flow's typed enums.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEntry {
    /// Run scope the fault occurred under (e.g. `"folded_f2b.dvt"`).
    pub scope: String,
    /// Block name.
    pub block: String,
    /// Flow stage of the last failure (e.g. `"route"`).
    pub stage: String,
    /// Attempts consumed, including the first run.
    pub attempts: u64,
    /// Final outcome: `"recovered"` or `"degraded"`.
    pub disposition: String,
}

impl FaultEntry {
    fn site(&self) -> String {
        format!("{}/{}", self.scope, self.block)
    }
}

/// The structured record of one `repro` run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Key/value configuration (experiment names, size, seed, …).
    /// Everything here participates in comparison.
    pub config: BTreeMap<String, String>,
    /// Wall-clock and scheduling data (per-stage seconds, thread count,
    /// steal totals). Excluded from determinism digests and comparison.
    pub timing: Json,
    /// Metrics-registry snapshot at the end of the run.
    pub metrics: Snapshot,
    /// Experiment name → result digest.
    pub results: BTreeMap<String, ExperimentResult>,
    /// Fault-handling events, sorted. Empty for a clean run; manifests
    /// written before this section existed parse as empty.
    pub faults: Vec<FaultEntry>,
    /// Wall-clock timeout events (stages cancelled by a deadline),
    /// sorted. Same shape as `faults` but gated separately. Pay-for-use:
    /// the key is omitted from the JSON when empty, so runs without
    /// deadline flags serialize byte-identically to older manifests.
    pub timeouts: Vec<FaultEntry>,
    /// Memory-budget breach events (stages stopped by a resource
    /// policy), sorted. Same shape and pay-for-use rule as `timeouts`.
    pub mem_exceeded: Vec<FaultEntry>,
    /// Peak net-allocated bytes per flow stage, recorded only while a
    /// resource policy was installed (pay-for-use: the key is omitted
    /// when empty). Peaks are sampled at poll granularity on the worker
    /// thread, so they are compared with a relative tolerance
    /// ([`CompareConfig::mem_tol_pct`]), never byte-exactly.
    pub resources: BTreeMap<String, u64>,
    /// Design-database provenance: snapshot digest (path-less), cell and
    /// net counts, and whether the design was `generated` in-process or
    /// loaded from a `snapshot` file. Pay-for-use like `resources`.
    /// Everything except `source` is compared for exact equality — the
    /// same design loaded from disk must digest identically to the one
    /// generated in memory.
    pub db: BTreeMap<String, String>,
}

/// FNV-1a 64-bit digest of a report text, formatted `fnv64:<16 hex>`.
pub fn digest_report(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("fnv64:{hash:016x}")
}

impl RunManifest {
    /// Records one experiment's report text as a digest entry.
    pub fn record_result(&mut self, experiment: &str, report_text: &str) {
        self.results.insert(
            experiment.to_owned(),
            ExperimentResult {
                digest: digest_report(report_text),
                lines: report_text.lines().count() as u64,
            },
        );
    }

    /// Drops the wall-clock section; the remainder must be identical
    /// across thread counts for the same build + config.
    pub fn strip_timing(&mut self) {
        self.timing = Json::Null;
    }

    /// Serializes to the JSON layout described by [`SCHEMA`].
    pub fn to_json(&self) -> Json {
        let config = self
            .config
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect();
        let results = self
            .results
            .iter()
            .map(|(name, r)| {
                (
                    name.clone(),
                    Json::obj([
                        ("digest".to_owned(), Json::Str(r.digest.clone())),
                        ("lines".to_owned(), Json::Num(r.lines as f64)),
                    ]),
                )
            })
            .collect();
        let entries = |list: &[FaultEntry]| -> Vec<Json> {
            list.iter()
                .map(|f| {
                    Json::obj([
                        ("scope".to_owned(), Json::Str(f.scope.clone())),
                        ("block".to_owned(), Json::Str(f.block.clone())),
                        ("stage".to_owned(), Json::Str(f.stage.clone())),
                        ("attempts".to_owned(), Json::Num(f.attempts as f64)),
                        ("disposition".to_owned(), Json::Str(f.disposition.clone())),
                    ])
                })
                .collect()
        };
        let mut fields = vec![
            ("schema".to_owned(), Json::Str(SCHEMA.to_owned())),
            ("config".to_owned(), Json::Obj(config)),
            ("timing".to_owned(), self.timing.clone()),
            ("metrics".to_owned(), self.metrics.to_json()),
            ("results".to_owned(), Json::Obj(results)),
            ("faults".to_owned(), Json::Arr(entries(&self.faults))),
        ];
        // pay-for-use: deadline-less runs keep the pre-timeouts layout
        if !self.timeouts.is_empty() {
            fields.push(("timeouts".to_owned(), Json::Arr(entries(&self.timeouts))));
        }
        // same rule for the resource-governance sections
        if !self.mem_exceeded.is_empty() {
            fields.push((
                "mem_exceeded".to_owned(),
                Json::Arr(entries(&self.mem_exceeded)),
            ));
        }
        if !self.resources.is_empty() {
            let resources = self
                .resources
                .iter()
                .map(|(stage, bytes)| (stage.clone(), Json::Num(*bytes as f64)))
                .collect();
            fields.push(("resources".to_owned(), Json::Obj(resources)));
        }
        if !self.db.is_empty() {
            let db = self
                .db
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect();
            fields.push(("db".to_owned(), Json::Obj(db)));
        }
        Json::obj(fields)
    }

    /// Pretty JSON text of [`RunManifest::to_json`].
    pub fn to_json_text(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a manifest back from its JSON form.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        match json.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unsupported manifest schema {other:?}")),
            None => return Err("missing manifest schema".to_owned()),
        }
        let mut manifest = Self::default();
        if let Some(Json::Obj(config)) = json.get("config") {
            for (k, v) in config {
                let v = v
                    .as_str()
                    .ok_or_else(|| format!("config.{k} is not a string"))?;
                manifest.config.insert(k.clone(), v.to_owned());
            }
        }
        manifest.timing = json.get("timing").cloned().unwrap_or(Json::Null);
        if let Some(metrics) = json.get("metrics") {
            manifest.metrics = Snapshot::from_json(metrics)?;
        }
        if let Some(Json::Obj(results)) = json.get("results") {
            for (name, r) in results {
                let digest = r
                    .get("digest")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("results.{name}.digest missing"))?;
                let lines = r.get("lines").and_then(Json::as_f64).unwrap_or(0.0);
                manifest.results.insert(
                    name.clone(),
                    ExperimentResult {
                        digest: digest.to_owned(),
                        lines: lines as u64,
                    },
                );
            }
        }
        // manifests predating the fault/timeout sections simply have none
        let read_entries = |section: &str| -> Result<Vec<FaultEntry>, String> {
            let mut out = Vec::new();
            if let Some(Json::Arr(list)) = json.get(section) {
                for (i, f) in list.iter().enumerate() {
                    let text = |key: &str| -> Result<String, String> {
                        f.get(key)
                            .and_then(Json::as_str)
                            .map(str::to_owned)
                            .ok_or_else(|| format!("{section}[{i}].{key} missing"))
                    };
                    out.push(FaultEntry {
                        scope: text("scope")?,
                        block: text("block")?,
                        stage: text("stage")?,
                        attempts: f.get("attempts").and_then(Json::as_f64).unwrap_or(1.0) as u64,
                        disposition: text("disposition")?,
                    });
                }
                out.sort();
            }
            Ok(out)
        };
        manifest.faults = read_entries("faults")?;
        manifest.timeouts = read_entries("timeouts")?;
        manifest.mem_exceeded = read_entries("mem_exceeded")?;
        if let Some(Json::Obj(resources)) = json.get("resources") {
            for (stage, v) in resources {
                let bytes = v
                    .as_f64()
                    .filter(|n| n.is_finite() && *n >= 0.0)
                    .ok_or_else(|| format!("resources.{stage} is not a byte count"))?;
                manifest.resources.insert(stage.clone(), bytes as u64);
            }
        }
        if let Some(Json::Obj(db)) = json.get("db") {
            for (k, v) in db {
                let v = v
                    .as_str()
                    .ok_or_else(|| format!("db.{k} is not a string"))?;
                manifest.db.insert(k.clone(), v.to_owned());
            }
        }
        Ok(manifest)
    }

    /// Parses manifest JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// Tolerances for [`compare`].
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Maximum allowed relative delta, in percent, for numeric metrics
    /// (counters, gauges, histogram count/sum).
    pub rel_tol_pct: f64,
    /// Maximum allowed relative delta, in percent, for the `resources`
    /// peak-bytes section. Much looser than `rel_tol_pct`: peaks are
    /// poll-granularity samples of a per-thread net counter, so small
    /// allocator- and schedule-dependent drift is expected.
    pub mem_tol_pct: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        Self {
            rel_tol_pct: 0.5,
            mem_tol_pct: 25.0,
        }
    }
}

/// Outcome of comparing a candidate manifest against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CompareOutcome {
    /// Deltas beyond tolerance, missing metrics/results, digest or
    /// config mismatches. Non-empty ⇒ the gate fails.
    pub regressions: Vec<String>,
    /// In-tolerance deltas, reported for context.
    pub changes: Vec<String>,
    /// Number of metric/result values compared.
    pub compared: usize,
}

impl CompareOutcome {
    /// `true` when nothing regressed.
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn rel_delta_pct(base: f64, cand: f64) -> f64 {
    if base == cand {
        return 0.0;
    }
    let denom = base.abs().max(1e-12);
    (cand - base).abs() / denom * 100.0
}

/// Diffs `cand` against `base`. The `timing` sections are ignored;
/// everything else is compared — config keys for equality, result
/// digests for equality, and numeric metric values within
/// `cfg.rel_tol_pct` percent. A metric or experiment present in the
/// baseline but missing from the candidate is a regression; one only in
/// the candidate is reported as an in-tolerance change (new telemetry
/// must not fail old baselines).
pub fn compare(base: &RunManifest, cand: &RunManifest, cfg: CompareConfig) -> CompareOutcome {
    let mut out = CompareOutcome::default();

    for (key, bv) in &base.config {
        match cand.config.get(key) {
            Some(cv) if cv == bv => {}
            Some(cv) => out
                .regressions
                .push(format!("config {key}: baseline {bv:?} vs candidate {cv:?}")),
            None => out
                .regressions
                .push(format!("config {key}: missing from candidate")),
        }
        out.compared += 1;
    }

    for (name, br) in &base.results {
        out.compared += 1;
        match cand.results.get(name) {
            None => out
                .regressions
                .push(format!("result {name}: missing from candidate")),
            Some(cr) if cr.digest == br.digest => {}
            Some(cr) => out.regressions.push(format!(
                "result {name}: digest {} vs {} ({} vs {} lines)",
                br.digest, cr.digest, br.lines, cr.lines
            )),
        }
    }
    for name in cand.results.keys() {
        if !base.results.contains_key(name) {
            out.changes.push(format!("result {name}: new in candidate"));
        }
    }

    // Fault gate: a block that newly degrades (relative to the baseline)
    // is a regression — its numbers are estimates, not flow results. A
    // fault that clears, or degrades into a mere recovery, is an
    // improvement and reported as a change. The `timeouts` section is
    // gated by the same rule under its own label.
    fn gate_entries(
        out: &mut CompareOutcome,
        label: &str,
        base: &[FaultEntry],
        cand: &[FaultEntry],
    ) {
        let base_entries: BTreeMap<String, &FaultEntry> =
            base.iter().map(|f| (f.site(), f)).collect();
        let cand_entries: BTreeMap<String, &FaultEntry> =
            cand.iter().map(|f| (f.site(), f)).collect();
        for (site, cf) in &cand_entries {
            out.compared += 1;
            let newly_degraded = cf.disposition == "degraded"
                && base_entries
                    .get(site)
                    .is_none_or(|bf| bf.disposition != "degraded");
            if newly_degraded {
                out.regressions.push(format!(
                    "{label} {site}: newly degraded at {} after {} attempts",
                    cf.stage, cf.attempts
                ));
            } else {
                match base_entries.get(site) {
                    Some(bf) if *bf == *cf => {}
                    Some(bf) => out.changes.push(format!(
                        "{label} {site}: {} {} -> {} {}",
                        bf.stage, bf.disposition, cf.stage, cf.disposition
                    )),
                    None => out.changes.push(format!(
                        "{label} {site}: new {} at {}",
                        cf.disposition, cf.stage
                    )),
                }
            }
        }
        for (site, bf) in &base_entries {
            if !cand_entries.contains_key(site) {
                out.changes.push(format!(
                    "{label} {site}: cleared (was {} at {})",
                    bf.disposition, bf.stage
                ));
            }
        }
    }
    gate_entries(&mut out, "fault", &base.faults, &cand.faults);
    gate_entries(&mut out, "timeout", &base.timeouts, &cand.timeouts);
    gate_entries(
        &mut out,
        "mem_exceeded",
        &base.mem_exceeded,
        &cand.mem_exceeded,
    );

    fn check(
        out: &mut CompareOutcome,
        tol_pct: f64,
        name: &str,
        what: &str,
        base_v: f64,
        cand_v: f64,
    ) {
        out.compared += 1;
        let delta = rel_delta_pct(base_v, cand_v);
        if delta > tol_pct {
            out.regressions.push(format!(
                "metric {name} {what}: {base_v} -> {cand_v} ({delta:.2}% > {tol_pct:.2}%)"
            ));
        } else if delta > 0.0 {
            out.changes.push(format!(
                "metric {name} {what}: {base_v} -> {cand_v} ({delta:.2}%)"
            ));
        }
    }

    let tol = cfg.rel_tol_pct;
    for (name, bm) in &base.metrics.metrics {
        match (bm, cand.metrics.metrics.get(name)) {
            (_, None) => {
                out.compared += 1;
                out.regressions
                    .push(format!("metric {name}: missing from candidate"));
            }
            (Metric::Counter(b), Some(Metric::Counter(c))) => {
                check(&mut out, tol, name, "count", *b as f64, *c as f64);
            }
            (Metric::Gauge(b), Some(Metric::Gauge(c))) => {
                check(&mut out, tol, name, "value", *b, *c);
            }
            (Metric::Histogram(b), Some(Metric::Histogram(c))) => {
                check(&mut out, tol, name, "count", b.count as f64, c.count as f64);
                check(&mut out, tol, name, "sum", b.sum(), c.sum());
            }
            (_, Some(other)) => {
                out.compared += 1;
                out.regressions
                    .push(format!("metric {name}: kind changed to {other:?}"));
            }
        }
    }
    for name in cand.metrics.metrics.keys() {
        if !base.metrics.metrics.contains_key(name) {
            out.changes.push(format!("metric {name}: new in candidate"));
        }
    }

    // Peak-bytes section: numeric like metrics, but under the looser
    // memory tolerance — see `CompareConfig::mem_tol_pct`.
    for (stage, bv) in &base.resources {
        match cand.resources.get(stage) {
            None => {
                out.compared += 1;
                out.regressions
                    .push(format!("resources {stage}: missing from candidate"));
            }
            Some(cv) => check(
                &mut out,
                cfg.mem_tol_pct,
                &format!("resources {stage}"),
                "peak_bytes",
                *bv as f64,
                *cv as f64,
            ),
        }
    }
    for stage in cand.resources.keys() {
        if !base.resources.contains_key(stage) {
            out.changes
                .push(format!("resources {stage}: new in candidate"));
        }
    }

    // Design-database section: exact equality, except `source` — the
    // whole point of the digest is that a snapshot-loaded design and a
    // generated one are interchangeable, so provenance alone is a
    // change, never a regression.
    for (key, bv) in &base.db {
        out.compared += 1;
        match cand.db.get(key) {
            Some(cv) if cv == bv => {}
            Some(cv) if key == "source" => out
                .changes
                .push(format!("db source: {bv} -> {cv} (digest gated separately)")),
            Some(cv) => out
                .regressions
                .push(format!("db {key}: baseline {bv:?} vs candidate {cv:?}")),
            None => out
                .regressions
                .push(format!("db {key}: missing from candidate")),
        }
    }
    for key in cand.db.keys() {
        if !base.db.contains_key(key) {
            out.changes.push(format!("db {key}: new in candidate"));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample() -> RunManifest {
        let mut m = RunManifest::default();
        m.config.insert("experiments".into(), "table2".into());
        m.config.insert("size".into(), "tiny".into());
        m.config.insert("seed".into(), "42".into());
        m.timing = Json::obj([("wall_s".to_owned(), Json::Num(1.25))]);
        m.metrics
            .metrics
            .insert("sa.moves".into(), Metric::Counter(7200));
        m.metrics
            .metrics
            .insert("fullchip.2d.power_total_uw".into(), Metric::Gauge(1000.0));
        let mut h = Histogram {
            count: 3,
            sum_fp: (30.0 * 65536.0) as i128,
            min: 5.0,
            max: 15.0,
            ..Histogram::default()
        };
        h.buckets.insert(2, 1);
        h.buckets.insert(3, 2);
        m.metrics
            .metrics
            .insert("route.net_length_um".into(), Metric::Histogram(h));
        m.record_result("table2", "Table 2\nrow a\nrow b\n");
        m.faults.push(FaultEntry {
            scope: "folded_f2b".into(),
            block: "ccx".into(),
            stage: "route".into(),
            attempts: 2,
            disposition: "recovered".into(),
        });
        m
    }

    #[test]
    fn manifest_roundtrips_through_json_text() {
        let m = sample();
        let text = m.to_json_text();
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back.config, m.config);
        assert_eq!(back.results, m.results);
        assert_eq!(back.metrics, m.metrics);
        assert_eq!(back.faults, m.faults);
        // serialization is deterministic
        assert_eq!(back.to_json_text(), text);
    }

    #[test]
    fn manifest_without_fault_section_parses_as_clean() {
        // manifests from before the fault section existed (e.g. pinned
        // CI baselines) must keep parsing
        let mut m = sample();
        m.faults.clear();
        let mut json = m.to_json();
        if let Json::Obj(obj) = &mut json {
            obj.remove("faults");
        }
        let back = RunManifest::parse(&json.to_pretty()).unwrap();
        assert!(back.faults.is_empty());
        assert!(compare(&back, &m, CompareConfig::default()).is_ok());
    }

    #[test]
    fn newly_degraded_block_fails_the_gate_but_recovery_does_not() {
        let base = sample();

        // same fault in both runs: clean
        let cand = sample();
        assert!(compare(&base, &cand, CompareConfig::default()).is_ok());

        // candidate-only recovered fault: informational change
        let mut cand = sample();
        cand.faults.push(FaultEntry {
            scope: "core_cache".into(),
            block: "spc0".into(),
            stage: "place".into(),
            attempts: 3,
            disposition: "recovered".into(),
        });
        let out = compare(&base, &cand, CompareConfig::default());
        assert!(out.is_ok(), "{:?}", out.regressions);
        assert!(out.changes.iter().any(|c| c.contains("spc0")));

        // candidate-only degraded fault: regression
        let mut cand = sample();
        cand.faults.push(FaultEntry {
            scope: "core_cache".into(),
            block: "spc0".into(),
            stage: "place".into(),
            attempts: 3,
            disposition: "degraded".into(),
        });
        let out = compare(&base, &cand, CompareConfig::default());
        assert!(!out.is_ok(), "newly degraded block must trip the gate");

        // recovered -> degraded at the same site: also a regression
        let mut cand = sample();
        cand.faults[0].disposition = "degraded".into();
        assert!(!compare(&base, &cand, CompareConfig::default()).is_ok());

        // degraded in both runs: pinned by the baseline, clean
        let mut base2 = sample();
        base2.faults[0].disposition = "degraded".into();
        let mut cand = sample();
        cand.faults[0].disposition = "degraded".into();
        assert!(compare(&base2, &cand, CompareConfig::default()).is_ok());

        // fault cleared in the candidate: improvement, reported only
        let mut cand = sample();
        cand.faults.clear();
        let out = compare(&base, &cand, CompareConfig::default());
        assert!(out.is_ok(), "{:?}", out.regressions);
        assert!(out.changes.iter().any(|c| c.contains("cleared")));
    }

    #[test]
    fn timeouts_section_is_pay_for_use_and_gated_like_faults() {
        // no timeouts: the key is absent, so the JSON is byte-identical
        // to the pre-deadline layout
        let m = sample();
        assert!(m.timeouts.is_empty());
        assert!(!m.to_json_text().contains("\"timeouts\""));

        // with timeouts: round-trips and serializes deterministically
        let mut t = sample();
        t.timeouts.push(FaultEntry {
            scope: "2d".into(),
            block: "ccx".into(),
            stage: "route".into(),
            attempts: 2,
            disposition: "degraded".into(),
        });
        let text = t.to_json_text();
        assert!(text.contains("\"timeouts\""));
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back.timeouts, t.timeouts);
        assert_eq!(back.to_json_text(), text);

        // a newly timed-out degrade is a regression, like a fault
        let out = compare(&m, &t, CompareConfig::default());
        assert!(!out.is_ok(), "newly timed-out block must trip the gate");
        assert!(out.regressions.iter().any(|r| r.starts_with("timeout ")));

        // the same timeout pinned in the baseline compares clean
        assert!(compare(&t, &t, CompareConfig::default()).is_ok());

        // cleared timeout: improvement, reported only
        let out = compare(&t, &m, CompareConfig::default());
        assert!(out.is_ok(), "{:?}", out.regressions);
        assert!(out
            .changes
            .iter()
            .any(|c| c.starts_with("timeout ") && c.contains("cleared")));
    }

    #[test]
    fn resource_sections_are_pay_for_use_and_gated() {
        // no resource policy: both keys absent, JSON byte-identical to
        // the pre-resource layout
        let m = sample();
        assert!(m.mem_exceeded.is_empty() && m.resources.is_empty());
        let text = m.to_json_text();
        assert!(!text.contains("\"mem_exceeded\"") && !text.contains("\"resources\""));

        // with a policy: both sections round-trip deterministically
        let mut r = sample();
        r.mem_exceeded.push(FaultEntry {
            scope: "2d".into(),
            block: "ccx".into(),
            stage: "place".into(),
            attempts: 2,
            disposition: "degraded".into(),
        });
        r.resources.insert("place".into(), 48 * 1024 * 1024);
        r.resources.insert("job".into(), 96 * 1024 * 1024);
        let text = r.to_json_text();
        assert!(text.contains("\"mem_exceeded\"") && text.contains("\"resources\""));
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back.mem_exceeded, r.mem_exceeded);
        assert_eq!(back.resources, r.resources);
        assert_eq!(back.to_json_text(), text);

        // a newly mem-degraded block is a regression, like a timeout
        let out = compare(&m, &r, CompareConfig::default());
        assert!(!out.is_ok(), "newly mem-degraded block must trip the gate");
        assert!(out
            .regressions
            .iter()
            .any(|x| x.starts_with("mem_exceeded ")));

        // the same breach pinned in the baseline compares clean
        assert!(compare(&r, &r, CompareConfig::default()).is_ok());

        // peaks drift within the memory tolerance: clean; beyond: gated
        let mut cand = r.clone();
        cand.resources.insert("place".into(), 52 * 1024 * 1024); // ~8%
        let out = compare(&r, &cand, CompareConfig::default());
        assert!(out.is_ok(), "{:?}", out.regressions);
        cand.resources.insert("place".into(), 90 * 1024 * 1024); // ~88%
        let out = compare(&r, &cand, CompareConfig::default());
        assert!(!out.is_ok(), "an 88% peak jump must trip the 25% gate");

        // a stage peak vanishing from the candidate is a regression;
        // a new stage peak is an informational change
        let mut cand = r.clone();
        cand.resources.remove("place");
        cand.resources.insert("route".into(), 1024);
        let out = compare(&r, &cand, CompareConfig::default());
        assert!(!out.is_ok());
        assert!(out
            .regressions
            .iter()
            .any(|x| x.contains("resources place") && x.contains("missing")));
        assert!(out
            .changes
            .iter()
            .any(|c| c.contains("resources route") && c.contains("new in candidate")));
    }

    #[test]
    fn db_section_is_pay_for_use_and_gated_exactly() {
        // no --design and no digest recorded: key absent, layout unchanged
        let m = sample();
        assert!(!m.to_json_text().contains("\"db\""));

        // with provenance: round-trips byte-identically
        let mut base = sample();
        base.db
            .insert("digest".into(), "fnv64:00aabbccddeeff11".into());
        base.db.insert("cells".into(), "120000".into());
        base.db.insert("nets".into(), "118000".into());
        base.db.insert("source".into(), "generated".into());
        let text = base.to_json_text();
        assert!(text.contains("\"db\""));
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back.db, base.db);
        assert_eq!(back.to_json_text(), text);

        // snapshot-loaded run with the same digest: source flips but the
        // gate stays green — provenance is informational
        let mut cand = base.clone();
        cand.db.insert("source".into(), "snapshot".into());
        let out = compare(&base, &cand, CompareConfig::default());
        assert!(out.is_ok(), "{:?}", out.regressions);
        assert!(out.changes.iter().any(|c| c.contains("db source")));

        // a digest or census drift is a hard regression
        let mut cand = base.clone();
        cand.db
            .insert("digest".into(), "fnv64:ffffffffffffffff".into());
        assert!(!compare(&base, &cand, CompareConfig::default()).is_ok());
        let mut cand = base.clone();
        cand.db.remove("cells");
        let out = compare(&base, &cand, CompareConfig::default());
        assert!(out
            .regressions
            .iter()
            .any(|x| x.contains("db cells") && x.contains("missing")));
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let d = digest_report("Table 2\nrow a\n");
        assert!(d.starts_with("fnv64:") && d.len() == 6 + 16, "{d}");
        assert_eq!(d, digest_report("Table 2\nrow a\n"));
        assert_ne!(d, digest_report("Table 2\nrow b\n"));
    }

    #[test]
    fn self_compare_is_clean_even_with_different_timing() {
        let base = sample();
        let mut cand = sample();
        cand.timing = Json::obj([("wall_s".to_owned(), Json::Num(99.9))]);
        let out = compare(&base, &cand, CompareConfig::default());
        assert!(out.is_ok(), "{:?}", out.regressions);
        assert!(out.compared > 0);
    }

    #[test]
    fn perturbation_beyond_threshold_regresses_but_within_does_not() {
        let base = sample();
        let mut cand = sample();
        cand.metrics
            .metrics
            .insert("fullchip.2d.power_total_uw".into(), Metric::Gauge(1020.0));
        let out = compare(
            &base,
            &cand,
            CompareConfig {
                rel_tol_pct: 0.5,
                ..CompareConfig::default()
            },
        );
        assert!(!out.is_ok(), "2% gauge drift must trip a 0.5% gate");
        let loose = compare(
            &base,
            &cand,
            CompareConfig {
                rel_tol_pct: 5.0,
                ..CompareConfig::default()
            },
        );
        assert!(loose.is_ok(), "{:?}", loose.regressions);
        assert!(!loose.changes.is_empty(), "in-tolerance drift is reported");
    }

    #[test]
    fn missing_metric_config_drift_and_digest_change_regress() {
        let base = sample();

        let mut cand = sample();
        cand.metrics.metrics.remove("sa.moves");
        assert!(!compare(&base, &cand, CompareConfig::default()).is_ok());

        let mut cand = sample();
        cand.config.insert("size".into(), "small".into());
        assert!(!compare(&base, &cand, CompareConfig::default()).is_ok());

        let mut cand = sample();
        cand.record_result("table2", "Table 2\nrow a\nrow CHANGED\n");
        assert!(!compare(&base, &cand, CompareConfig::default()).is_ok());

        // extra metrics/results in the candidate are fine
        let mut cand = sample();
        cand.metrics
            .metrics
            .insert("new.metric".into(), Metric::Counter(1));
        cand.record_result("fig2", "Fig 2\n");
        assert!(compare(&base, &cand, CompareConfig::default()).is_ok());
    }
}
