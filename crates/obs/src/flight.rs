//! Per-worker flight recorder: a fixed-size ring of recent records.
//!
//! The serve daemon needs a "why" attached to every degraded result: a
//! job that times out, faults or panics should carry the last things the
//! worker saw — which stage was running, which blocks retried, what the
//! watchdog cancelled — without paying for full tracing on every job.
//! The recorder is **thread-local**: each scheduler worker owns one ring,
//! the study runner records into it from inside the job, and the worker
//! drains it right after the run, so records never race across workers
//! and no global lock sits on the job path.
//!
//! The ring is fixed-size (default [`DEFAULT_CAPACITY`]): when full, the
//! oldest record is evicted and a dropped counter ticks, so a pathological
//! job can't grow memory — the dump always says how much history it lost.
//! Timestamps come from [`crate::trace::now_ns`], the same clock spans
//! use, so a dump lines up with a trace of the same job.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::json::Json;

/// Default ring capacity per worker thread. Sized for the worst
/// realistic dump: a deadline job over every experiment leaves one
/// record per faulted stage/block plus bracketing start/end records —
/// tens of entries — while staying a bounded few KiB per worker.
pub const DEFAULT_CAPACITY: usize = 64;

/// One recorded entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Per-thread sequence number (monotone, never reused).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch ([`crate::trace::now_ns`]).
    pub ts_ns: u64,
    /// What happened (`job.start`, `fault`, `panic`, `job.end`, …).
    pub name: String,
    /// Structured payload, deterministically ordered.
    pub fields: BTreeMap<String, Json>,
}

impl FlightRecord {
    /// JSON object form: `ts_ns`/`seq`/`name` plus the payload under
    /// `fields` (key order is alphabetical, hence deterministic).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("fields".to_owned(), Json::Obj(self.fields.clone())),
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("seq".to_owned(), Json::Num(self.seq as f64)),
            ("ts_ns".to_owned(), Json::Num(self.ts_ns as f64)),
        ])
    }
}

struct Ring {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    records: VecDeque<FlightRecord>,
}

impl Ring {
    const fn new() -> Self {
        Self {
            cap: DEFAULT_CAPACITY,
            next_seq: 0,
            dropped: 0,
            records: VecDeque::new(),
        }
    }
}

thread_local! {
    static RING: RefCell<Ring> = const { RefCell::new(Ring::new()) };
}

/// Sets this thread's ring capacity (min 1). Existing excess records are
/// evicted oldest-first and counted as dropped.
pub fn configure(capacity: usize) {
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        ring.cap = capacity.max(1);
        while ring.records.len() > ring.cap {
            ring.records.pop_front();
            ring.dropped += 1;
        }
    });
}

/// Appends a record to this thread's ring, evicting the oldest when full.
pub fn record(name: &str, fields: impl IntoIterator<Item = (String, Json)>) {
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        if ring.records.len() == ring.cap {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let rec = FlightRecord {
            seq,
            ts_ns: crate::trace::now_ns(),
            name: name.to_owned(),
            fields: fields.into_iter().collect(),
        };
        ring.records.push_back(rec);
    });
}

/// Drains this thread's ring: `(records, dropped)` in record order, with
/// the count of records evicted since the last drain. Both reset.
pub fn take() -> (Vec<FlightRecord>, u64) {
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        let dropped = std::mem::take(&mut ring.dropped);
        (std::mem::take(&mut ring.records).into(), dropped)
    })
}

/// Renders a drained dump as JSONL: one record object per line, with a
/// final `{"dropped":n,"name":"flight.truncated",...}` line when the
/// ring evicted history.
pub fn dump_jsonl(records: &[FlightRecord], dropped: u64) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.to_json().to_compact());
        out.push('\n');
    }
    if dropped > 0 {
        out.push_str(
            &Json::obj([
                ("dropped".to_owned(), Json::Num(dropped as f64)),
                ("name".to_owned(), Json::Str("flight.truncated".to_owned())),
            ])
            .to_compact(),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(k: &str, v: i64) -> (String, Json) {
        (k.to_owned(), Json::Num(v as f64))
    }

    #[test]
    fn records_drain_in_order_and_reset() {
        configure(DEFAULT_CAPACITY);
        let _ = take();
        record("job.start", [field("id", 1)]);
        record("fault", [field("attempts", 2)]);
        record("job.end", []);
        let (records, dropped) = take();
        assert_eq!(dropped, 0);
        assert_eq!(
            records.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            ["job.start", "fault", "job.end"]
        );
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let (empty, _) = take();
        assert!(empty.is_empty(), "take drains");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        configure(3);
        let _ = take();
        for i in 0..5 {
            record("tick", [field("i", i)]);
        }
        let (records, dropped) = take();
        assert_eq!(records.len(), 3);
        assert_eq!(dropped, 2);
        assert_eq!(records[0].fields["i"], Json::Num(2.0));
        assert_eq!(records[2].fields["i"], Json::Num(4.0));
        let jsonl = dump_jsonl(&records, dropped);
        assert_eq!(jsonl.lines().count(), 4, "3 records + truncation marker");
        for line in jsonl.lines() {
            Json::parse(line).expect("dump line parses");
        }
        assert!(jsonl.contains("flight.truncated"));
        configure(DEFAULT_CAPACITY);
    }

    #[test]
    fn threads_have_independent_rings() {
        configure(DEFAULT_CAPACITY);
        let _ = take();
        record("mine", []);
        let other = std::thread::spawn(|| {
            record("theirs", []);
            take().0.len()
        })
        .join()
        .unwrap();
        assert_eq!(other, 1);
        let (records, _) = take();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "mine");
    }
}
