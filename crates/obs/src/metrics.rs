//! Named counters, gauges and log-bucketed histograms.
//!
//! Flow code reports *sampled aggregates* (a counter add per SA
//! temperature step, a histogram batch per wiring analysis — never a call
//! per inner-loop move), so one global mutex-protected registry is cheap.
//! Every hook starts with one relaxed atomic load and allocates nothing
//! while recording is disabled, so the hooks stay in release builds.
//!
//! # Determinism
//!
//! Registry snapshots feed run manifests, which must be byte-identical
//! across worker-thread counts. Every accumulator is therefore
//! order-independent:
//!
//! * counters are `u64` sums;
//! * histograms keep `u64` bucket counts, a **fixed-point** value sum
//!   (integer addition is associative; float addition is not) and
//!   min/max;
//! * histogram buckets are *binary-exponent* buckets — bucket `k` holds
//!   values in `[2^k, 2^(k+1))`, computed from the IEEE-754 exponent bits
//!   rather than `log2()` so bucketing never depends on libm rounding.
//!
//! Gauges are last-write-wins and belong in serial roll-up code (or under
//! keys only one job writes, e.g. per-style full-chip summaries).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Fixed-point scale for histogram sums: 2⁻¹⁶ resolution.
const FP_ONE: f64 = 65536.0;

/// The process-global registry the free functions below record into.
static GLOBAL: Registry = Registry::new();

/// An instantiable metrics registry.
///
/// Flow code records into the process-global registry through the free
/// functions ([`add`], [`observe`], …), which manifests snapshot and
/// drain. Long-lived components that must not perturb manifest bytes —
/// the serve daemon's `/metrics` endpoint, most prominently — own a
/// `Registry` of their own instead, with the same recording semantics
/// and the same determinism contract.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh, disabled registry (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turns recording on or off. Turning it on clears the registry.
    pub fn set_enabled(&self, on: bool) {
        if on {
            self.metrics.lock().unwrap().clear();
        }
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// `true` while recording — one relaxed load, the cost of every
    /// disabled hook.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Adds `n` to the counter `name` (created at 0).
    pub fn add(&self, name: &str, n: u64) {
        if !self.is_enabled() || n == 0 {
            return;
        }
        let mut reg = self.metrics.lock().unwrap();
        match reg.entry(name.to_owned()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += n,
            other => debug_assert!(false, "{name} is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge `name`. Call from serial code or under per-job keys
    /// — concurrent writers to one key would race the final value.
    pub fn set_gauge(&self, name: &str, v: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut reg = self.metrics.lock().unwrap();
        match reg.entry(name.to_owned()).or_insert(Metric::Gauge(0.0)) {
            Metric::Gauge(g) => *g = v,
            other => debug_assert!(false, "{name} is not a gauge: {other:?}"),
        }
    }

    /// Raises the gauge `name` to at least `v` (max-merge, commutative —
    /// safe for concurrent writers).
    pub fn set_gauge_max(&self, name: &str, v: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut reg = self.metrics.lock().unwrap();
        match reg.entry(name.to_owned()).or_insert(Metric::Gauge(v)) {
            Metric::Gauge(g) => *g = g.max(v),
            other => debug_assert!(false, "{name} is not a gauge: {other:?}"),
        }
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, v: f64) {
        self.observe_all(name, std::slice::from_ref(&v));
    }

    /// Records a batch of observations under one registry lock.
    pub fn observe_all(&self, name: &str, values: &[f64]) {
        if !self.is_enabled() || values.is_empty() {
            return;
        }
        let mut reg = self.metrics.lock().unwrap();
        match reg
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => {
                for &v in values {
                    h.observe(v);
                }
            }
            other => debug_assert!(false, "{name} is not a histogram: {other:?}"),
        }
    }

    /// Copies the registry without clearing it.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            metrics: self.metrics.lock().unwrap().clone(),
        }
    }

    /// Drains the registry, leaving it empty.
    pub fn take(&self) -> Snapshot {
        Snapshot {
            metrics: std::mem::take(&mut *self.metrics.lock().unwrap()),
        }
    }
}

/// Turns global metric recording on or off. Turning it on clears the
/// registry.
pub fn set_enabled(on: bool) {
    GLOBAL.set_enabled(on);
}

/// `true` while the global registry records — one relaxed load, the cost
/// of every disabled hook.
#[inline]
pub fn is_enabled() -> bool {
    GLOBAL.is_enabled()
}

/// A log-bucketed histogram with order-independent accumulators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Fixed-point (2⁻¹⁶) sum of observed values.
    pub sum_fp: i128,
    /// Smallest observation (`+inf` before the first).
    pub min: f64,
    /// Largest observation (`-inf` before the first).
    pub max: f64,
    /// Binary-exponent bucket → count. Bucket `k` covers `[2^k, 2^(k+1))`;
    /// [`Histogram::UNDERFLOW`] collects zero, negative and non-finite
    /// values.
    pub buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    /// Bucket index for values ≤ 0 (and NaN).
    pub const UNDERFLOW: i32 = i32::MIN;

    fn new() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Self::default()
        }
    }

    /// The bucket a value lands in: its IEEE-754 binary exponent.
    pub fn bucket_of(v: f64) -> i32 {
        if v <= 0.0 || !v.is_finite() {
            return Self::UNDERFLOW;
        }
        let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
        if biased == 0 {
            -1023 // subnormals share one bucket
        } else {
            biased - 1023
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        if v.is_finite() {
            self.sum_fp += (v * FP_ONE).round() as i128;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        *self.buckets.entry(Self::bucket_of(v)).or_insert(0) += 1;
    }

    /// Sum of the observed values.
    pub fn sum(&self) -> f64 {
        self.sum_fp as f64 / FP_ONE
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically accumulated `u64`.
    Counter(u64),
    /// A last-write-wins value.
    Gauge(f64),
    /// A [`Histogram`].
    Histogram(Histogram),
}

/// Adds `n` to the global counter `name` (created at 0).
pub fn add(name: &str, n: u64) {
    GLOBAL.add(name, n);
}

/// Sets the global gauge `name`. Call from serial code or under per-job
/// keys — concurrent writers to one key would race the final value.
pub fn set_gauge(name: &str, v: f64) {
    GLOBAL.set_gauge(name, v);
}

/// Raises the global gauge `name` to at least `v` (max-merge). Unlike
/// [`set_gauge`], max is commutative and associative, so concurrent
/// writers from pool jobs converge to the same value regardless of
/// scheduling — safe for keys written inside parallel flows (e.g.
/// high-water scratch-reuse counts).
pub fn set_gauge_max(name: &str, v: f64) {
    GLOBAL.set_gauge_max(name, v);
}

/// Records one observation into the global histogram `name`.
pub fn observe(name: &str, v: f64) {
    GLOBAL.observe(name, v);
}

/// Records a batch of observations under one registry lock — the shape
/// instrumented loops should use (compute locally, flush once).
pub fn observe_all(name: &str, values: &[f64]) {
    GLOBAL.observe_all(name, values);
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Metric name → value, deterministically ordered.
    pub metrics: BTreeMap<String, Metric>,
}

/// Copies the global registry without clearing it.
pub fn snapshot() -> Snapshot {
    GLOBAL.snapshot()
}

/// Drains the global registry, leaving it empty.
pub fn take() -> Snapshot {
    GLOBAL.take()
}

impl Snapshot {
    /// Counter value (0 when absent or of another kind) — handy in tests.
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Stable-ordered text table (for `--profile`-style terminal output).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<40} {:>14} detail", "metric", "value");
        for (name, metric) in &self.metrics {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name:<40} {c:>14} counter");
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name:<40} {g:>14.3} gauge");
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name:<40} {:>14} n; mean {:.3} min {:.3} max {:.3}",
                        h.count,
                        h.mean(),
                        if h.min.is_finite() { h.min } else { 0.0 },
                        if h.max.is_finite() { h.max } else { 0.0 },
                    );
                }
            }
        }
        out
    }

    /// JSON form (the `metrics` section of a run manifest).
    pub fn to_json(&self) -> Json {
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for (name, metric) in &self.metrics {
            match metric {
                Metric::Counter(c) => {
                    counters.insert(name.clone(), Json::Num(*c as f64));
                }
                Metric::Gauge(g) => {
                    gauges.insert(name.clone(), Json::Num(*g));
                }
                Metric::Histogram(h) => {
                    let buckets: Vec<Json> = h
                        .buckets
                        .iter()
                        .map(|(&exp, &count)| {
                            Json::Arr(vec![Json::Num(exp as f64), Json::Num(count as f64)])
                        })
                        .collect();
                    histograms.insert(
                        name.clone(),
                        Json::obj([
                            ("count".to_owned(), Json::Num(h.count as f64)),
                            ("sum".to_owned(), Json::Num(h.sum())),
                            (
                                "min".to_owned(),
                                if h.min.is_finite() {
                                    Json::Num(h.min)
                                } else {
                                    Json::Null
                                },
                            ),
                            (
                                "max".to_owned(),
                                if h.max.is_finite() {
                                    Json::Num(h.max)
                                } else {
                                    Json::Null
                                },
                            ),
                            ("buckets".to_owned(), Json::Arr(buckets)),
                        ]),
                    );
                }
            }
        }
        Json::obj([
            ("counters".to_owned(), Json::Obj(counters)),
            ("gauges".to_owned(), Json::Obj(gauges)),
            ("histograms".to_owned(), Json::Obj(histograms)),
        ])
    }

    /// Parses the JSON form back (for `repro compare`).
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let mut metrics = BTreeMap::new();
        let section = |key: &str| -> Result<BTreeMap<String, Json>, String> {
            match json.get(key) {
                None => Ok(BTreeMap::new()),
                Some(Json::Obj(m)) => Ok(m.clone()),
                Some(_) => Err(format!("metrics.{key} is not an object")),
            }
        };
        for (name, v) in section("counters")? {
            let c = v.as_f64().ok_or_else(|| format!("counter {name}"))?;
            metrics.insert(name, Metric::Counter(c as u64));
        }
        for (name, v) in section("gauges")? {
            let g = v.as_f64().ok_or_else(|| format!("gauge {name}"))?;
            metrics.insert(name, Metric::Gauge(g));
        }
        for (name, v) in section("histograms")? {
            let num = |key: &str| -> Result<f64, String> {
                v.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("histogram {name}.{key}"))
            };
            let mut h = Histogram::new();
            h.count = num("count")? as u64;
            h.sum_fp = (num("sum")? * FP_ONE).round() as i128;
            h.min = v.get("min").and_then(Json::as_f64).unwrap_or(f64::INFINITY);
            h.max = v
                .get("max")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NEG_INFINITY);
            if let Some(buckets) = v.get("buckets").and_then(Json::as_arr) {
                for b in buckets {
                    let pair = b
                        .as_arr()
                        .ok_or_else(|| format!("histogram {name} bucket"))?;
                    if let [exp, count] = pair {
                        h.buckets.insert(
                            exp.as_f64().unwrap_or(0.0) as i32,
                            count.as_f64().unwrap_or(0.0) as u64,
                        );
                    }
                }
            }
            metrics.insert(name, Metric::Histogram(h));
        }
        Ok(Self { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The registry is global: serialize tests that enable it.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn bucket_boundaries_follow_binary_exponents() {
        // [2^k, 2^(k+1)) — exact powers of two land in their own bucket
        assert_eq!(Histogram::bucket_of(1.0), 0);
        assert_eq!(Histogram::bucket_of(1.999), 0);
        assert_eq!(Histogram::bucket_of(2.0), 1);
        assert_eq!(Histogram::bucket_of(4.0), 2);
        assert_eq!(Histogram::bucket_of(3.999), 1);
        assert_eq!(Histogram::bucket_of(0.5), -1);
        assert_eq!(Histogram::bucket_of(0.25), -2);
        assert_eq!(Histogram::bucket_of(1e6), 19); // 2^19 = 524288 ≤ 1e6 < 2^20
                                                   // the degenerate cases share the underflow bucket
        assert_eq!(Histogram::bucket_of(0.0), Histogram::UNDERFLOW);
        assert_eq!(Histogram::bucket_of(-3.0), Histogram::UNDERFLOW);
        assert_eq!(Histogram::bucket_of(f64::NAN), Histogram::UNDERFLOW);
        assert_eq!(Histogram::bucket_of(f64::INFINITY), Histogram::UNDERFLOW);
    }

    #[test]
    fn disabled_hooks_record_nothing_and_counters_stay_zero() {
        let _gate = lock();
        set_enabled(false);
        let _ = take();
        add("ghost.counter", 41);
        set_gauge("ghost.gauge", 1.0);
        observe("ghost.histogram", 2.0);
        observe_all("ghost.batch", &[1.0, 2.0, 3.0]);
        let snap = take();
        assert!(snap.metrics.is_empty(), "disabled hooks must not record");
        assert_eq!(snap.counter("ghost.counter"), 0);
    }

    #[test]
    fn accumulators_are_order_independent() {
        let _gate = lock();
        let run = |values: &[f64]| {
            set_enabled(true);
            observe_all("h", values);
            add("c", values.len() as u64);
            let snap = take();
            set_enabled(false);
            snap
        };
        let fwd = run(&[0.1, 2.5, 1e6, 3.0, 0.0]);
        let rev = run(&[0.0, 3.0, 1e6, 2.5, 0.1]);
        assert_eq!(fwd, rev, "histogram accumulation must commute");
        let h = fwd.histogram("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets[&Histogram::UNDERFLOW], 1);
        assert!((h.sum() - (0.1 + 2.5 + 1e6 + 3.0)).abs() < 1e-3);
    }

    #[test]
    fn gauge_max_merge_commutes_across_writers() {
        let _gate = lock();
        let run = |values: &[f64]| {
            set_enabled(true);
            for &v in values {
                set_gauge_max("scratch.reuse", v);
            }
            let snap = take();
            set_enabled(false);
            snap
        };
        let fwd = run(&[1.0, 9.0, 4.0]);
        let rev = run(&[4.0, 1.0, 9.0]);
        assert_eq!(fwd, rev, "max-merge must commute");
        assert_eq!(fwd.gauge("scratch.reuse"), Some(9.0));
        // disabled hook records nothing
        set_enabled(false);
        set_gauge_max("scratch.reuse", 99.0);
        assert!(take().metrics.is_empty());
    }

    #[test]
    fn instance_registries_are_independent_of_the_global() {
        let _gate = lock();
        set_enabled(false);
        let _ = take();
        let reg = Registry::new();
        reg.set_enabled(true);
        reg.add("local.counter", 3);
        reg.observe("local.hist", 2.0);
        reg.set_gauge("local.gauge", 1.5);
        reg.set_gauge_max("local.gauge", 4.0);
        // nothing leaked into the process-global registry
        assert!(take().metrics.is_empty(), "global must stay untouched");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("local.counter"), 3);
        assert_eq!(snap.gauge("local.gauge"), Some(4.0));
        assert_eq!(snap.histogram("local.hist").unwrap().count, 1);
        let drained = reg.take();
        assert_eq!(drained, snap);
        assert!(reg.take().metrics.is_empty(), "take drains");
        // a disabled instance records nothing
        reg.set_enabled(false);
        reg.add("local.counter", 1);
        assert!(reg.snapshot().metrics.is_empty());
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let _gate = lock();
        set_enabled(true);
        add("sa.moves", 7200);
        set_gauge("fullchip.2d.power_total_uw", 123456.789);
        observe_all("route.net_length_um", &[10.0, 55.5, 1024.0]);
        let snap = take();
        set_enabled(false);
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back.counter("sa.moves"), 7200);
        assert_eq!(back.gauge("fullchip.2d.power_total_uw"), Some(123456.789));
        let h = back.histogram("route.net_length_um").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(
            h.buckets,
            snap.histogram("route.net_length_um").unwrap().buckets
        );
        // text dump is stable-ordered and mentions every metric
        let text = snap.to_text();
        assert!(text.contains("sa.moves"));
        assert!(text.contains("route.net_length_um"));
    }
}
