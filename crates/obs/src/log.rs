//! Leveled JSONL logging: one compact JSON object per line.
//!
//! The serve daemon writes an access+app log — one line per HTTP request
//! and per job transition — that downstream tooling greps and parses.
//! Lines are plain [`Json`] objects with the reserved keys `level` and
//! `event` merged into the caller's fields; because objects serialize
//! from a `BTreeMap`, field order is alphabetical and therefore
//! **deterministic**: the same logical line always renders the same
//! bytes. Timestamps are deliberately not part of the line format —
//! callers that need one add their own field (e.g. `latency_ms`), which
//! keeps the deterministic/volatile split explicit.
//!
//! A [`LogSink`] is an owned handle, not a global: the server clones an
//! `Arc<LogSink>` into its connection and worker threads. Each `log`
//! call writes and flushes one line under a mutex, so concurrent lines
//! never interleave mid-line.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::json::Json;

/// Log severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic detail (per-request timings, cache keys).
    Debug,
    /// Normal operation (requests, job transitions).
    Info,
    /// Degraded but serving (rejections, timeouts).
    Warn,
    /// Faults (panicked jobs, I/O errors).
    Error,
}

impl Level {
    /// The lowercase name used on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a lowercase level name.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// Formats one log line (without the trailing newline): the caller's
/// fields plus reserved `level` and `event` keys, serialized compactly
/// with alphabetical field order. Caller fields named `level`/`event`
/// are overwritten by the reserved values.
pub fn format_line(
    level: Level,
    event: &str,
    fields: impl IntoIterator<Item = (String, Json)>,
) -> String {
    let mut obj: BTreeMap<String, Json> = fields.into_iter().collect();
    obj.insert("level".to_owned(), Json::Str(level.as_str().to_owned()));
    obj.insert("event".to_owned(), Json::Str(event.to_owned()));
    Json::Obj(obj).to_compact()
}

/// Parses a log line back into `(level, event, fields)` — the reserved
/// keys are removed from the returned field map. Used by tests, the CI
/// smoke and the fuzz harness; never panics.
pub fn parse_line(line: &str) -> Result<(Level, String, BTreeMap<String, Json>), String> {
    let json = Json::parse(line)?;
    let Json::Obj(mut obj) = json else {
        return Err("log line is not an object".to_owned());
    };
    let level = match obj.remove("level") {
        Some(Json::Str(s)) => Level::parse(&s).ok_or_else(|| format!("unknown log level {s:?}"))?,
        _ => return Err("log line missing string `level`".to_owned()),
    };
    let event = match obj.remove("event") {
        Some(Json::Str(s)) => s,
        _ => return Err("log line missing string `event`".to_owned()),
    };
    Ok((level, event, obj))
}

/// A leveled JSONL writer.
pub struct LogSink {
    level: Level,
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for LogSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogSink")
            .field("level", &self.level)
            .finish()
    }
}

impl LogSink {
    /// A sink over an arbitrary writer, dropping lines below `level`.
    pub fn new(writer: Box<dyn Write + Send>, level: Level) -> Self {
        Self {
            level,
            out: Mutex::new(writer),
        }
    }

    /// A sink appending to the file at `path` (created if absent).
    pub fn to_file(path: &Path, level: Level) -> io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file)), level))
    }

    /// A sink writing to stderr.
    pub fn stderr(level: Level) -> Self {
        Self::new(Box::new(io::stderr()), level)
    }

    /// The minimum level this sink writes.
    pub fn level(&self) -> Level {
        self.level
    }

    /// `true` when a line at `level` would be written — check before
    /// building expensive field sets.
    pub fn enabled(&self, level: Level) -> bool {
        level >= self.level
    }

    /// Writes one line (and flushes, so logs survive an abrupt exit).
    /// Write errors are swallowed: logging must never take down serving.
    pub fn log(&self, level: Level, event: &str, fields: impl IntoIterator<Item = (String, Json)>) {
        if !self.enabled(level) {
            return;
        }
        let line = format_line(level, event, fields);
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer the test can read back.
    #[derive(Clone, Default)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn f(k: &str, v: &str) -> (String, Json) {
        (k.to_owned(), Json::Str(v.to_owned()))
    }

    #[test]
    fn levels_order_and_round_trip() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        for level in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("INFO"), None);
        assert_eq!(Level::parse("trace"), None);
    }

    #[test]
    fn lines_have_deterministic_field_order_and_parse_back() {
        let a = format_line(
            Level::Info,
            "request",
            [f("request_id", "req-1"), f("endpoint", "submit")],
        );
        let b = format_line(
            Level::Info,
            "request",
            [f("endpoint", "submit"), f("request_id", "req-1")],
        );
        assert_eq!(a, b, "field insertion order must not matter");
        assert!(a.starts_with('{') && a.ends_with('}'));
        let (level, event, fields) = parse_line(&a).unwrap();
        assert_eq!(level, Level::Info);
        assert_eq!(event, "request");
        assert_eq!(fields["endpoint"], Json::Str("submit".to_owned()));
        assert_eq!(fields["request_id"], Json::Str("req-1".to_owned()));
        // reserved keys win over caller fields of the same name
        let clash = format_line(
            Level::Warn,
            "real",
            [f("event", "fake"), f("level", "fake")],
        );
        let (level, event, fields) = parse_line(&clash).unwrap();
        assert_eq!((level, event.as_str()), (Level::Warn, "real"));
        assert!(fields.is_empty());
    }

    #[test]
    fn sink_filters_below_threshold_and_writes_jsonl() {
        let buf = Shared::default();
        let sink = LogSink::new(Box::new(buf.clone()), Level::Info);
        assert!(!sink.enabled(Level::Debug));
        assert!(sink.enabled(Level::Warn));
        sink.log(Level::Debug, "dropped", []);
        sink.log(Level::Info, "kept", [f("k", "v")]);
        sink.log(Level::Error, "also_kept", []);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kept\""));
        let (level, event, _) = parse_line(lines[1]).unwrap();
        assert_eq!((level, event.as_str()), (Level::Error, "also_kept"));
    }

    #[test]
    fn parse_line_rejects_malformed_input() {
        for bad in [
            "not json",
            "[1,2]",
            "{}",
            "{\"level\":\"info\"}",
            "{\"event\":\"x\",\"level\":\"loud\"}",
            "{\"event\":3,\"level\":\"info\"}",
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?} should fail");
        }
    }
}
