//! The F2F-via placement flow of §5.1, step by step (Fig. 4).
//!
//! 1. fold a block with an ideal 3D interconnect,
//! 2. export the *merged 2D-like design* — both dies in one routing
//!    instance, masters renamed with `_die_top` / `_die_bot`, only the 3D
//!    nets routable, 2D nets tied off,
//! 3. route the 3D nets and extract the crossing points as F2F via
//!    locations,
//! 4. report how close the vias land to their ideal spots (and how many
//!    sit over macros — the freedom TSVs don't have).
//!
//! ```text
//! cargo run --release --example f2f_via_flow
//! ```

use foldic::prelude::*;
use foldic_route::{parse_merged, place_vias, write_merged};

fn main() {
    let (mut design, tech) = T2Config::small().generate();
    let id = design.find_block("l2t0").expect("l2t0 exists");

    // Step 1: fold with an ideal interconnect (the partition + placement
    // happen inside fold_block; via placement is re-run below to show the
    // flow's pieces).
    let folded = fold_block(
        design.block_mut(id),
        &tech,
        &FoldConfig {
            bonding: BondingStyle::FaceToFace,
            ..FoldConfig::default()
        },
    )
    .unwrap();
    let block = design.block(id);
    println!(
        "folded {}: {} instances, {} tier-crossing nets",
        block.name,
        block.netlist.num_insts(),
        folded.vias.len()
    );

    // Step 2: the merged 2D-like design file (what the paper feeds to a
    // commercial 2D router).
    let merged_text = write_merged(&block.netlist, &tech, block.outline, "l2t0_merged");
    let merged = parse_merged(&merged_text).expect("roundtrip");
    println!(
        "merged design: {} components, {} routable 3D nets, {} nets tied off",
        merged.components.len(),
        merged.nets_3d.len(),
        merged.tied_off
    );
    let top = merged
        .components
        .iter()
        .filter(|c| c.master.ends_with("_die_top"))
        .count();
    println!(
        "  {} components carry the _die_top suffix, {} the _die_bot suffix",
        top,
        merged.components.len() - top
    );

    // Step 3: route the 3D nets → F2F via locations.
    let vias = place_vias(
        &block.netlist,
        &tech,
        block.outline,
        BondingStyle::FaceToFace,
    )
    .unwrap();
    println!(
        "placed {} F2F vias; mean displacement from ideal {:.2} µm (pitch {:.2} µm)",
        vias.len(),
        vias.mean_displacement_um(),
        tech.f2f_via.pitch_um
    );

    // Step 4: vias over macros — legal for F2F, illegal for TSVs.
    let macros: Vec<_> = block
        .netlist
        .insts()
        .filter(|(_, i)| i.master.is_macro())
        .map(|(_, i)| i.rect(&tech))
        .collect();
    let over = vias
        .iter()
        .filter(|v| macros.iter().any(|m| m.contains(v.pos)))
        .count();
    println!(
        "{over} vias sit over memory macros ({:.1}%) — compare the TSV case:",
        over as f64 / vias.len().max(1) as f64 * 100.0
    );
    let tsvs = place_vias(
        &block.netlist,
        &tech,
        block.outline,
        BondingStyle::FaceToBack,
    )
    .unwrap();
    let tsv_over = tsvs
        .iter()
        .filter(|v| macros.iter().any(|m| m.contains(v.pos)))
        .count();
    println!(
        "TSV assignment: {tsv_over} over macros, mean displacement {:.2} µm",
        tsvs.mean_displacement_um()
    );
}
