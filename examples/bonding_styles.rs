//! Face-to-back vs face-to-face bonding on the same fold (paper §5).
//!
//! The same min-cut partition of the L2-cache tag is implemented with
//! TSVs (F2B) and with F2F vias (F2F). TSVs cost silicon area, collide on
//! a coarse pitch grid and are barred from macros; F2F vias are free.
//!
//! ```text
//! cargo run --release --example bonding_styles
//! ```

use foldic::prelude::*;
use foldic_timing::TimingBudgets;

fn main() {
    let (design, tech) = T2Config::small().generate();
    let id = design.find_block("l2t0").expect("l2t0 exists");

    let mut d2 = design.clone();
    let baseline = {
        let block = d2.block_mut(id);
        let budgets = TimingBudgets::relaxed(&block.netlist, &tech);
        run_block_flow(block, &tech, &budgets, &FlowConfig::default())
            .unwrap()
            .metrics
    };
    println!(
        "L2T 2D: {:.3} mm2, {:.1} mW",
        baseline.footprint_mm2(),
        baseline.power.total_uw() * 1e-3
    );
    println!(
        "\n{:>6} {:>5} {:>7} {:>10} {:>10} {:>11} {:>13}",
        "style", "conns", "die mm2", "WL vs 2D", "pwr vs 2D", "TSV area", "displacement"
    );

    for bonding in [BondingStyle::FaceToBack, BondingStyle::FaceToFace] {
        let mut d3 = design.clone();
        let cfg = FoldConfig {
            bonding,
            ..FoldConfig::default()
        };
        let f = fold_block(d3.block_mut(id), &tech, &cfg).unwrap();
        let pc = |b: f64, n: f64| (n / b - 1.0) * 100.0;
        println!(
            "{:>6} {:>5} {:>7.3} {:>+9.1}% {:>+9.1}% {:>8.1}um2 {:>11.2}um",
            bonding.to_string(),
            f.metrics.num_3d_connections,
            f.metrics.footprint_mm2(),
            pc(baseline.wirelength_um, f.metrics.wirelength_um),
            pc(baseline.power.total_uw(), f.metrics.power.total_uw()),
            f.vias.silicon_area_um2(&tech),
            f.vias.mean_displacement_um(),
        );
    }
    println!(
        "\nF2F vias land at their ideal crossing points (even over macros);\n\
         TSVs are displaced to legal silicon sites and cost keep-out area —\n\
         which is why F2F wins on every partition of Fig. 7."
    );
}
