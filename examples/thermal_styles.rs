//! Thermal comparison of the five chip styles (the paper's §7 future work).
//!
//! Runs each full-chip style at reduced size, extracts its power map, and
//! solves the stack temperatures: stacking concentrates power, and the
//! face-to-face bond's dielectric heat path makes the F2F stack hottest.
//!
//! ```text
//! cargo run --release --example thermal_styles
//! ```

use foldic::prelude::*;
use foldic_thermal::{chip_power_maps, solve_stack, StackConfig};

fn main() {
    let (design, tech) = T2Config::tiny().generate();
    println!(
        "{:<18} {:>9} {:>8} {:>8} {:>9}",
        "style", "power W", "Tmax C", "rise K", "hot tier"
    );
    for style in DesignStyle::ALL {
        let mut d = design.clone();
        let r = run_fullchip(&mut d, &tech, style, &FullChipConfig::fast()).unwrap();
        let per_block: Vec<_> = r
            .per_block
            .iter()
            .map(|(n, k, m)| (n.clone(), *k, m.power.total_uw()))
            .collect();
        let tiers = if style.is_3d() { 2 } else { 1 };
        let maps = chip_power_maps(&d, &tech, r.die, &per_block, tiers, 48);
        let cfg = match (style.is_3d(), style.bonding()) {
            (false, _) => StackConfig::single_die(),
            (true, BondingStyle::FaceToBack) => StackConfig::f2b(),
            (true, BondingStyle::FaceToFace) => StackConfig::f2f(),
        };
        let rep = solve_stack(&maps, &cfg);
        println!(
            "{:<18} {:>9.2} {:>8.1} {:>8.1} {:>9}",
            style.label(),
            r.chip.power.total_w(),
            rep.max_c,
            rep.max_rise_k(),
            if style.is_3d() {
                if rep.hotspot.0 == 0 {
                    "bottom"
                } else {
                    "top"
                }
            } else {
                "-"
            }
        );
    }
    println!("\nPower wins thermally cost: the F2F stack that saves the most power\nruns the hottest — exactly the trade the paper defers to future work.");
}
