//! Assembling the five full-chip design styles of Fig. 8.
//!
//! Builds the 2D chip, the two stacking styles and the two folded styles
//! of the synthetic T2 at reduced size and prints the Fig. 8 summary —
//! footprints, 3D connection counts and power relative to 2D.
//!
//! ```text
//! cargo run --release --example fullchip_t2 [tiny|small|full]
//! ```

use foldic::prelude::*;

fn main() {
    let size = std::env::args().nth(1).unwrap_or_else(|| "tiny".into());
    let cfg = match size.as_str() {
        "full" => T2Config::full(),
        "small" => T2Config::small(),
        _ => T2Config::tiny(),
    };
    let (design, tech) = cfg.generate();
    println!(
        "synthetic T2 @ {size}: {} blocks, {} instances\n",
        design.num_blocks(),
        design.total_insts()
    );

    let fc = FullChipConfig::default();
    let mut base_power = None;
    println!(
        "{:<18} {:>9} {:>10} {:>11} {:>11} {:>10}",
        "style", "die mm2", "power W", "vs 2D", "3D conns", "interWL m"
    );
    for style in DesignStyle::ALL {
        let mut d = design.clone();
        let r = run_fullchip(&mut d, &tech, style, &fc).unwrap();
        let p = r.chip.power.total_w();
        let base = *base_power.get_or_insert(p);
        println!(
            "{:<18} {:>9.2} {:>10.3} {:>+10.1}% {:>11} {:>10.2}",
            style.label(),
            r.chip.footprint_mm2(),
            p,
            (p / base - 1.0) * 100.0,
            r.chip.num_3d_connections,
            r.interblock_wl_um * 1e-6,
        );
    }
    println!("\n(the paper's Fig. 8: 2D 71.1 mm2; stacked dies 38.4 mm2; folded 39.6 mm2;\n 3,263 / 7,606 / 69,091 TSVs and 112,308 F2F vias)");
}
