//! Folding the cache crossbar (paper §4.3 / Fig. 2).
//!
//! The CCX splits naturally into the processor-to-cache crossbar (PCX) and
//! the cache-to-processor crossbar (CPX), with no signal wiring between
//! them. Placing PCX on one die and CPX on the other needs only a handful
//! of TSVs; this example also sweeps degraded partitions to show that
//! *more* 3D connections make the fold worse, not better.
//!
//! ```text
//! cargo run --release --example fold_ccx
//! ```

use foldic::prelude::*;
use foldic_timing::TimingBudgets;

fn main() {
    let (design, tech) = T2Config::small().generate();
    let id = design.find_block("ccx").expect("ccx exists");

    // 2D baseline
    let mut d2 = design.clone();
    let baseline = {
        let block = d2.block_mut(id);
        let budgets = TimingBudgets::relaxed(&block.netlist, &tech);
        run_block_flow(block, &tech, &budgets, &FlowConfig::default())
            .unwrap()
            .metrics
    };
    println!(
        "CCX 2D: {:.3} mm2, {:.1} mW (net power {:.0}% — a wiring machine)",
        baseline.footprint_mm2(),
        baseline.power.total_uw() * 1e-3,
        baseline.power.net_fraction() * 100.0
    );

    // Natural PCX/CPX fold
    let mut d3 = design.clone();
    let cfg = FoldConfig {
        strategy: FoldStrategy::NaturalGroups(vec!["pcx".into()]),
        aspect: FoldAspect::Square,
        bonding: BondingStyle::FaceToBack,
        ..FoldConfig::default()
    };
    let natural = fold_block(d3.block_mut(id), &tech, &cfg).unwrap();
    let pc = |b: f64, n: f64| (n / b - 1.0) * 100.0;
    println!(
        "\nnatural PCX/CPX fold: {} signal TSVs (paper: 4)",
        natural.metrics.num_3d_connections
    );
    println!(
        "  footprint {:+.1}%  wirelength {:+.1}%  buffers {:+.1}%  power {:+.1}%",
        pc(baseline.footprint_um2, natural.metrics.footprint_um2),
        pc(baseline.wirelength_um, natural.metrics.wirelength_um),
        pc(
            baseline.num_buffers as f64,
            natural.metrics.num_buffers as f64
        ),
        pc(baseline.power.total_uw(), natural.metrics.power.total_uw()),
    );

    // TSV-count sweep: degrade the partition toward random
    println!("\npartition sweep (more TSVs ≠ better):");
    println!(
        "{:>8} {:>7} {:>12} {:>12}",
        "quality", "TSVs", "power vs 2D", "fp vs 2D"
    );
    for q in [1.0, 0.6, 0.3, 0.0] {
        let mut d = design.clone();
        let cfg = FoldConfig {
            strategy: FoldStrategy::Quality(q),
            aspect: FoldAspect::Square,
            bonding: BondingStyle::FaceToBack,
            ..FoldConfig::default()
        };
        let f = fold_block(d.block_mut(id), &tech, &cfg).unwrap();
        println!(
            "{q:>8.1} {:>7} {:>+11.1}% {:>+11.1}%",
            f.metrics.num_3d_connections,
            pc(baseline.power.total_uw(), f.metrics.power.total_uw()),
            pc(baseline.footprint_um2, f.metrics.footprint_um2),
        );
    }
}
