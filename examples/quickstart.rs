//! Quickstart: generate a reduced synthetic OpenSPARC T2, run the 2D block
//! flow on one block, fold it, and compare the two designs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use foldic::prelude::*;
use foldic_timing::TimingBudgets;

fn main() {
    // 1. A reduced synthetic T2 (46 blocks). `T2Config::full()` builds the
    //    study-size design the paper reproduction uses.
    let (design, tech) = T2Config::tiny().generate();
    println!(
        "generated {} blocks / {} instances",
        design.num_blocks(),
        design.total_insts()
    );

    // 2. Run the 2D physical-design flow on the L2-cache tag block:
    //    placement, buffering, sizing, timing and power sign-off.
    let mut d2 = design.clone();
    let id = d2.find_block("l2t0").expect("l2t0 exists");
    let baseline = {
        let block = d2.block_mut(id);
        let budgets = TimingBudgets::relaxed(&block.netlist, &tech);
        run_block_flow(block, &tech, &budgets, &FlowConfig::default()).unwrap()
    };
    println!(
        "\nL2T 2D : {:.3} mm2, {:.0} mW, {} cells ({} buffers), wns {:.0} ps",
        baseline.metrics.footprint_mm2(),
        baseline.metrics.power.total_uw() * 1e-3,
        baseline.metrics.num_cells,
        baseline.metrics.num_buffers,
        baseline.metrics.wns_ps
    );

    // 3. Fold the same block across the two dies of a face-to-face stack:
    //    min-cut partition, per-tier placement, F2F-via placement,
    //    re-optimization.
    let mut d3 = design.clone();
    let folded = fold_block(
        d3.block_mut(id),
        &tech,
        &FoldConfig {
            bonding: BondingStyle::FaceToFace,
            ..FoldConfig::default()
        },
    )
    .unwrap();
    println!(
        "L2T F2F: {:.3} mm2, {:.0} mW, {} 3D connections (cut {})",
        folded.metrics.footprint_mm2(),
        folded.metrics.power.total_uw() * 1e-3,
        folded.metrics.num_3d_connections,
        folded.cut
    );

    // 4. Compare.
    let cmp = Comparison::new("2D", baseline.metrics, "folded F2F", folded.metrics);
    println!("\n{cmp}");
}
