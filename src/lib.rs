#![warn(missing_docs)]
//! Meta-crate bundling the `foldic` workspace for examples and tests.
pub use foldic as core;
